//! Umbrella crate for the GAN-Sec reproduction.
//!
//! Re-exports every workspace crate under one roof so the repo-level
//! examples and integration tests (and downstream users who want a
//! single dependency) can reach the whole stack:
//!
//! * [`gansec`] — the methodology (pipeline, Algorithms 2-3 wrappers);
//! * [`cpps`] — architecture modeling and Algorithm 1;
//! * [`amsim`] — the additive-manufacturing simulator;
//! * [`dsp`] — FFT/CWT/binning feature pipeline;
//! * [`gan`] — GAN/CGAN training;
//! * [`nn`] / [`tensor`] — the neural substrate;
//! * [`stats`] — Parzen KDE, information and detection metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub use gansec;

/// Additive-manufacturing simulator (`gansec-amsim`).
pub use gansec_amsim as amsim;
/// CPPS architecture modeling (`gansec-cpps`).
pub use gansec_cpps as cpps;
/// Signal processing (`gansec-dsp`).
pub use gansec_dsp as dsp;
/// Adversarial training (`gansec-gan`).
pub use gansec_gan as gan;
/// Neural networks (`gansec-nn`).
pub use gansec_nn as nn;
/// Statistics (`gansec-stats`).
pub use gansec_stats as stats;
/// Matrix kernels (`gansec-tensor`).
pub use gansec_tensor as tensor;
