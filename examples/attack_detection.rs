//! Integrity and availability attack detection through the acoustic
//! side-channel (§IV-D): train the CGAN on benign executions, inject
//! G-code tampering and axis-stall attacks, and score how well the
//! likelihood detector separates them from benign traffic.
//!
//! ```sh
//! cargo run --release --example attack_detection
//! ```

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec::{AttackDetector, SecurityModel, SideChannelDataset};
use gansec_amsim::{
    calibration_pattern, AttackInjector, AttackKind, Axis, ConditionEncoding, MotorSet, PrinterSim,
};
use gansec_dsp::{FeatureExtractor, FeatureMatrix, FrequencyBins, ScalingKind};
use gansec_tensor::Matrix;

const FRAME: usize = 1024;
const HOP: usize = 512;

fn bins() -> FrequencyBins {
    FrequencyBins::log_spaced(48, 50.0, 5000.0)
}

/// Simulates an *attacked* execution and returns `(features, claimed
/// conditions)` where claims come from the benign program the operator
/// thinks is running.
fn attacked_frames(
    sim: &PrinterSim,
    benign: &gansec_amsim::GCodeProgram,
    kind: AttackKind,
    reference: &SideChannelDataset,
    rng: &mut StdRng,
) -> (Matrix, Matrix) {
    let attack = AttackInjector::new().inject(benign, kind);
    let trace = sim.run(&attack.tampered, rng);
    let benign_plan = sim.kinematics().plan(benign);
    let extractor = FeatureExtractor::new(bins(), FRAME, HOP, ScalingKind::None);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut conds: Vec<Vec<f64>> = Vec::new();
    for (i, rec) in trace.segments.iter().enumerate() {
        // The cyber domain claims the benign command's motors.
        let claimed = benign_plan
            .iter()
            .find(|s| s.command_index == rec.segment.command_index)
            .map_or(rec.motors, MotorSet::from_segment);
        let Some(cond) = ConditionEncoding::Simple3.encode(claimed) else {
            continue;
        };
        let fm = extractor.extract(trace.segment_audio(i), trace.sample_rate);
        for row in fm.rows() {
            rows.push(row.clone());
            conds.push(cond.clone());
        }
    }
    if rows.is_empty() {
        return (
            Matrix::zeros(0, reference.n_features()),
            Matrix::zeros(0, 3),
        );
    }
    let mut fm = FeatureMatrix::from_rows(rows);
    reference.apply_scale(&mut fm);
    let n = fm.n_rows();
    let d = fm.n_features();
    let features = Matrix::from_vec(n, d, fm.into_rows().into_iter().flatten().collect())
        .expect("rectangular rows");
    let conds =
        Matrix::from_vec(n, 3, conds.into_iter().flatten().collect()).expect("rectangular conds");
    (features, conds)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2024);
    let sim = PrinterSim::printrbot_class();

    println!("== Side-channel attack detection ==\n");
    println!("collecting benign training data...");
    let benign_prog = calibration_pattern(6);
    let trace = sim.run(&benign_prog, &mut rng);
    let dataset =
        SideChannelDataset::from_trace(&trace, bins(), FRAME, HOP, ConditionEncoding::Simple3)?;
    let (train, test) = dataset.split_even_odd();

    println!("training detection CGAN on benign executions...");
    let mut model = SecurityModel::for_dataset(&train, &mut rng);
    model.train(&train, 800, &mut rng)?;

    let top = train.top_feature_indices(6);
    let detector = AttackDetector::fit(&model, &train, 0.2, 300, top, 0.05, &mut rng);
    println!(
        "calibrated alarm threshold: {:.5} (targeting 5% false alarms)\n",
        detector.threshold()
    );

    let attacks: Vec<(&str, AttackKind)> = vec![
        (
            "integrity: swap X/Y axes",
            AttackKind::SwapAxes {
                a: Axis::X,
                b: Axis::Y,
            },
        ),
        (
            "integrity: scale X by 1.8",
            AttackKind::ScaleAxis {
                axis: Axis::X,
                factor: 1.8,
            },
        ),
        (
            "availability: slow feeds to 40%",
            AttackKind::SlowFeed { factor: 0.4 },
        ),
    ];

    println!(
        "{:<34}{:>8}{:>10}{:>10}{:>10}",
        "attack", "frames", "AUC", "recall", "FP rate"
    );
    for (name, kind) in attacks {
        let (atk_features, atk_conds) =
            attacked_frames(&sim, &benign_prog, kind, &dataset, &mut rng);
        if atk_features.rows() == 0 {
            println!("{name:<34}{:>8}", "n/a");
            continue;
        }
        let features = test.features().vstack(&atk_features)?;
        let conds = test.conds().vstack(&atk_conds)?;
        let mut labels = vec![false; test.len()];
        labels.extend(std::iter::repeat_n(true, atk_features.rows()));
        let outcome = detector.evaluate(&features, &conds, &labels);
        println!(
            "{name:<34}{:>8}{:>10.3}{:>10.3}{:>10.3}",
            atk_features.rows(),
            outcome.auc,
            outcome.confusion.recall(),
            outcome.confusion.false_positive_rate()
        );
    }

    println!(
        "\nA CPPS designer reads this as: the same emission that leaks G/M-code\n\
         (confidentiality) gives a defender a free integrity/availability monitor."
    );
    Ok(())
}
