//! Quickstart: run the whole GAN-Sec design-time pipeline on the paper's
//! 3D-printer case study and print the security verdicts.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use gansec::{GanSecPipeline, PipelineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-sized configuration: 32 bins, a few hundred CGAN iterations.
    // Use PipelineConfig::paper_scale() for the full 100-bin setup.
    let mut config = PipelineConfig::smoke_test();
    config.n_bins = 32;
    config.moves_per_axis = 4;
    config.train_iterations = 400;
    config.gsize = 200;

    println!("== GAN-Sec quickstart: additive-manufacturing case study ==\n");
    let outcome = GanSecPipeline::new(config).run(42)?;

    println!("Algorithm 1 (G_CPPS generation):");
    println!("  candidate flow pairs : {}", outcome.candidate_pairs.len());
    println!(
        "  modeled (with data)  : {}  (G/M-code -> X/Y/Z acoustics)",
        outcome.modeled_pairs.len()
    );

    println!("\nAlgorithm 2 (CGAN training):");
    println!(
        "  frames: {} train / {} test",
        outcome.train_len, outcome.test_len
    );
    let first = outcome.history.records().first().expect("nonempty run");
    let last = outcome.history.records().last().expect("nonempty run");
    println!(
        "  iteration {:>5}: D loss {:.3}  G loss {:.3}",
        first.iteration, first.d_loss, first.g_loss
    );
    println!(
        "  iteration {:>5}: D loss {:.3}  G loss {:.3}",
        last.iteration, last.d_loss, last.g_loss
    );

    println!(
        "\nAlgorithm 3 (likelihood analysis, h = {}):",
        outcome.likelihood.h
    );
    for c in &outcome.likelihood.conditions {
        let motor = c.motor.map(|m| m.to_string()).unwrap_or_default();
        println!(
            "  Cond{} ({motor}): AvgCorLike {:.4}  AvgIncLike {:.4}  margin {:+.4}",
            c.condition_index + 1,
            c.mean_cor(),
            c.mean_inc(),
            c.margin()
        );
    }

    println!("\n{}", outcome.confidentiality);
    if let Some(best) = outcome.confidentiality.most_identifiable() {
        println!(
            "An attacker with a microphone identifies Cond{} best — the {} motor leaks most.",
            best.condition_index + 1,
            best.motor.map(|m| m.to_string()).unwrap_or_default()
        );
    }
    Ok(())
}
