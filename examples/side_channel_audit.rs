//! Full confidentiality audit of the 3D printer's acoustic side-channel:
//! Table-I-style likelihoods over several Parzen widths, a mutual-
//! information leakage metric, and a comparison against the direct-KDE
//! baseline.
//!
//! ```sh
//! cargo run --release --example side_channel_audit
//! ```

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec::{KdeBaseline, LikelihoodAnalysis, SecurityModel, SideChannelDataset, TableOneRow};
use gansec_amsim::{calibration_pattern, ConditionEncoding, PrinterSim};
use gansec_dsp::FrequencyBins;
use gansec_stats::{mutual_information, Histogram};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(1234);

    println!("== Acoustic side-channel confidentiality audit ==\n");
    println!("simulating printer workload (single-axis calibration moves)...");
    let sim = PrinterSim::printrbot_class();
    let trace = sim.run(&calibration_pattern(6), &mut rng);
    println!(
        "  captured {:.1} s of audio over {} segments",
        trace.duration_s(),
        trace.segments.len()
    );

    let dataset = SideChannelDataset::from_trace(
        &trace,
        FrequencyBins::log_spaced(48, 50.0, 5000.0),
        1024,
        512,
        ConditionEncoding::Simple3,
    )?;
    let (train, test) = dataset.split_even_odd();
    println!(
        "  {} train frames / {} test frames\n",
        train.len(),
        test.len()
    );

    println!("training the flow-pair CGAN (Algorithm 2)...");
    let mut model = SecurityModel::for_dataset(&train, &mut rng);
    model.train(&train, 800, &mut rng)?;
    println!(
        "  final losses: D {:.3}  G {:.3}\n",
        model.history().final_d_loss(50),
        model.history().final_g_loss(50)
    );

    // Table I: single top feature, h sweep.
    let top = train.top_feature_indices(1);
    println!(
        "Table I reproduction (single feature = bin {}, center {:.0} Hz):",
        top[0],
        train.bins().centers()[top[0]]
    );
    let h_values = [0.2, 0.4, 0.6, 0.8, 1.0];
    let mut rows: Vec<TableOneRow> = Vec::new();
    for (ci, _) in ConditionEncoding::Simple3
        .all_conditions()
        .iter()
        .enumerate()
    {
        rows.push(TableOneRow {
            condition_index: ci,
            motor: None,
            cells: Vec::new(),
        });
    }
    for &h in &h_values {
        let report = LikelihoodAnalysis::new(h, 400, top.clone()).analyze(&model, &test, &mut rng);
        for c in &report.conditions {
            rows[c.condition_index].motor = c.motor;
            rows[c.condition_index]
                .cells
                .push((h, c.mean_cor(), c.mean_inc()));
        }
    }
    println!("{}", TableOneRow::format_table(&rows));

    // Mutual information between the condition and the top feature,
    // discretized into 8 levels — the derived metric §II suggests.
    let levels = 8;
    let mut joint = vec![vec![0u64; levels]; 3];
    let hist = Histogram::new(levels, 0.0, 1.0);
    for i in 0..test.len() {
        let cond_idx = test
            .conds()
            .row(i)
            .iter()
            .position(|&v| (v - 1.0).abs() < 1e-9)
            .expect("one-hot by construction");
        let bin = hist.bin_index(test.features()[(i, top[0])]);
        joint[cond_idx][bin] += 1;
    }
    let mi = mutual_information(&joint);
    // The §I-B flow model gives the theoretical ceiling: the condition
    // flow's entropy, estimated from the observed label counts.
    let cond_counts: Vec<u64> = (0..3)
        .map(|c| {
            (0..test.len())
                .filter(|&i| (test.conds()[(i, c)] - 1.0).abs() < 1e-9)
                .count() as u64
        })
        .collect();
    let flow = gansec_cpps::SignalFlowModel::from_counts(
        vec!["X".into(), "Y".into(), "Z".into()],
        &cond_counts,
    )?;
    println!(
        "mutual information I(Cond; feature) = {:.3} nats; condition entropy H = {:.3} nats",
        mi,
        flow.entropy_nats()
    );
    println!(
        "-> this single feature leaks {:.0}% of the command-stream information ceiling",
        flow.leakage_fraction(mi) * 100.0
    );

    // Baseline comparison: direct KDE on real data, same test frames.
    let baseline = KdeBaseline::new(0.2, top.clone()).analyze(&train, &test);
    let cgan = LikelihoodAnalysis::new(0.2, 400, top).analyze(&model, &test, &mut rng);
    println!("\nCGAN vs direct-KDE baseline (h = 0.2, margin = Cor - Inc):");
    for (b, c) in baseline.conditions.iter().zip(&cgan.conditions) {
        println!(
            "  Cond{}: CGAN margin {:+.4}  |  KDE-on-real-data margin {:+.4}",
            b.condition_index + 1,
            c.margin(),
            b.margin()
        );
    }
    println!("\nVerdict: the acoustic emission leaks which motor the G/M-code runs.");
    Ok(())
}
