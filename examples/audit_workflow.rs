//! Design-time → audit-time workflow: train once, persist the flow-pair
//! model, reload it later (e.g. in a plant-floor monitor) and run both
//! the confidentiality analysis and the G/M-code reconstruction attacker
//! against the stored model.
//!
//! ```sh
//! cargo run --release --example audit_workflow
//! ```

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec::{GCodeEstimator, LikelihoodAnalysis, SecurityModel, SideChannelDataset};
use gansec_amsim::{calibration_pattern, ConditionEncoding, PrinterSim};
use gansec_dsp::FrequencyBins;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(99);
    let model_path = std::env::temp_dir().join("gansec_audit_model.json");

    // ---- Design time: collect data, train, persist -----------------------
    println!("== design time ==");
    let sim = PrinterSim::printrbot_class();
    let trace = sim.run(&calibration_pattern(5), &mut rng);
    let dataset = SideChannelDataset::from_trace(
        &trace,
        FrequencyBins::log_spaced(32, 50.0, 5000.0),
        1024,
        512,
        ConditionEncoding::Simple3,
    )?;
    let (train, test) = dataset.split_even_odd();
    let mut model = SecurityModel::for_dataset(&train, &mut rng);
    model.train(&train, 600, &mut rng)?;
    model.save(&model_path)?;
    println!(
        "trained on {} frames ({} iterations), saved to {}",
        train.len(),
        model.history().len(),
        model_path.display()
    );

    // ---- Audit time: reload and analyze -----------------------------------
    println!("\n== audit time (fresh process would start here) ==");
    let reloaded = SecurityModel::load(&model_path)?;
    println!(
        "reloaded model: {} training iterations on record, encoding {:?}",
        reloaded.history().len(),
        reloaded.encoding()
    );

    let features = train.per_condition_top_features(2);
    let report =
        LikelihoodAnalysis::new(0.2, 300, features.clone()).analyze(&reloaded, &test, &mut rng);
    println!("\nAlgorithm 3 on the reloaded model:");
    for c in &report.conditions {
        println!(
            "  Cond{} ({}): Cor {:.4}  Inc {:.4}",
            c.condition_index + 1,
            c.motor.map(|m| m.to_string()).unwrap_or_default(),
            c.mean_cor(),
            c.mean_inc()
        );
    }

    let estimator = GCodeEstimator::fit(&reloaded, 0.2, 300, features, &mut rng);
    let confusion = estimator.evaluate(&test);
    println!(
        "\nattacker reconstruction from the stored model: {:.1}% frame accuracy (chance 33.3%)",
        confusion.accuracy() * 100.0
    );

    std::fs::remove_file(&model_path).ok();
    println!("\nWorkflow complete: the persisted CGAN is the reusable security artifact.");
    Ok(())
}
