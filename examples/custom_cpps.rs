//! Modeling a *different* CPPS with the same API: a two-sub-system
//! bottling line. Shows that Algorithm 1 (graph + flow pairs) and the
//! CGAN layer generalize beyond the paper's 3D-printer case study.
//!
//! The filler pump's vibration (energy flow) leaks the recipe command
//! (signal flow) — the same cross-domain structure as the printer, in a
//! different plant.
//!
//! ```sh
//! cargo run --release --example custom_cpps
//! ```

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gansec_cpps::{CppsArchitecture, FlowKind};
use gansec_gan::{Cgan, CganConfig, PairedData};
use gansec_stats::ParzenWindow;
use gansec_tensor::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(77);

    println!("== Custom CPPS: bottling line ==\n");

    // --- Architecture (Algorithm 1 input) ---------------------------------
    let mut arch = CppsArchitecture::new("bottling-line");
    let filler = arch.add_subsystem("filler");
    let capper = arch.add_subsystem("capper");
    let env = arch.add_subsystem("environment");

    let scada = arch.add_cyber(filler, "SCADA recipe master")?;
    let plc_f = arch.add_cyber(filler, "filler PLC")?;
    let pump = arch.add_physical(filler, "dosing pump")?;
    let valve = arch.add_physical(filler, "fill valve")?;
    let plc_c = arch.add_cyber(capper, "capper PLC")?;
    let torque = arch.add_physical(capper, "torque head")?;
    let environment = arch.add_physical(env, "plant floor")?;

    let recipe = arch.add_flow("recipe command", FlowKind::Signal, scada, plc_f)?;
    let _ = arch.add_flow("pump setpoint", FlowKind::Signal, plc_f, pump)?;
    let _ = arch.add_flow("valve actuation", FlowKind::Energy, plc_f, valve)?;
    let _ = arch.add_flow("bottle handoff", FlowKind::Signal, plc_f, plc_c)?;
    let _ = arch.add_flow("torque drive", FlowKind::Energy, plc_c, torque)?;
    let pump_vib = arch.add_flow("pump vibration", FlowKind::Energy, pump, environment)?;
    let _ = arch.add_flow("torque noise", FlowKind::Energy, torque, environment)?;

    // --- Algorithm 1 -------------------------------------------------------
    let graph = arch.build_graph();
    let candidates = graph.candidate_flow_pairs();
    let cross = graph.cross_domain_pairs();
    println!(
        "Algorithm 1: {} components, {} flows, {} candidate pairs, {} cross-domain",
        graph.components().len(),
        graph.flows().len(),
        candidates.len(),
        cross.len()
    );
    assert!(cross.contains(recipe, pump_vib));
    println!("  -> modeling Pr(pump vibration | recipe command)\n");
    println!("G_CPPS (Graphviz DOT):\n{}", graph.to_dot(&arch));

    // --- Synthetic historical data for the selected pair -------------------
    // Two recipes: "water" runs the pump slow (spectral feature ~0.3),
    // "syrup" runs it fast (~0.7). 1-D feature + 2-way one-hot condition.
    let n = 400;
    let mut data_rows = Vec::with_capacity(n);
    let mut cond_rows = Vec::with_capacity(n);
    for i in 0..n {
        let syrup = i % 2 == 1;
        let center = if syrup { 0.7 } else { 0.3 };
        let jitter: f64 = rng.gen_range(-0.04..0.04);
        data_rows.push(center + jitter);
        cond_rows.push(if syrup { [0.0, 1.0] } else { [1.0, 0.0] });
    }
    let data = Matrix::from_vec(n, 1, data_rows)?;
    let conds = Matrix::from_vec(n, 2, cond_rows.into_iter().flatten().collect())?;
    let dataset = PairedData::new(data, conds)?;

    // --- Algorithm 2 on the pair -------------------------------------------
    let config = CganConfig::builder(1, 2)
        .noise_dim(8)
        .gen_hidden(vec![32])
        .disc_hidden(vec![32])
        .batch_size(32)
        .build();
    let mut cgan = Cgan::new(config, &mut rng);
    println!("training CGAN for the (recipe -> vibration) pair...");
    let history = cgan.train(&dataset, 1200, &mut rng)?;
    println!(
        "  G loss {:.3} -> {:.3} over {} iterations\n",
        history.records().first().expect("nonempty").g_loss,
        history.final_g_loss(50),
        history.len()
    );

    // --- Leakage check ------------------------------------------------------
    let per_cond = |cgan: &mut Cgan, cond: [f64; 2], rng: &mut StdRng| {
        let conds = Matrix::from_fn(300, 2, |_, j| cond[j]);
        cgan.generate(&conds, rng).col(0)
    };
    let water = per_cond(&mut cgan, [1.0, 0.0], &mut rng);
    let syrup = per_cond(&mut cgan, [0.0, 1.0], &mut rng);
    let kde_water = ParzenWindow::fit(&water, 0.1)?;
    let kde_syrup = ParzenWindow::fit(&syrup, 0.1)?;
    let p_water_at_water = kde_water.windowed_likelihood(0.3);
    let p_water_at_syrup = kde_water.windowed_likelihood(0.7);
    let p_syrup_at_syrup = kde_syrup.windowed_likelihood(0.7);
    println!("likelihoods from the learned conditional densities:");
    println!("  Pr(vib=0.3 | water) ~ {p_water_at_water:.3}   Pr(vib=0.7 | water) ~ {p_water_at_syrup:.3}");
    println!("  Pr(vib=0.7 | syrup) ~ {p_syrup_at_syrup:.3}");
    if p_water_at_water > p_water_at_syrup && p_syrup_at_syrup > p_water_at_syrup {
        println!("\nVerdict: pump vibration leaks the running recipe — a competitor on the");
        println!("plant floor can infer production volumes. Same analysis, different CPPS.");
    } else {
        println!("\nModel under-trained; rerun with more iterations.");
    }
    Ok(())
}
