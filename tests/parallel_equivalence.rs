//! Serial/parallel equivalence: every parallel section of the codebase
//! must produce bit-identical results at any worker-thread count.
//!
//! The parallelism layer only ever splits work into contiguous index
//! ranges and stitches results back in index order — floating-point
//! accumulation order never changes. These tests pin that contract at
//! the observable boundaries: CWT feature extraction, Algorithm 3
//! analysis, the full pipeline, the multi-pair fan-out, and
//! fault-tolerant training.
//!
//! The thread override is process-global, so every test serializes on
//! one mutex and restores the default before releasing it.

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use std::sync::Mutex;

use gansec::{FaultTolerance, GanSecPipeline, LikelihoodAnalysis, PipelineConfig};
use gansec_amsim::{calibration_pattern, PrinterSim};
use gansec_dsp::{FeatureExtractor, FrequencyBins, ScalingKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

static THREAD_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` under a forced worker-thread count, restoring the default
/// afterwards. Holds the global lock so concurrent tests cannot clobber
/// each other's override.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    gansec_parallel::set_threads(n);
    let out = f();
    gansec_parallel::set_threads(0);
    out
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

#[test]
fn cwt_features_are_thread_count_invariant() {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sim = PrinterSim::printrbot_class();
    let mut rng = StdRng::seed_from_u64(5);
    let trace = sim.run(&calibration_pattern(1), &mut rng);
    let extractor = FeatureExtractor::new(
        FrequencyBins::log_spaced(16, 50.0, 5000.0),
        1024,
        512,
        ScalingKind::MinMax,
    );
    let fs = trace.sample_rate;
    let serial = with_threads(1, || extractor.extract(&trace.audio, fs));
    let parallel = with_threads(4, || extractor.extract(&trace.audio, fs));
    assert_eq!(serial.n_rows(), parallel.n_rows());
    for (l, (a, b)) in serial.rows().iter().zip(parallel.rows()).enumerate() {
        assert_bits_eq(a, b, &format!("feature frame {l}"));
    }
}

#[test]
fn analysis_is_thread_count_invariant() {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = PipelineConfig::smoke_test();
    // Train once, serially, so both analyses score the same model.
    let outcome = with_threads(1, || GanSecPipeline::new(cfg.clone()).run(11)).expect("pipeline");
    let model = outcome.model;
    let top = outcome.train.top_feature_indices(cfg.n_top_features);
    let analysis = LikelihoodAnalysis::new(cfg.h, cfg.gsize, top);

    let serial = with_threads(1, || {
        let mut rng = StdRng::seed_from_u64(23);
        analysis.analyze(&model, &outcome.test, &mut rng)
    });
    let parallel = with_threads(4, || {
        let mut rng = StdRng::seed_from_u64(23);
        analysis.analyze(&model, &outcome.test, &mut rng)
    });
    assert_eq!(serial, parallel, "Algorithm 3 reports must be identical");
    for (s, p) in serial.conditions.iter().zip(&parallel.conditions) {
        assert_bits_eq(&s.avg_cor, &p.avg_cor, "avg_cor");
        assert_bits_eq(&s.avg_inc, &p.avg_inc, "avg_inc");
    }
}

#[test]
fn full_pipeline_is_thread_count_invariant() {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = PipelineConfig::smoke_test();
    let serial = with_threads(1, || GanSecPipeline::new(cfg.clone()).run(7)).expect("serial run");
    let parallel =
        with_threads(4, || GanSecPipeline::new(cfg.clone()).run(7)).expect("parallel run");

    assert_eq!(serial.likelihood, parallel.likelihood);
    assert_eq!(
        serial.history.len(),
        parallel.history.len(),
        "training lengths must match"
    );
    let serial_losses: Vec<f64> = serial.history.records().iter().map(|s| s.d_loss).collect();
    let parallel_losses: Vec<f64> = parallel
        .history
        .records()
        .iter()
        .map(|s| s.d_loss)
        .collect();
    assert_bits_eq(&serial_losses, &parallel_losses, "discriminator losses");
    assert_eq!(serial.confidentiality, parallel.confidentiality);
}

#[test]
fn multi_pair_run_is_thread_count_invariant() {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = PipelineConfig::smoke_test();
    let serial =
        with_threads(1, || GanSecPipeline::new(cfg.clone()).run_multi_pair(3)).expect("serial");
    let parallel =
        with_threads(4, || GanSecPipeline::new(cfg.clone()).run_multi_pair(3)).expect("parallel");

    assert_eq!(serial.per_pair.len(), parallel.per_pair.len());
    for (s, p) in serial.per_pair.iter().zip(&parallel.per_pair) {
        assert_eq!(s.pair, p.pair);
        assert_eq!(
            s.seed, p.seed,
            "derived pair seeds must not depend on scheduling"
        );
        assert_eq!(s.likelihood, p.likelihood);
        let s_losses: Vec<f64> = s.history.records().iter().map(|st| st.g_loss).collect();
        let p_losses: Vec<f64> = p.history.records().iter().map(|st| st.g_loss).collect();
        assert_bits_eq(&s_losses, &p_losses, "per-pair generator losses");
    }
}

#[test]
fn fault_tolerant_training_is_thread_count_invariant() {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // In-memory fault tolerance (no checkpoint file): rollback snapshots
    // and divergence recovery must not perturb determinism across thread
    // counts.
    let cfg = PipelineConfig::smoke_test();
    let ft = FaultTolerance::every(20);
    let serial = with_threads(1, || {
        GanSecPipeline::new(cfg.clone()).run_fault_tolerant(13, &ft)
    })
    .expect("serial ft run");
    let parallel = with_threads(4, || {
        GanSecPipeline::new(cfg.clone()).run_fault_tolerant(13, &ft)
    })
    .expect("parallel ft run");

    assert_eq!(serial.likelihood, parallel.likelihood);
    let s_losses: Vec<f64> = serial
        .history
        .records()
        .iter()
        .map(|st| st.d_loss)
        .collect();
    let p_losses: Vec<f64> = parallel
        .history
        .records()
        .iter()
        .map(|st| st.d_loss)
        .collect();
    assert_bits_eq(&s_losses, &p_losses, "fault-tolerant losses");
}
