//! Chaos-recovery acceptance tests: seeded fault plans from
//! `gansec-chaos` are injected into a live server and every resilience
//! invariant is checked end to end — a killed scorer is supervised back
//! up and post-recovery scores stay bit-identical, the circuit breaker
//! trips/half-opens/closes around a poisoned-batch burst, non-finite
//! jobs are quarantined without poisoning neighbors, a slowloris peer
//! cannot hold a worker past the request deadline, and injected reload
//! faults surface as typed errors instead of torn swaps.
//!
//! Scoring round-trips real JSON, so those tests gate on the
//! deserializer probe (offline stub builds skip them).

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gansec::{GanSecPipeline, PipelineConfig};
use gansec_chaos::{slowloris, ChaosPlan, FaultSpec};
use gansec_engine::ScoringEngine;
use gansec_serve::api::{ScoreRequest, ScoreResponse};
use gansec_serve::{client, ServeConfig, Server};

fn json_roundtrip_available() -> bool {
    serde_json::from_str::<serde_json::Value>("null").is_ok()
}

/// A serve config tuned for fast drills: tight heartbeat, quick restart
/// backoff, small breaker cooldown.
fn drill_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        heartbeat_ms: 10,
        restart_backoff_ms: 10,
        breaker_threshold: 3,
        breaker_cooldown_ms: 150,
        ..ServeConfig::default()
    }
}

/// Trains one smoke bundle and returns `(reference engine, server under
/// the chaos plan, held-out frames, conds)`.
fn chaos_fixture(
    seed: u64,
    config: ServeConfig,
    plan: ChaosPlan,
) -> (ScoringEngine, Server, Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let pipeline = GanSecPipeline::new(PipelineConfig::smoke_test());
    let stage = pipeline.train_stage(seed).expect("smoke training");
    let engine = ScoringEngine::from_bundle(stage.to_bundle());
    let server = Server::start_with_chaos(
        config,
        ScoringEngine::from_bundle(stage.to_bundle()),
        "serve-chaos-test.json",
        Arc::new(plan.into_state()),
    )
    .expect("server starts");
    let (_, test) = pipeline.datasets(seed).expect("datasets");
    let frames: Vec<Vec<f64>> = (0..test.len())
        .map(|i| test.features().row(i).to_vec())
        .collect();
    let conds: Vec<Vec<f64>> = (0..test.len())
        .map(|i| test.conds().row(i).to_vec())
        .collect();
    (engine, server, frames, conds)
}

fn score_body(frames: &[Vec<f64>], conds: &[Vec<f64>]) -> Vec<u8> {
    serde_json::to_vec(&ScoreRequest {
        frames: frames.to_vec(),
        conds: conds.to_vec(),
    })
    .expect("serialize")
}

/// Posts until the server answers `200` (the recovery window after an
/// injected fault), panicking after `deadline`.
fn post_until_ok(addr: SocketAddr, body: &[u8], deadline: Duration) -> ScoreResponse {
    let started = Instant::now();
    loop {
        match client::post(addr, "/v1/score", body) {
            Ok(reply) if reply.status == 200 => {
                return serde_json::from_slice(&reply.body).expect("parse");
            }
            Ok(reply) if started.elapsed() > deadline => panic!(
                "no recovery within {deadline:?}; last status {}: {}",
                reply.status,
                String::from_utf8_lossy(&reply.body)
            ),
            Err(e) if started.elapsed() > deadline => {
                panic!("no recovery within {deadline:?}; last transport error: {e}")
            }
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Pulls a single-sample counter out of the Prometheus exposition text.
fn counter(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} missing from:\n{metrics}"))
        .trim()
        .parse()
        .expect("counter value")
}

fn metrics_text(addr: SocketAddr) -> String {
    let reply = client::get(addr, "/metrics").expect("metrics");
    String::from_utf8(reply.body).expect("utf8")
}

#[test]
fn killed_scorer_is_supervised_back_up_with_bit_identical_scores() {
    if !json_roundtrip_available() {
        return;
    }
    // The scorer panics when it picks up its second batch; the watchdog
    // must replace it and the replacement must score the same bits.
    let (engine, server, frames, conds) = chaos_fixture(
        11,
        drill_config(),
        ChaosPlan {
            seed: 7,
            faults: vec![FaultSpec::ScorerPanic { at_batch: 1 }],
        },
    );
    let addr = server.addr();
    let handle = server.handle();
    let body = score_body(&frames, &conds);
    let expected: Vec<u64> = frames
        .iter()
        .zip(&conds)
        .map(|(f, c)| engine.score_frame(f, c).to_bits())
        .collect();

    // Batch 0 scores normally.
    let first = post_until_ok(addr, &body, Duration::from_secs(5));
    for (score, want) in first.scores.iter().zip(&expected) {
        assert_eq!(score.to_bits(), *want, "pre-fault scores must match");
    }

    // Batch 1 kills the scorer: this request's reply channel dies with
    // it, so the worker sheds it with a 503 (or, if the watchdog wins
    // the race, the replacement scores it fine — both are acceptable;
    // what is *not* acceptable is a hang or a wrong score).
    match client::post(addr, "/v1/score", &body) {
        Ok(reply) if reply.status == 200 => {
            let parsed: ScoreResponse = serde_json::from_slice(&reply.body).expect("parse");
            for (score, want) in parsed.scores.iter().zip(&expected) {
                assert_eq!(score.to_bits(), *want);
            }
        }
        Ok(reply) => assert_eq!(
            reply.status,
            503,
            "{}",
            String::from_utf8_lossy(&reply.body)
        ),
        Err(e) => panic!("transport must survive a scorer panic: {e}"),
    }

    // The watchdog restarts the scorer; post-recovery scores are
    // bit-identical to the offline engine.
    let recovered = post_until_ok(addr, &body, Duration::from_secs(5));
    for (score, want) in recovered.scores.iter().zip(&expected) {
        assert_eq!(score.to_bits(), *want, "post-recovery scores must match");
    }
    assert_eq!(
        handle.scorer_restarts(),
        1,
        "exactly one supervised restart"
    );
    assert_eq!(handle.health(), "ok", "recovered server reports ok");

    let text = metrics_text(addr);
    assert_eq!(counter(&text, "gansec_scorer_restarts_total"), 1.0);
    assert!(text.contains("gansec_serve_health_state{state=\"ok\"} 1"));

    server.shutdown();
}

#[test]
fn breaker_trips_sheds_with_retry_after_and_closes_after_a_probe() {
    if !json_roundtrip_available() {
        return;
    }
    // Batches 0..3 are poisoned post-validation, so the engine rejects
    // them — three consecutive scoring failures trip the breaker
    // (threshold 3). The probe after the cooldown hits clean batch 3
    // and closes it again.
    let (engine, server, frames, conds) = chaos_fixture(
        13,
        ServeConfig {
            // A generous cooldown so the shed-while-open assertion cannot
            // race the half-open transition on a slow machine.
            breaker_cooldown_ms: 600,
            ..drill_config()
        },
        ChaosPlan {
            seed: 21,
            faults: vec![FaultSpec::PoisonBatch {
                at_batch: 0,
                count: 3,
            }],
        },
    );
    let addr = server.addr();
    let body = score_body(&frames, &conds);

    // Three poisoned batches: each request fails 503 with a Retry-After
    // hint, and the third trips the breaker.
    for i in 0..3 {
        let reply = client::post(addr, "/v1/score", &body).expect("roundtrip");
        assert_eq!(
            reply.status,
            503,
            "poisoned batch {i}: {}",
            String::from_utf8_lossy(&reply.body)
        );
        assert!(
            reply.retry_after.is_some(),
            "scoring failures must hint a retry"
        );
    }
    let text = metrics_text(addr);
    assert_eq!(counter(&text, "gansec_serve_breaker_trips_total"), 1.0);
    assert_eq!(counter(&text, "gansec_serve_batch_failures_total"), 3.0);
    assert!(text.contains("gansec_serve_breaker_state{state=\"open\"} 1"));
    assert!(text.contains("gansec_serve_health_state{state=\"degraded\"} 1"));

    // While open, requests are shed at admission: no new batch runs.
    let shed = client::post(addr, "/v1/score", &body).expect("roundtrip");
    assert_eq!(shed.status, 503);
    assert!(shed.retry_after.is_some());
    assert!(
        String::from_utf8_lossy(&shed.body).contains("circuit breaker is open"),
        "{}",
        String::from_utf8_lossy(&shed.body)
    );

    // After the cooldown a half-open probe reaches clean batch 3,
    // succeeds, and closes the breaker; scores are bit-identical again.
    std::thread::sleep(Duration::from_millis(700));
    let recovered = post_until_ok(addr, &body, Duration::from_secs(5));
    for (i, score) in recovered.scores.iter().enumerate() {
        assert_eq!(
            score.to_bits(),
            engine.score_frame(&frames[i], &conds[i]).to_bits()
        );
    }
    assert_eq!(server.handle().health(), "ok");
    let text = metrics_text(addr);
    assert!(text.contains("gansec_serve_breaker_state{state=\"closed\"} 1"));
    assert_eq!(
        counter(
            &text,
            "gansec_serve_rejected_total{reason=\"breaker_open\"}"
        ),
        1.0
    );

    server.shutdown();
}

#[test]
fn corrupted_job_is_quarantined_without_breaker_involvement() {
    if !json_roundtrip_available() {
        return;
    }
    // Batch 0's first job is corrupted *before* validation: the typed
    // quarantine (422) must catch it, degrade health, and leave the
    // breaker closed; the next clean request restores `ok`.
    let (engine, server, frames, conds) = chaos_fixture(
        17,
        drill_config(),
        ChaosPlan {
            seed: 3,
            faults: vec![FaultSpec::CorruptJob { at_batch: 0 }],
        },
    );
    let addr = server.addr();
    let body = score_body(&frames, &conds);

    let reply = client::post(addr, "/v1/score", &body).expect("roundtrip");
    assert_eq!(
        reply.status,
        422,
        "{}",
        String::from_utf8_lossy(&reply.body)
    );
    assert!(String::from_utf8_lossy(&reply.body).contains("quarantined"));
    assert_eq!(server.handle().health(), "degraded");

    let text = metrics_text(addr);
    assert_eq!(
        counter(&text, "gansec_serve_batch_failures_total"),
        0.0,
        "quarantine must not count as a scoring failure"
    );
    assert!(text.contains("gansec_serve_breaker_state{state=\"closed\"} 1"));

    // The poison stream has stopped: a clean request scores
    // bit-identically and clears the degraded flag.
    let recovered = post_until_ok(addr, &body, Duration::from_secs(5));
    for (i, score) in recovered.scores.iter().enumerate() {
        assert_eq!(
            score.to_bits(),
            engine.score_frame(&frames[i], &conds[i]).to_bits()
        );
    }
    assert_eq!(server.handle().health(), "ok");

    server.shutdown();
}

#[test]
fn slowloris_peers_are_cut_at_the_request_deadline() {
    // No JSON needed: the drip never finishes a request head. A server
    // with only per-read socket timeouts would keep this connection
    // forever (each byte arrives "in time"); the overall request
    // deadline must hang it up.
    let pipeline = GanSecPipeline::new(PipelineConfig::smoke_test());
    let stage = pipeline.train_stage(19).expect("smoke training");
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            read_timeout_ms: 300,
            ..ServeConfig::default()
        },
        ScoringEngine::from_bundle(stage.to_bundle()),
        "serve-chaos-slowloris.json",
    )
    .expect("server starts");
    let addr = server.addr();

    // Two attackers against two workers: without the deadline this
    // starves the whole worker pool.
    let attackers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                slowloris(addr, Duration::from_millis(50), 10_000).expect("connect")
            })
        })
        .collect();
    for t in attackers {
        let outcome = t.join().expect("attacker thread");
        assert!(
            outcome.server_hung_up,
            "server never enforced its deadline ({} bytes accepted)",
            outcome.bytes_written
        );
        // 300 ms deadline at ~20 bytes/s: the drip cannot get far.
        assert!(
            outcome.bytes_written < 100,
            "accepted {} bytes past the deadline",
            outcome.bytes_written
        );
    }

    // The worker pool is free again: a health probe answers promptly.
    let health = client::get(addr, "/healthz").expect("health after attack");
    assert_eq!(health.status, 200);

    server.shutdown();
}

#[test]
fn injected_reload_faults_surface_as_typed_errors() {
    if !json_roundtrip_available() {
        return;
    }
    // One reload fails (torn artifact), the next is delayed but
    // succeeds — a slow artifact store must not look like a failure.
    let pipeline = GanSecPipeline::new(PipelineConfig::smoke_test());
    let stage = pipeline.train_stage(23).expect("smoke training");
    let dir = std::env::temp_dir().join("gansec-serve-chaos-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("reload-target.json");
    stage.to_bundle().save(&path).expect("save bundle");
    let path_str = path.display().to_string();

    let plan = ChaosPlan {
        seed: 5,
        faults: vec![
            FaultSpec::ReloadFail { count: 1 },
            FaultSpec::ReloadDelay {
                delay_ms: 50,
                count: 1,
            },
        ],
    };
    let server = Server::start_with_chaos(
        drill_config(),
        ScoringEngine::from_bundle(stage.to_bundle()),
        path_str.clone(),
        Arc::new(plan.into_state()),
    )
    .expect("server starts");
    let addr = server.addr();
    let req = serde_json::to_vec(&gansec_serve::api::ReloadRequest {
        bundle: Some(path_str),
    })
    .expect("serialize");

    let failed = client::post(addr, "/admin/reload", &req).expect("roundtrip");
    assert_eq!(
        failed.status,
        422,
        "{}",
        String::from_utf8_lossy(&failed.body)
    );
    assert!(String::from_utf8_lossy(&failed.body).contains("chaos: injected reload failure"));

    let started = Instant::now();
    let delayed = client::post(addr, "/admin/reload", &req).expect("roundtrip");
    assert_eq!(
        delayed.status,
        200,
        "{}",
        String::from_utf8_lossy(&delayed.body)
    );
    assert!(
        started.elapsed() >= Duration::from_millis(50),
        "the reload delay was not injected"
    );

    server.shutdown();
    std::fs::remove_file(&path).ok();
}
