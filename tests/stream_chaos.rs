//! Chaos drills for the streaming ingest subsystem: a stalled sensor
//! push delays its own session but never corrupts the emitted scores, a
//! mid-chunk disconnect loses only the *reply* (the chunk itself lands
//! and a stats probe sees consistent session state), and idle sessions
//! are reaped by the supervisor heartbeat with the eviction visible in
//! `/metrics`.
//!
//! Everything here round-trips real JSON, so the whole file gates on
//! the deserializer probe (offline stub builds skip it).

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use std::sync::Arc;
use std::time::{Duration, Instant};

use gansec::{GanSecPipeline, PipelineConfig};
use gansec_chaos::{ChaosPlan, FaultSpec};
use gansec_engine::ScoringEngine;
use gansec_serve::api::{StreamCloseResponse, StreamIngestRequest, StreamIngestResponse};
use gansec_serve::{client, ServeConfig, Server};
use gansec_stream::{Baseline, SessionManager};

fn json_roundtrip_available() -> bool {
    serde_json::from_str::<serde_json::Value>("null").is_ok()
}

fn stream_signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.021).sin() + 0.3 * (i as f64 * 0.17).cos())
        .collect()
}

/// Trains one smoke bundle and returns the reference engine, a server
/// under the given fault plan, and an offline reference manager built
/// with the server's own provenance.
fn chaos_stream_fixture(
    seed: u64,
    config: &ServeConfig,
    plan: ChaosPlan,
) -> (ScoringEngine, Server, SessionManager) {
    let pipeline = GanSecPipeline::new(PipelineConfig::smoke_test());
    let stage = pipeline.train_stage(seed).expect("smoke training");
    let engine = ScoringEngine::from_bundle(stage.to_bundle());
    let server = Server::start_with_chaos(
        config.clone(),
        ScoringEngine::from_bundle(stage.to_bundle()),
        "stream-chaos-test.json",
        Arc::new(plan.into_state()),
    )
    .expect("server starts");
    let baseline = engine.evidence_seal().map(|seal| Baseline {
        mean: seal.kde.mean,
        std: seal.kde.std,
        threshold: seal.kde.threshold,
    });
    let scale = GanSecPipeline::new(engine.config().clone())
        .datasets(engine.seed())
        .ok()
        .map(|(train, _)| train.scale());
    let reference = SessionManager::new(
        config.stream_config(engine.seed()),
        engine.config().bins(),
        baseline,
        scale,
    );
    (engine, server, reference)
}

fn offline_scores(
    reference: &SessionManager,
    engine: &ScoringEngine,
    signal: &[f64],
    cond: &[f64],
    sample_rate: f64,
) -> Vec<f64> {
    let id = "offline";
    let mut rows = reference
        .ingest(id, signal, cond, sample_rate, 0)
        .expect("reference ingest")
        .rows;
    rows.extend(reference.flush(id, 0).expect("reference flush").rows);
    reference.remove(id);
    rows.iter()
        .map(|row| engine.score_frame(row, cond))
        .collect()
}

fn ingest_body(samples: &[f64], cond: &[f64], sample_rate: f64) -> Vec<u8> {
    serde_json::to_vec(&StreamIngestRequest {
        samples: samples.to_vec(),
        cond: cond.to_vec(),
        sample_rate,
    })
    .expect("serialize")
}

#[test]
fn session_stall_delays_the_push_but_scores_stay_bit_identical() {
    if !json_roundtrip_available() {
        return;
    }
    const STALL_MS: u64 = 400;
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    };
    let plan = ChaosPlan {
        seed: 7,
        faults: vec![FaultSpec::SessionStall {
            at_ingest: 1,
            stall_ms: STALL_MS,
        }],
    };
    let (engine, server, reference) = chaos_stream_fixture(31, &config, plan);
    let addr = server.addr();

    let signal = stream_signal(3 * config.stream_frame_len + 97);
    let cond = vec![1.0, 0.0, 0.0];
    let fs = 16_000.0;
    let expected = offline_scores(&reference, &engine, &signal, &cond, fs);

    let chunk = config.stream_frame_len; // several chunks, fault on #1
    let mut scores = Vec::new();
    let mut stalled_elapsed = Duration::ZERO;
    for (i, piece) in signal.chunks(chunk).enumerate() {
        let started = Instant::now();
        let reply = client::post(
            addr,
            "/v1/stream/stalled/samples",
            &ingest_body(piece, &cond, fs),
        )
        .expect("ingest");
        let elapsed = started.elapsed();
        assert_eq!(reply.status, 200, "chunk {i}");
        if i == 1 {
            stalled_elapsed = elapsed;
        }
        let parsed: StreamIngestResponse = serde_json::from_slice(&reply.body).expect("parse");
        scores.extend(parsed.scores);
    }
    assert!(
        stalled_elapsed >= Duration::from_millis(STALL_MS - 50),
        "the injected stall must actually hold the handler, took {stalled_elapsed:?}"
    );

    let close = client::post(addr, "/v1/stream/stalled/close", b"").expect("close");
    assert_eq!(close.status, 200);
    let close: StreamCloseResponse = serde_json::from_slice(&close.body).expect("parse");
    scores.extend(close.scores);

    assert_eq!(scores.len(), expected.len());
    for (i, (&got, &want)) in scores.iter().zip(&expected).enumerate() {
        assert_eq!(got.to_bits(), want.to_bits(), "frame {i} after stall");
    }
    server.shutdown();
}

#[test]
fn mid_chunk_disconnect_loses_the_reply_but_the_chunk_lands() {
    if !json_roundtrip_available() {
        return;
    }
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    };
    let plan = ChaosPlan {
        seed: 11,
        faults: vec![FaultSpec::MidChunkDisconnect { at_ingest: 1 }],
    };
    let (engine, server, reference) = chaos_stream_fixture(37, &config, plan);
    let addr = server.addr();

    let signal = stream_signal(4 * config.stream_frame_len + 173);
    let cond = vec![1.0, 0.0, 0.0];
    let fs = 16_000.0;
    let expected = offline_scores(&reference, &engine, &signal, &cond, fs);

    // Collect (frame index, score) pairs from the replies we *do* get;
    // `frames_before` re-anchors the indexing after the lost reply.
    let chunk = config.stream_frame_len;
    let mut received: Vec<(usize, f64)> = Vec::new();
    let mut lost_replies = 0usize;
    for piece in signal.chunks(chunk) {
        match client::post(
            addr,
            "/v1/stream/flaky/samples",
            &ingest_body(piece, &cond, fs),
        ) {
            Ok(reply) => {
                assert_eq!(reply.status, 200);
                let parsed: StreamIngestResponse =
                    serde_json::from_slice(&reply.body).expect("parse");
                for (off, &score) in parsed.scores.iter().enumerate() {
                    received.push((parsed.frames_before as usize + off, score));
                }
            }
            Err(_) => lost_replies += 1,
        }
    }
    assert_eq!(lost_replies, 1, "exactly the injected disconnect");

    // The dropped reply's chunk still landed: the session's sample
    // count covers the whole signal, not the whole signal minus one
    // chunk.
    let stats = client::get(addr, "/v1/stream/flaky/stats").expect("stats");
    assert_eq!(stats.status, 200);
    let stats_body = String::from_utf8_lossy(&stats.body).to_string();
    assert!(
        stats_body.contains(&format!("\"samples\": {}", signal.len()))
            || stats_body.contains(&format!("\"samples\":{}", signal.len())),
        "lost-reply chunk must still be ingested: {stats_body}"
    );

    let close = client::post(addr, "/v1/stream/flaky/close", b"").expect("close");
    assert_eq!(close.status, 200);
    let close: StreamCloseResponse = serde_json::from_slice(&close.body).expect("parse");
    for (off, &score) in close.scores.iter().enumerate() {
        received.push((close.frames_before as usize + off, score));
    }

    // Every score that did reach the client is the bit-exact offline
    // score for its frame index — the disconnect punched a hole in the
    // replies, never in the stream itself.
    assert!(
        received.len() < expected.len(),
        "the lost reply must actually have carried frames"
    );
    for &(idx, score) in &received {
        assert_eq!(
            score.to_bits(),
            expected[idx].to_bits(),
            "frame {idx} inconsistent after disconnect"
        );
    }
    server.shutdown();
}

#[test]
fn idle_sessions_are_reaped_by_the_heartbeat() {
    if !json_roundtrip_available() {
        return;
    }
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        heartbeat_ms: 10,
        stream_idle_timeout_ms: 100,
        ..ServeConfig::default()
    };
    let (_, server, _) = chaos_stream_fixture(
        41,
        &config,
        ChaosPlan {
            seed: 1,
            faults: vec![],
        },
    );
    let addr = server.addr();

    let signal = stream_signal(config.stream_frame_len);
    let reply = client::post(
        addr,
        "/v1/stream/sleepy/samples",
        &ingest_body(&signal, &[1.0, 0.0, 0.0], 16_000.0),
    )
    .expect("ingest");
    assert_eq!(reply.status, 200);

    // Wait out the idle window plus several heartbeats.
    let deadline = Instant::now() + Duration::from_secs(5);
    let evicted = loop {
        let stats = client::get(addr, "/v1/stream/sleepy/stats").expect("stats");
        if stats.status == 404 {
            break true;
        }
        if Instant::now() > deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(evicted, "idle session must be evicted within the deadline");

    let metrics = client::get(addr, "/metrics").expect("metrics");
    let text = String::from_utf8(metrics.body).expect("utf8");
    let count: f64 = text
        .lines()
        .find_map(|l| l.strip_prefix("gansec_stream_evictions_total "))
        .expect("eviction counter exported")
        .trim()
        .parse()
        .expect("counter value");
    assert!(count >= 1.0, "eviction must be counted:\n{text}");
    server.shutdown();
}

#[test]
fn poisoned_chunks_are_quarantined_without_leaking_into_the_session() {
    if !json_roundtrip_available() {
        return;
    }
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    };
    let (engine, server, reference) = chaos_stream_fixture(
        43,
        &config,
        ChaosPlan {
            seed: 1,
            faults: vec![],
        },
    );
    let addr = server.addr();

    let signal = stream_signal(3 * config.stream_frame_len + 59);
    let cond = vec![1.0, 0.0, 0.0];
    let fs = 16_000.0;
    let expected = offline_scores(&reference, &engine, &signal, &cond, fs);

    // Interleave poisoned pushes — a NaN sample, the wrong claimed
    // sample rate — between clean chunks. Each must be rejected with a
    // typed status *before* any buffering, so the clean stream's scores
    // come out bit-identical to a never-poisoned run.
    let chunk = 769usize;
    let mut scores = Vec::new();
    for (i, piece) in signal.chunks(chunk).enumerate() {
        let nan = client::post(
            addr,
            "/v1/stream/dirty/samples",
            &ingest_body(&[0.1, f64::NAN, 0.2], &cond, fs),
        )
        .expect("poisoned push");
        assert_eq!(nan.status, 422, "non-finite samples must be quarantined");
        if i > 0 {
            // The session exists now, pinned at `fs`; a different
            // claimed rate must conflict, not rebind.
            let wrong_rate = client::post(
                addr,
                "/v1/stream/dirty/samples",
                &ingest_body(&[0.1, 0.2], &cond, fs / 2.0),
            )
            .expect("rate-mismatch push");
            assert_eq!(wrong_rate.status, 409, "sample-rate changes must conflict");
        }

        let reply = client::post(
            addr,
            "/v1/stream/dirty/samples",
            &ingest_body(piece, &cond, fs),
        )
        .expect("clean push");
        assert_eq!(
            reply.status,
            200,
            "{}",
            String::from_utf8_lossy(&reply.body)
        );
        let parsed: StreamIngestResponse = serde_json::from_slice(&reply.body).expect("parse");
        scores.extend(parsed.scores);
    }
    let close = client::post(addr, "/v1/stream/dirty/close", b"").expect("close");
    assert_eq!(close.status, 200);
    let close: StreamCloseResponse = serde_json::from_slice(&close.body).expect("parse");
    scores.extend(close.scores);

    assert_eq!(scores.len(), expected.len());
    for (i, (&got, &want)) in scores.iter().zip(&expected).enumerate() {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "frame {i} corrupted by a quarantined chunk"
        );
    }
    server.shutdown();
}
