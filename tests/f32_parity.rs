//! Accuracy-parity harness for the single-precision fast path.
//!
//! The contract documented in DESIGN.md §13: the f32 engine path may
//! perturb raw scores within a bounded relative error, but it must make
//! the SAME decisions — identical attack verdicts at the calibrated
//! threshold and identical condition classifications — on the bundle's
//! held-out evaluation split. Meanwhile the f64 path must remain
//! bit-identical to the scalar reference at every thread count, fast
//! path compiled in or not.

use gansec::{GanSecPipeline, PipelineConfig, SideChannelDataset};
use gansec_engine::{Precision, ScoringEngine};

/// Relative score-error budget for the narrowed path. f32 carries ~7
/// significant digits; the per-frame score is a mean of ~dozens of
/// kernel terms accumulated in f64, so the observed error is orders of
/// magnitude below this. The budget is deliberately loose enough to be
/// stable across compilers and tight enough that a broken kernel
/// (wrong bandwidth, wrong normalization) blows through it.
const REL_TOL: f64 = 5e-4;

fn engine_and_eval_split() -> (ScoringEngine, SideChannelDataset) {
    let pipeline = GanSecPipeline::new(PipelineConfig::smoke_test());
    let stage = pipeline.train_stage(3).expect("train");
    let test = stage.test().clone();
    (ScoringEngine::from_bundle(stage.to_bundle()), test)
}

#[test]
fn f32_scores_stay_within_the_documented_error_bound() {
    let (mut engine, eval) = engine_and_eval_split();
    let reference = engine
        .score_frames(eval.features(), eval.conds())
        .expect("finite split");
    engine.set_precision(Precision::F32);
    let narrowed = engine
        .score_frames(eval.features(), eval.conds())
        .expect("finite split");
    assert_eq!(reference.len(), narrowed.len());
    assert!(!reference.is_empty(), "eval split must not be empty");
    for (i, (&a, &b)) in reference.iter().zip(&narrowed).enumerate() {
        assert!(
            (a - b).abs() <= REL_TOL * (1.0 + a.abs()),
            "frame {i}: f64 score {a} vs f32 score {b} exceeds the {REL_TOL} budget"
        );
    }
}

#[test]
fn f32_detection_verdicts_are_identical() {
    let (mut engine, eval) = engine_and_eval_split();
    let reference = engine
        .detect_frames(eval.features(), eval.conds())
        .expect("finite split");
    engine.set_precision(Precision::F32);
    let narrowed = engine
        .detect_frames(eval.features(), eval.conds())
        .expect("finite split");
    assert_eq!(reference.verdicts, narrowed.verdicts);
    assert_eq!(reference.flagged, narrowed.flagged);
    assert_eq!(reference.threshold, narrowed.threshold);
}

#[test]
fn f32_classifications_are_identical() {
    let (mut engine, eval) = engine_and_eval_split();
    let reference = engine.classify_frames(eval.features());
    let reference_detail = engine.classify_frames_detailed(eval.features());
    engine.set_precision(Precision::F32);
    let narrowed = engine.classify_frames(eval.features());
    let narrowed_detail = engine.classify_frames_detailed(eval.features());
    assert_eq!(reference, narrowed);
    assert_eq!(reference_detail.conditions, narrowed_detail.conditions);
    // The log-likelihood evidence tracks within the same kind of bound
    // (joint log-likelihoods are large-magnitude sums, so the bound
    // scales with magnitude).
    for (r, (ref_row, nar_row)) in reference_detail
        .log_likelihoods
        .iter()
        .zip(&narrowed_detail.log_likelihoods)
        .enumerate()
    {
        for (ci, (&a, &b)) in ref_row.iter().zip(nar_row).enumerate() {
            if a == f64::NEG_INFINITY {
                assert_eq!(b, f64::NEG_INFINITY, "frame {r} condition {ci}");
                continue;
            }
            assert!(
                (a - b).abs() <= REL_TOL * (1.0 + a.abs()),
                "frame {r} condition {ci}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn f64_path_is_bit_identical_at_one_and_four_threads() {
    let (engine, eval) = engine_and_eval_split();
    assert_eq!(engine.precision(), Precision::F64);
    gansec_parallel::set_threads(1);
    let serial = engine
        .score_frames(eval.features(), eval.conds())
        .expect("finite split");
    gansec_parallel::set_threads(4);
    let threaded = engine
        .score_frames(eval.features(), eval.conds())
        .expect("finite split");
    gansec_parallel::set_threads(0);
    for (i, (&a, &b)) in serial.iter().zip(&threaded).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "frame {i}");
    }
    // And the scalar reference agrees bitwise with the batched path.
    for (i, &s) in serial.iter().enumerate() {
        assert_eq!(
            s.to_bits(),
            engine
                .score_frame(eval.features().row(i), eval.conds().row(i))
                .to_bits(),
            "frame {i}"
        );
    }
}

#[test]
fn f32_path_is_deterministic_across_thread_counts() {
    let (mut engine, eval) = engine_and_eval_split();
    engine.set_precision(Precision::F32);
    gansec_parallel::set_threads(1);
    let serial = engine
        .score_frames(eval.features(), eval.conds())
        .expect("finite split");
    gansec_parallel::set_threads(4);
    let threaded = engine
        .score_frames(eval.features(), eval.conds())
        .expect("finite split");
    gansec_parallel::set_threads(0);
    for (i, (&a, &b)) in serial.iter().zip(&threaded).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "frame {i}");
    }
}
