//! Cross-crate fault-tolerance tests: divergence recovery end-to-end,
//! checkpoint/resume equivalence through the full pipeline, and graceful
//! analysis of fault-injected capture.

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use gansec::{
    CheckpointedTrainer, FaultTolerance, GanSecPipeline, LikelihoodAnalysis, PipelineConfig,
    RecoveryPolicy, SecurityModel, SideChannelDataset,
};
use gansec_amsim::{
    calibration_pattern, ConditionEncoding, CorruptionKind, FaultModel, PrinterSim,
};
use gansec_dsp::FrequencyBins;
use gansec_gan::{CganConfig, OptimKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bins() -> FrequencyBins {
    FrequencyBins::log_spaced(16, 50.0, 5000.0)
}

fn tmp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gansec_ft_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn diverging_training_recovers_end_to_end() {
    // Real simulated capture, a deliberately explosive optimizer (raw SGD
    // at an absurd rate, no gradient clipping), and a recovery policy
    // damping hard enough to land at a sane rate: the run must complete
    // with recovery events on record instead of dying with Diverged.
    let sim = PrinterSim::printrbot_class();
    let mut rng = StdRng::seed_from_u64(31);
    let trace = sim.run(&calibration_pattern(2), &mut rng);
    let ds = SideChannelDataset::from_trace(&trace, bins(), 1024, 512, ConditionEncoding::Simple3)
        .expect("dataset");

    let config = CganConfig::builder(ds.n_features(), 3)
        .noise_dim(4)
        .gen_hidden(vec![8])
        .disc_hidden(vec![8])
        .batch_size(8)
        .learning_rate(1e250)
        .optimizer(OptimKind::Sgd { momentum: 0.0 })
        .grad_clip(None)
        .build();
    let mut model = SecurityModel::new(config, ConditionEncoding::Simple3, &mut rng);
    let trainer = CheckpointedTrainer::new(20).with_policy(RecoveryPolicy {
        max_retries: 3,
        lr_backoff: 1e-252,
        grad_clip: Some(1.0),
    });
    model
        .train_fault_tolerant(&ds, 40, &trainer, &mut rng)
        .expect("recovery must complete the run");

    assert_eq!(model.history().len(), 40);
    assert!(
        !model.history().recoveries().is_empty(),
        "a recovery event must be on record"
    );
    assert!(model
        .history()
        .records()
        .iter()
        .all(|r| r.d_loss.is_finite() && r.g_loss.is_finite()));
    let first = model.history().recoveries()[0];
    assert!(first.gen_lr <= 1e-1, "damped lr, got {}", first.gen_lr);
    assert_eq!(first.grad_clip, Some(1.0));
}

#[test]
fn resumed_pipeline_reproduces_uninterrupted_likelihoods() {
    let seed = 77;
    let cfg = PipelineConfig::smoke_test(); // 60 training iterations

    // Uninterrupted fault-tolerant run to 60.
    let full = GanSecPipeline::new(cfg.clone())
        .run_fault_tolerant(seed, &FaultTolerance::every(20))
        .expect("full run");

    // The same run killed at 40, leaving a checkpoint behind...
    let ckpt = tmp_dir().join("pipeline.ckpt.json");
    let mut interrupted_cfg = cfg.clone();
    interrupted_cfg.train_iterations = 40;
    let ft = FaultTolerance::every(20).with_checkpoint_path(&ckpt);
    GanSecPipeline::new(interrupted_cfg)
        .run_fault_tolerant(seed, &ft)
        .expect("interrupted run");

    // ...then resumed to 60 from that checkpoint.
    let ft = FaultTolerance::every(20).with_resume_from(&ckpt);
    let resumed = GanSecPipeline::new(cfg)
        .run_fault_tolerant(seed, &ft)
        .expect("resumed run");
    std::fs::remove_file(&ckpt).ok();

    // Seed chaining makes the resumed run bit-identical.
    assert_eq!(full.history, resumed.history);
    assert_eq!(full.likelihood, resumed.likelihood);
    assert_eq!(
        full.confidentiality.leaks(),
        resumed.confidentiality.leaks()
    );
}

#[test]
fn fault_injected_capture_screens_into_a_clean_analysis() {
    let sim = PrinterSim::printrbot_class();
    let mut rng = StdRng::seed_from_u64(5);

    // Design-time model trained on clean capture.
    let clean = sim.run(&calibration_pattern(3), &mut rng);
    let ds = SideChannelDataset::from_trace(&clean, bins(), 1024, 512, ConditionEncoding::Simple3)
        .expect("clean dataset");
    let (train, _) = ds.split_even_odd();
    let mut model = SecurityModel::for_dataset(&train, &mut rng);
    model.train(&train, 40, &mut rng).expect("training");

    // Audit-time capture through a faulty sensor: dropouts and ADC
    // saturation everywhere, NaN corruption confined to the first few
    // segments (the whole-segment CWT smears one NaN over its segment).
    let mut faulty = sim.run(&calibration_pattern(2), &mut rng);
    let sample_rate = faulty.sample_rate;
    let benign = FaultModel {
        dropout_per_s: 2.0,
        dropout_len_s: 0.01,
        clip_level: Some(0.5),
        corruption_prob: 0.0,
        corruption: CorruptionKind::Zero,
    };
    let benign_report = benign.apply_to_trace(&mut faulty, &mut rng);
    assert!(benign_report.dropout_samples > 0 || benign_report.clipped_samples > 0);
    assert!(faulty.segments.len() > 3);
    let span = faulty.segments[0].audio_start..faulty.segments[2].audio_end;
    let corrupting = FaultModel {
        corruption_prob: 0.01,
        corruption: CorruptionKind::NonFinite,
        ..FaultModel::none()
    };
    let corrupt_report = corrupting.apply(&mut faulty.audio[span], sample_rate, &mut rng);
    assert!(corrupt_report.corrupted_samples > 0);

    // Screening drops the poisoned frames with a typed report...
    let (screened, screen) = SideChannelDataset::from_trace_screened(
        &faulty,
        bins(),
        1024,
        512,
        ConditionEncoding::Simple3,
        gansec_dsp::AnalysisKind::Cwt,
        gansec::EmissionChannel::Acoustic,
    )
    .expect("screened dataset");
    assert!(screen.dropped_frames > 0, "{screen:?}");
    assert!(screen.kept_frames > 0);
    assert!(screen.dropped_fraction() < 1.0);

    // ...and Algorithm 3 on the survivors stays finite and clean.
    let report = LikelihoodAnalysis::new(0.2, 50, vec![0]).analyze(&model, &screened, &mut rng);
    assert!(report.warnings.is_clean(), "{:?}", report.warnings);
    for c in &report.conditions {
        assert!(c.avg_cor.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert!(c.avg_inc.iter().all(|v| v.is_finite() && *v >= 0.0));
    }
}
