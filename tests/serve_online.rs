//! Acceptance tests for the online-detection server: scores served over
//! HTTP are bit-identical to offline [`ScoringEngine`] calls under
//! concurrent load, the batcher actually co-batches concurrent
//! requests (visible in `/metrics`), and a hot reload swaps bundles
//! without dropping in-flight work.
//!
//! Everything here round-trips real JSON, so the whole file gates on
//! the deserializer probe (offline stub builds skip it).

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use std::net::SocketAddr;
use std::thread;

use gansec::{GanSecPipeline, PipelineConfig};
use gansec_engine::ScoringEngine;
use gansec_serve::api::{
    DetectResponse, ReloadRequest, ReloadResponse, ScoreRequest, ScoreResponse,
};
use gansec_serve::{client, ServeConfig, Server};

fn json_roundtrip_available() -> bool {
    serde_json::from_str::<serde_json::Value>("null").is_ok()
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("gansec-serve-online-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Trains one smoke bundle and returns `(reference engine, server)`
/// built from two independent copies of the same sealed bundle, plus
/// the held-out split the scores are checked on.
fn smoke_fixture(
    seed: u64,
    config: ServeConfig,
) -> (ScoringEngine, Server, Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let pipeline = GanSecPipeline::new(PipelineConfig::smoke_test());
    let stage = pipeline.train_stage(seed).expect("smoke training");
    let engine = ScoringEngine::from_bundle(stage.to_bundle());
    let server = Server::start(
        config,
        ScoringEngine::from_bundle(stage.to_bundle()),
        "serve-online-test.json",
    )
    .expect("server starts");
    let (_, test) = pipeline.datasets(seed).expect("datasets");
    let frames: Vec<Vec<f64>> = (0..test.len())
        .map(|i| test.features().row(i).to_vec())
        .collect();
    let conds: Vec<Vec<f64>> = (0..test.len())
        .map(|i| test.conds().row(i).to_vec())
        .collect();
    (engine, server, frames, conds)
}

fn post_score(addr: SocketAddr, frames: &[Vec<f64>], conds: &[Vec<f64>]) -> ScoreResponse {
    let body = serde_json::to_vec(&ScoreRequest {
        frames: frames.to_vec(),
        conds: conds.to_vec(),
    })
    .expect("serialize");
    let reply = client::post(addr, "/v1/score", &body).expect("roundtrip");
    assert_eq!(
        reply.status,
        200,
        "{}",
        String::from_utf8_lossy(&reply.body)
    );
    serde_json::from_slice(&reply.body).expect("parse")
}

/// Pulls the value of a single-sample counter out of the Prometheus
/// exposition text.
fn counter(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} missing from:\n{metrics}"))
        .trim()
        .parse()
        .expect("counter value")
}

#[test]
fn concurrent_clients_get_bit_identical_scores_and_requests_co_batch() {
    if !json_roundtrip_available() {
        return;
    }
    // A generous linger so the four clients' requests land in shared
    // batches; correctness must hold regardless, the linger only makes
    // the co-batching counter deterministic enough to assert on.
    let (engine, server, frames, conds) = smoke_fixture(
        11,
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            batch_linger_ms: 50,
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();
    let expected: Vec<u64> = frames
        .iter()
        .zip(&conds)
        .map(|(f, c)| engine.score_frame(f, c).to_bits())
        .collect();

    const CLIENTS: usize = 4;
    const ROUNDS: usize = 3;
    let results = thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client_id| {
                let frames = &frames;
                let conds = &conds;
                scope.spawn(move || {
                    // Each client walks a different rotation of the
                    // held-out split so batches mix rows from several
                    // requests, repeatedly.
                    let mut seen = Vec::new();
                    for round in 0..ROUNDS {
                        let start = (client_id + round) % frames.len();
                        let order: Vec<usize> = (0..frames.len())
                            .map(|i| (start + i) % frames.len())
                            .collect();
                        let f: Vec<Vec<f64>> = order.iter().map(|&i| frames[i].clone()).collect();
                        let c: Vec<Vec<f64>> = order.iter().map(|&i| conds[i].clone()).collect();
                        let scored = post_score(addr, &f, &c);
                        assert_eq!(scored.scores.len(), order.len());
                        seen.push((order, scored.scores));
                    }
                    seen
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect::<Vec<_>>()
    });

    for per_client in &results {
        for (order, scores) in per_client {
            for (pos, &row) in order.iter().enumerate() {
                assert_eq!(
                    scores[pos].to_bits(),
                    expected[row],
                    "row {row} served != offline"
                );
            }
        }
    }

    // The batcher must have run, and with four clients under a 50 ms
    // linger at least some requests must have shared a batch.
    let metrics = client::get(addr, "/metrics").expect("metrics");
    let text = String::from_utf8(metrics.body).expect("utf8");
    assert!(counter(&text, "gansec_serve_batches_total") > 0.0);
    assert!(
        counter(&text, "gansec_serve_batched_requests_total") > 0.0,
        "no request was ever co-batched:\n{text}"
    );
    let frames_scored = counter(&text, "gansec_serve_frames_scored_total");
    assert_eq!(frames_scored as usize, CLIENTS * ROUNDS * frames.len());

    server.shutdown();
}

#[test]
fn detect_endpoint_applies_the_bundled_threshold() {
    if !json_roundtrip_available() {
        return;
    }
    let (engine, server, frames, conds) = smoke_fixture(
        17,
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();

    let body = serde_json::to_vec(&ScoreRequest {
        frames: frames.clone(),
        conds: conds.clone(),
    })
    .expect("serialize");
    let reply = client::post(addr, "/v1/detect", &body).expect("roundtrip");
    assert_eq!(
        reply.status,
        200,
        "{}",
        String::from_utf8_lossy(&reply.body)
    );
    let detected: DetectResponse = serde_json::from_slice(&reply.body).expect("parse");

    assert_eq!(detected.threshold, engine.threshold());
    assert_eq!(detected.scores.len(), frames.len());
    let mut flagged = 0usize;
    for (i, (&score, &verdict)) in detected.scores.iter().zip(&detected.verdicts).enumerate() {
        assert_eq!(
            score.to_bits(),
            engine.score_frame(&frames[i], &conds[i]).to_bits()
        );
        assert_eq!(verdict, engine.is_attack(score), "frame {i}");
        flagged += usize::from(verdict);
    }
    assert_eq!(detected.flagged, flagged);

    server.shutdown();
}

#[test]
fn hot_reload_swaps_bundles_and_keeps_serving() {
    if !json_roundtrip_available() {
        return;
    }
    let (_, server, frames, conds) = smoke_fixture(
        5,
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();
    let before = post_score(addr, &frames, &conds);

    // Seal a differently-seeded bundle to disk and hot-swap it in.
    let pipeline = GanSecPipeline::new(PipelineConfig::smoke_test());
    let stage = pipeline.train_stage(6).expect("smoke training");
    let replacement = stage.to_bundle();
    let path = temp_path("replacement.json");
    replacement.save(&path).expect("save bundle");

    let req = ReloadRequest {
        bundle: Some(path.display().to_string()),
    };
    let reply = client::post(
        addr,
        "/admin/reload",
        &serde_json::to_vec(&req).expect("serialize"),
    )
    .expect("roundtrip");
    assert_eq!(
        reply.status,
        200,
        "{}",
        String::from_utf8_lossy(&reply.body)
    );
    let ack: ReloadResponse = serde_json::from_slice(&reply.body).expect("parse");
    assert_eq!(ack.seed, 6);

    // The health endpoint reports the new provenance and served scores
    // now track the replacement engine, still bit-exactly.
    let health = client::get(addr, "/healthz").expect("health");
    assert!(String::from_utf8_lossy(&health.body).contains(&path.display().to_string()));
    let swapped = ScoringEngine::from_bundle(replacement);
    let after = post_score(addr, &frames, &conds);
    assert_ne!(before.scores, after.scores, "reload must change the model");
    for (i, &score) in after.scores.iter().enumerate() {
        assert_eq!(
            score.to_bits(),
            swapped.score_frame(&frames[i], &conds[i]).to_bits()
        );
    }

    server.shutdown();
    std::fs::remove_file(&path).ok();
}
