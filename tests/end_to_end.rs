//! Cross-crate integration tests: the full paper pipeline from
//! architecture description to security verdict.

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use gansec::{ConfidentialityReport, GanSecPipeline, LikelihoodAnalysis, PipelineConfig};
use gansec_amsim::printer_architecture;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn pipeline_produces_all_paper_artifacts() {
    let outcome = GanSecPipeline::new(PipelineConfig::smoke_test())
        .run(2024)
        .expect("smoke pipeline");

    // Figure 6 artifact: a DOT graph with the paper's nodes.
    assert!(outcome.graph_dot.contains("C4 external G-code source"));
    assert!(outcome.graph_dot.contains("P9 environment"));

    // Algorithm 1 artifacts.
    assert!(outcome.candidate_pairs.len() > 100, "rich pair space");
    assert_eq!(outcome.modeled_pairs.len(), 3);

    // Figure 7 artifact: a full loss history.
    assert_eq!(outcome.history.len(), 60);
    assert!(outcome
        .history
        .records()
        .iter()
        .all(|r| r.d_loss.is_finite() && r.g_loss.is_finite()));

    // Table I / Figure 8-9 artifacts.
    assert_eq!(outcome.likelihood.conditions.len(), 3);
    assert_eq!(outcome.confidentiality.conditions.len(), 3);
}

#[test]
fn leakage_emerges_from_training() {
    // With a real training budget, correct likelihood must dominate
    // incorrect likelihood — the paper's core security finding.
    let mut config = PipelineConfig::smoke_test();
    config.n_bins = 24;
    config.moves_per_axis = 4;
    config.train_iterations = 500;
    config.gsize = 200;
    let outcome = GanSecPipeline::new(config).run(7).expect("pipeline");
    let report = &outcome.likelihood;
    assert!(
        report.mean_cor() > report.mean_inc(),
        "cor {} vs inc {}",
        report.mean_cor(),
        report.mean_inc()
    );
    assert!(outcome.confidentiality.leaks(), "emission must leak");
}

#[test]
fn untrained_model_shows_weaker_separation_than_trained() {
    let mut config = PipelineConfig::smoke_test();
    config.moves_per_axis = 4;
    config.train_iterations = 500;
    let pipeline = GanSecPipeline::new(config.clone());
    let trained = pipeline.run(3).expect("pipeline");

    // Re-analyze with an untrained model of the same shape.
    let mut rng = StdRng::seed_from_u64(3);
    let fresh = gansec::SecurityModel::new(config.cgan_config(), config.encoding, &mut rng);
    let top = trained.train.top_feature_indices(config.n_top_features);
    let analysis = LikelihoodAnalysis::new(config.h, config.gsize, top);
    let untrained_report = analysis.analyze(&fresh, &trained.test, &mut rng);

    let trained_margin = trained.likelihood.mean_cor() - trained.likelihood.mean_inc();
    let untrained_margin = untrained_report.mean_cor() - untrained_report.mean_inc();
    assert!(
        trained_margin > untrained_margin + 0.02,
        "training must add separation: trained {trained_margin:.4} vs untrained {untrained_margin:.4}"
    );
}

#[test]
fn architecture_pairs_survive_into_pipeline() {
    // Independent Algorithm 1 run agrees with what the pipeline modeled.
    let pa = printer_architecture();
    let graph = pa.arch.build_graph();
    let cross = graph.cross_domain_pairs();
    let outcome = GanSecPipeline::new(PipelineConfig::smoke_test())
        .run(1)
        .expect("pipeline");
    for p in outcome.modeled_pairs.iter() {
        assert!(
            cross.contains(p.from, p.to),
            "modeled pair must be cross-domain"
        );
    }
}

#[test]
fn confidentiality_report_round_trips_from_likelihoods() {
    let outcome = GanSecPipeline::new(PipelineConfig::smoke_test())
        .run(5)
        .expect("pipeline");
    let rebuilt = ConfidentialityReport::from_likelihoods(&outcome.likelihood, 0.02);
    assert_eq!(
        rebuilt.conditions.len(),
        outcome.confidentiality.conditions.len()
    );
    for (a, b) in rebuilt
        .conditions
        .iter()
        .zip(&outcome.confidentiality.conditions)
    {
        assert!((a.margin - b.margin).abs() < 1e-12);
    }
}
