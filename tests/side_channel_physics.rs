//! Integration tests for the physics → features → information chain:
//! the simulator and DSP stack together must make motor identity
//! recoverable (and nothing else), or every downstream experiment is
//! meaningless.

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use gansec::SideChannelDataset;
use gansec_amsim::{
    calibration_pattern, single_axis_program, Axis, ConditionEncoding, MotorSet, PrinterSim,
};
use gansec_dsp::FrequencyBins;
use gansec_stats::{mutual_information, Histogram};
use gansec_tensor::argmax;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(seed: u64, moves: usize) -> SideChannelDataset {
    let sim = PrinterSim::printrbot_class();
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = sim.run(&calibration_pattern(moves), &mut rng);
    SideChannelDataset::from_trace(
        &trace,
        FrequencyBins::log_spaced(32, 50.0, 5000.0),
        1024,
        512,
        ConditionEncoding::Simple3,
    )
    .expect("calibration always frames")
}

#[test]
fn features_carry_motor_information() {
    let ds = dataset(1, 4);
    // Discretize the most informative feature and measure MI with the
    // condition: must clearly exceed zero (independence).
    let ft = ds.top_feature_indices(1)[0];
    let hist = Histogram::new(8, 0.0, 1.0);
    let mut joint = vec![vec![0u64; 8]; 3];
    for i in 0..ds.len() {
        let cond = argmax(ds.conds().row(i)).expect("one-hot");
        joint[cond][hist.bin_index(ds.features()[(i, ft)])] += 1;
    }
    let mi = mutual_information(&joint);
    assert!(mi > 0.2, "mutual information {mi} too low — channel broken");
}

#[test]
fn nearest_centroid_identifies_motors() {
    // A trivial attacker (nearest centroid over all bins) must already
    // beat chance by a wide margin — the leak is in the physics, not an
    // artifact of the CGAN.
    let ds = dataset(2, 6);
    let (train, test) = ds.split_even_odd();
    let d = train.n_features();
    let mut centroids = vec![vec![0.0f64; d]; 3];
    let mut counts = [0usize; 3];
    for i in 0..train.len() {
        let c = argmax(train.conds().row(i)).expect("one-hot");
        counts[c] += 1;
        for (j, acc) in centroids[c].iter_mut().enumerate() {
            *acc += train.features()[(i, j)];
        }
    }
    for (c, centroid) in centroids.iter_mut().enumerate() {
        for v in centroid.iter_mut() {
            *v /= counts[c].max(1) as f64;
        }
    }
    let mut correct = 0;
    for i in 0..test.len() {
        let truth = argmax(test.conds().row(i)).expect("one-hot");
        let row = test.features().row(i);
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (c, centroid) in centroids.iter().enumerate() {
            let dist: f64 = row
                .iter()
                .zip(centroid)
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum();
            if dist < best_d {
                best_d = dist;
                best = c;
            }
        }
        if best == truth {
            correct += 1;
        }
    }
    let acc = correct as f64 / test.len() as f64;
    assert!(acc > 0.8, "nearest-centroid accuracy {acc} — leak too weak");
}

#[test]
fn distinct_axes_produce_distinct_spectra() {
    // Single-axis traces must have different dominant bins for X vs Z
    // (their kinematic combs differ by construction at slicer feeds).
    let sim = PrinterSim::printrbot_class();
    let mean_features = |axis: Axis, feed: f64, dist: f64, seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = sim.run(&single_axis_program(axis, 4, dist, feed), &mut rng);
        let ds = SideChannelDataset::from_trace(
            &trace,
            FrequencyBins::log_spaced(32, 50.0, 5000.0),
            1024,
            512,
            ConditionEncoding::Simple3,
        )
        .expect("frames");
        let d = ds.n_features();
        let mut mean = vec![0.0; d];
        for i in 0..ds.len() {
            for (j, acc) in mean.iter_mut().enumerate() {
                *acc += ds.features()[(i, j)];
            }
        }
        for v in &mut mean {
            *v /= ds.len() as f64;
        }
        mean
    };
    let x = mean_features(Axis::X, 1200.0, 20.0, 3);
    let z = mean_features(Axis::Z, 120.0, 2.0, 4);
    assert_ne!(argmax(&x), argmax(&z), "X and Z spectra must differ");
}

#[test]
fn labels_match_single_axis_ground_truth() {
    let sim = PrinterSim::printrbot_class();
    let mut rng = StdRng::seed_from_u64(5);
    let trace = sim.run(&single_axis_program(Axis::Y, 3, 15.0, 900.0), &mut rng);
    let ds = SideChannelDataset::from_trace(
        &trace,
        FrequencyBins::log_spaced(16, 50.0, 5000.0),
        1024,
        512,
        ConditionEncoding::Simple3,
    )
    .expect("frames");
    assert!(ds.labels().iter().all(|&m| m == MotorSet::Y));
}

#[test]
fn dataset_balance_tracks_workload() {
    let ds = dataset(6, 4);
    let mut counts = [0usize; 3];
    for &l in ds.labels() {
        counts[if l.x {
            0
        } else if l.y {
            1
        } else {
            2
        }] += 1;
    }
    // The calibration workload is time-balanced per axis; allow slack
    // for framing effects at segment boundaries.
    let max = *counts.iter().max().expect("nonempty") as f64;
    let min = *counts.iter().min().expect("nonempty") as f64;
    assert!(min / max > 0.5, "imbalanced dataset: {counts:?}");
}
