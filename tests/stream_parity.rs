//! Acceptance tests for the streaming ingest subsystem: scores served
//! over the sessionful HTTP endpoints are bit-identical to the offline
//! blocked extractor **for every chunking of the same signal** — one
//! sample at a time, ragged primes, or the whole capture in one shot —
//! and concurrent sessions never contaminate each other.
//!
//! Everything here round-trips real JSON, so the whole file gates on
//! the deserializer probe (offline stub builds skip it).

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use std::net::SocketAddr;

use gansec::{GanSecPipeline, PipelineConfig};
use gansec_engine::ScoringEngine;
use gansec_serve::api::{
    StreamCloseResponse, StreamIngestRequest, StreamIngestResponse, StreamStatsResponse,
};
use gansec_serve::{client, ServeConfig, Server};
use gansec_stream::{Baseline, SessionManager};

fn json_roundtrip_available() -> bool {
    serde_json::from_str::<serde_json::Value>("null").is_ok()
}

/// Deterministic synthetic sensor capture (same family the serve unit
/// tests use): a two-tone sweep long enough for several hop blocks.
fn stream_signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.021).sin() + 0.3 * (i as f64 * 0.17).cos())
        .collect()
}

/// Trains one smoke bundle and returns the reference engine, a server
/// built from an independent copy of the same sealed bundle, and an
/// offline [`SessionManager`] constructed with the exact provenance the
/// server builds its own from.
fn stream_fixture(seed: u64, config: &ServeConfig) -> (ScoringEngine, Server, SessionManager) {
    let pipeline = GanSecPipeline::new(PipelineConfig::smoke_test());
    let stage = pipeline.train_stage(seed).expect("smoke training");
    let engine = ScoringEngine::from_bundle(stage.to_bundle());
    let server = Server::start(
        config.clone(),
        ScoringEngine::from_bundle(stage.to_bundle()),
        "stream-parity-test.json",
    )
    .expect("server starts");

    let baseline = engine.evidence_seal().map(|seal| Baseline {
        mean: seal.kde.mean,
        std: seal.kde.std,
        threshold: seal.kde.threshold,
    });
    let scale = GanSecPipeline::new(engine.config().clone())
        .datasets(engine.seed())
        .ok()
        .map(|(train, _)| train.scale());
    let reference = SessionManager::new(
        config.stream_config(engine.seed()),
        engine.config().bins(),
        baseline,
        scale,
    );
    (engine, server, reference)
}

/// Feeds the whole signal to the offline reference manager in a single
/// ingest + flush and scores every emitted frame directly.
fn offline_scores(
    reference: &SessionManager,
    engine: &ScoringEngine,
    signal: &[f64],
    cond: &[f64],
    sample_rate: f64,
) -> (Vec<f64>, Vec<bool>) {
    let id = format!("offline-{:x}", signal.len());
    let mut rows = reference
        .ingest(&id, signal, cond, sample_rate, 0)
        .expect("reference ingest")
        .rows;
    rows.extend(reference.flush(&id, 0).expect("reference flush").rows);
    reference.remove(&id);
    let scores: Vec<f64> = rows
        .iter()
        .map(|row| engine.score_frame(row, cond))
        .collect();
    let verdicts: Vec<bool> = scores.iter().map(|&s| engine.is_attack(s)).collect();
    (scores, verdicts)
}

/// Streams the signal over HTTP in `chunk`-sized pieces and returns the
/// accumulated `(scores, verdicts, transforms)` after the final close.
fn stream_session(
    addr: SocketAddr,
    id: &str,
    signal: &[f64],
    cond: &[f64],
    sample_rate: f64,
    chunk: usize,
) -> (Vec<f64>, Vec<bool>, u64) {
    let mut scores = Vec::new();
    let mut verdicts = Vec::new();
    for piece in signal.chunks(chunk) {
        let body = serde_json::to_vec(&StreamIngestRequest {
            samples: piece.to_vec(),
            cond: cond.to_vec(),
            sample_rate,
        })
        .expect("serialize");
        let reply = client::post(addr, &format!("/v1/stream/{id}/samples"), &body)
            .expect("ingest roundtrip");
        assert_eq!(
            reply.status,
            200,
            "{}",
            String::from_utf8_lossy(&reply.body)
        );
        let parsed: StreamIngestResponse = serde_json::from_slice(&reply.body).expect("parse");
        assert_eq!(
            parsed.frames_before as usize,
            scores.len(),
            "frame indexing must be stable across chunk boundaries"
        );
        scores.extend(parsed.scores);
        verdicts.extend(parsed.verdicts);
    }

    let stats = client::get(addr, &format!("/v1/stream/{id}/stats")).expect("stats roundtrip");
    assert_eq!(stats.status, 200);
    let stats: StreamStatsResponse = serde_json::from_slice(&stats.body).expect("parse stats");
    assert_eq!(stats.samples as usize, signal.len());
    let transforms = stats.transforms;

    let close =
        client::post(addr, &format!("/v1/stream/{id}/close"), b"").expect("close roundtrip");
    assert_eq!(close.status, 200);
    let close: StreamCloseResponse = serde_json::from_slice(&close.body).expect("parse close");
    scores.extend(close.scores);
    verdicts.extend(close.verdicts);
    (scores, verdicts, transforms)
}

#[test]
fn every_chunking_matches_the_offline_reference_bit_for_bit() {
    if !json_roundtrip_available() {
        return;
    }
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    };
    let (engine, server, reference) = stream_fixture(23, &config);
    let addr = server.addr();

    let signal = stream_signal(2 * config.stream_frame_len + 3 * config.stream_hop + 41);
    let cond = vec![1.0, 0.0, 0.0];
    let fs = 16_000.0;
    let (expected_scores, expected_verdicts) =
        offline_scores(&reference, &engine, &signal, &cond, fs);
    assert!(
        expected_scores.len() >= 4,
        "fixture must emit several frames, got {}",
        expected_scores.len()
    );

    // Ragged primes that never align with the hop, a prime larger than
    // the frame, and the whole capture at once — each case under a
    // different worker-pool width (the scorer reads the global thread
    // setting, so this file must run with `--test-threads 1`, like
    // tests/parallel_equivalence.rs): the emitted scores must be the
    // same bits every time.
    let hops = (signal.len() as u64).div_ceil(config.stream_hop as u64);
    for (case, (chunk, threads)) in [(7usize, 1usize), (13, 4), (997, 2), (signal.len(), 0)]
        .into_iter()
        .enumerate()
    {
        gansec_parallel::set_threads(threads);
        let id = format!("chunking-{case}");
        let (scores, verdicts, transforms) = stream_session(addr, &id, &signal, &cond, fs, chunk);
        gansec_parallel::set_threads(0);
        assert_eq!(
            scores.len(),
            expected_scores.len(),
            "chunk {chunk}: frame count"
        );
        for (i, (&got, &want)) in scores.iter().zip(&expected_scores).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "chunk {chunk}, frame {i}: streamed != offline"
            );
        }
        assert_eq!(verdicts, expected_verdicts, "chunk {chunk}: verdicts");
        assert!(
            transforms <= hops,
            "chunk {chunk}: {transforms} transforms for {hops} hop blocks — the incremental \
             extractor must run at most one transform per hop"
        );

        // Closed sessions are gone: their stats answer 404.
        let gone = client::get(addr, &format!("/v1/stream/{id}/stats")).expect("stats");
        assert_eq!(gone.status, 404, "closed session must be removed");
    }

    server.shutdown();
}

#[test]
fn interleaved_sessions_stay_isolated() {
    if !json_roundtrip_available() {
        return;
    }
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    };
    let (engine, server, reference) = stream_fixture(29, &config);
    let addr = server.addr();
    let fs = 16_000.0;

    // Two sensors with different signals and different claimed motor
    // conditions, their chunks interleaved on the wire.
    let a_signal = stream_signal(3 * config.stream_frame_len + 17);
    let b_signal: Vec<f64> = stream_signal(2 * config.stream_frame_len + 251)
        .into_iter()
        .map(|x| 1.4 * x + 0.05)
        .collect();
    let a_cond = vec![1.0, 0.0, 0.0];
    let b_cond = vec![0.0, 1.0, 0.0];
    let (a_expected, _) = offline_scores(&reference, &engine, &a_signal, &a_cond, fs);
    let (b_expected, _) = offline_scores(&reference, &engine, &b_signal, &b_cond, fs);

    let chunk = 601usize;
    let mut a_chunks = a_signal.chunks(chunk);
    let mut b_chunks = b_signal.chunks(chunk);
    let mut a_scores = Vec::new();
    let mut b_scores = Vec::new();
    loop {
        let a_piece = a_chunks.next();
        let b_piece = b_chunks.next();
        if a_piece.is_none() && b_piece.is_none() {
            break;
        }
        for (id, piece, cond, scores) in [
            ("sensor-a", a_piece, &a_cond, &mut a_scores),
            ("sensor-b", b_piece, &b_cond, &mut b_scores),
        ] {
            let Some(piece) = piece else { continue };
            let body = serde_json::to_vec(&StreamIngestRequest {
                samples: piece.to_vec(),
                cond: cond.clone(),
                sample_rate: fs,
            })
            .expect("serialize");
            let reply =
                client::post(addr, &format!("/v1/stream/{id}/samples"), &body).expect("ingest");
            assert_eq!(reply.status, 200);
            let parsed: StreamIngestResponse = serde_json::from_slice(&reply.body).expect("parse");
            scores.extend(parsed.scores);
        }
    }
    for (id, scores) in [("sensor-a", &mut a_scores), ("sensor-b", &mut b_scores)] {
        let close = client::post(addr, &format!("/v1/stream/{id}/close"), b"").expect("close");
        assert_eq!(close.status, 200);
        let close: StreamCloseResponse = serde_json::from_slice(&close.body).expect("parse");
        scores.extend(close.scores);
    }

    assert_eq!(a_scores, a_expected, "interleaving contaminated sensor-a");
    assert_eq!(b_scores, b_expected, "interleaving contaminated sensor-b");

    server.shutdown();
}
