//! Cross-crate tests for the train/serve split: the staged pipeline is
//! bit-identical to the monolithic run, a sealed [`ModelBundle`] round-
//! trips through disk into a [`ScoringEngine`] without perturbing a
//! single score at any thread count, and corrupted artifacts surface as
//! typed [`PersistError`]s instead of panics or silent misloads.

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use gansec::{
    config_fingerprint, GanSecPipeline, ModelBundle, PersistError, PipelineConfig,
    BUNDLE_SCHEMA_VERSION,
};
use gansec_engine::ScoringEngine;

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("gansec-train-serve-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn staged_pipeline_is_bit_identical_to_monolithic() {
    let pipeline = GanSecPipeline::new(PipelineConfig::smoke_test());
    let mono = pipeline.run(21).expect("monolithic run");
    let stage = pipeline.train_stage(21).expect("train stage");
    let staged = pipeline.analyze_stage(stage).expect("analyze stage");

    assert_eq!(staged.train_len, mono.train_len);
    assert_eq!(staged.test_len, mono.test_len);
    assert_eq!(staged.likelihood, mono.likelihood, "Algorithm 3 output");
    assert_eq!(staged.confidentiality, mono.confidentiality, "verdicts");
    assert_eq!(staged.history.len(), mono.history.len());
}

#[test]
fn bundle_survives_disk_and_scores_bit_identical_at_any_thread_count() {
    let pipeline = GanSecPipeline::new(PipelineConfig::smoke_test());
    let stage = pipeline.train_stage(8).expect("train stage");
    let bundle = stage.to_bundle();

    let path = temp_path("round-trip.json");
    bundle.save(&path).expect("save");
    let reloaded = ScoringEngine::load(&path).expect("load");
    let in_memory = ScoringEngine::from_bundle(bundle);

    let (_, test) = pipeline.datasets(8).expect("datasets");
    assert!(!test.is_empty(), "held-out split must be nonempty");

    // Loaded-from-disk and in-memory engines agree bit-for-bit, and the
    // batched path agrees with the scalar per-frame entry point.
    let from_disk = reloaded
        .score_frames(test.features(), test.conds())
        .expect("finite split");
    let from_memory = in_memory
        .score_frames(test.features(), test.conds())
        .expect("finite split");
    assert_eq!(from_disk, from_memory, "persistence must not move scores");
    for (i, &s) in from_disk.iter().enumerate() {
        assert_eq!(
            s,
            in_memory.score_frame(test.features().row(i), test.conds().row(i)),
            "frame {i}: batched vs scalar"
        );
    }

    // Thread count partitions the batch differently but must not change
    // one bit of any score.
    gansec_parallel::set_threads(1);
    let serial = reloaded
        .score_frames(test.features(), test.conds())
        .expect("finite split");
    gansec_parallel::set_threads(4);
    let threaded = reloaded
        .score_frames(test.features(), test.conds())
        .expect("finite split");
    gansec_parallel::set_threads(0);
    assert_eq!(serial, threaded, "1 vs 4 threads");
    assert_eq!(serial, from_disk);

    // The estimator rides along: per-frame log-likelihoods match too.
    for ci in 0..reloaded.config().encoding.dim() {
        for i in 0..test.len() {
            assert_eq!(
                reloaded.log_likelihood(test.features().row(i), ci),
                in_memory.log_likelihood(test.features().row(i), ci),
            );
        }
    }

    std::fs::remove_file(&path).ok();
}

#[test]
fn sealing_a_bundle_never_perturbs_the_analysis() {
    let pipeline = GanSecPipeline::new(PipelineConfig::smoke_test());

    let stage = pipeline.train_stage(13).expect("train stage");
    let _bundle = stage.to_bundle();
    let sealed = pipeline.analyze_stage(stage).expect("analyze after seal");

    let stage = pipeline.train_stage(13).expect("train stage");
    let unsealed = pipeline.analyze_stage(stage).expect("analyze");

    assert_eq!(sealed.likelihood, unsealed.likelihood);
    assert_eq!(sealed.confidentiality, unsealed.confidentiality);
}

#[test]
fn corrupted_bundles_surface_typed_errors() {
    let pipeline = GanSecPipeline::new(PipelineConfig::smoke_test());
    let bundle = pipeline.train_stage(4).expect("train stage").to_bundle();
    let json = bundle.to_json().expect("serialize");

    // Truncation breaks the JSON itself.
    let truncated = temp_path("truncated.json");
    std::fs::write(&truncated, &json[..json.len() / 2]).expect("write");
    assert!(matches!(
        ModelBundle::load(&truncated),
        Err(PersistError::Json(_))
    ));

    // A future schema version is refused with both versions reported.
    let mut future = bundle.clone();
    future.schema_version = BUNDLE_SCHEMA_VERSION + 1;
    let future_path = temp_path("future.json");
    std::fs::write(&future_path, future.to_json().expect("serialize")).expect("write");
    match ModelBundle::load(&future_path) {
        Err(PersistError::BundleVersion { found, supported }) => {
            assert_eq!(found, BUNDLE_SCHEMA_VERSION + 1);
            assert_eq!(supported, BUNDLE_SCHEMA_VERSION);
        }
        other => panic!("expected BundleVersion, got {other:?}"),
    }

    // Config tampering breaks the sealed fingerprint.
    let mut tampered = bundle.clone();
    tampered.config.h *= 2.0;
    assert_ne!(
        config_fingerprint(&tampered.config),
        tampered.config_fingerprint
    );
    let tampered_path = temp_path("tampered.json");
    std::fs::write(&tampered_path, tampered.to_json().expect("serialize")).expect("write");
    assert!(matches!(
        ModelBundle::load(&tampered_path),
        Err(PersistError::BundleInvalid(_))
    ));

    // A missing file is an I/O error, not a panic.
    assert!(matches!(
        ModelBundle::load(temp_path("does-not-exist.json")),
        Err(PersistError::Io(_))
    ));

    std::fs::remove_file(&truncated).ok();
    std::fs::remove_file(&future_path).ok();
    std::fs::remove_file(&tampered_path).ok();
}
