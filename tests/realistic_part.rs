//! The realistic sliced-part fixture through the full methodology: real
//! slicer G-code has multi-axis printing moves, so the 3-way encoding
//! starves while the paper's suggested `2^3` combination encoding
//! captures the workload.

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use gansec::SideChannelDataset;
use gansec_amsim::{ConditionEncoding, GCodeProgram, PrinterSim};
use gansec_dsp::FrequencyBins;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SAMPLE: &str = include_str!("../assets/sample_part.gcode");

fn bins() -> FrequencyBins {
    FrequencyBins::log_spaced(24, 50.0, 5000.0)
}

#[test]
fn combination_encoding_captures_the_real_part() {
    let prog = GCodeProgram::parse(SAMPLE).expect("fixture parses");
    let sim = PrinterSim::printrbot_class();
    let mut rng = StdRng::seed_from_u64(3);
    let trace = sim.run(&prog, &mut rng);

    let simple =
        SideChannelDataset::from_trace(&trace, bins(), 1024, 512, ConditionEncoding::Simple3);
    let combo =
        SideChannelDataset::from_trace(&trace, bins(), 1024, 512, ConditionEncoding::Combination8)
            .expect("combination encoding frames the part");

    // The real part is dominated by X+Y printing moves, so the 8-way
    // encoding sees strictly more frames than the single-motor subset.
    let simple_len = simple.map_or(0, |d| d.len());
    assert!(
        combo.len() > simple_len,
        "combo {} vs simple {simple_len}",
        combo.len()
    );
    // Multi-motor conditions are actually present.
    assert!(
        combo.labels().iter().any(|m| m.count() > 1),
        "expected X+Y printing moves"
    );
}

#[test]
fn real_part_leaks_through_the_combination_model() {
    let prog = GCodeProgram::parse(SAMPLE).expect("fixture parses");
    let sim = PrinterSim::printrbot_class();
    let mut rng = StdRng::seed_from_u64(5);
    let trace = sim.run(&prog, &mut rng);
    let dataset =
        SideChannelDataset::from_trace(&trace, bins(), 1024, 512, ConditionEncoding::Combination8)
            .expect("frames");
    let (train, test) = dataset.split_even_odd();
    let mut model = gansec::SecurityModel::for_dataset(&train, &mut rng);
    model.train(&train, 500, &mut rng).expect("stable");
    let features = train.top_feature_indices(3);
    let estimator = gansec::GCodeEstimator::fit(&model, 0.2, 200, features, &mut rng);
    let confusion = estimator.evaluate(&test);
    // 8 conditions -> chance is 0.125; the occupied conditions are
    // fewer, but beating 0.5 shows real reconstruction on a real part.
    assert!(
        confusion.accuracy() > 0.5,
        "accuracy {} on the realistic part",
        confusion.accuracy()
    );
}
