//! Integration tests for the persistence + attacker layers across a
//! process-boundary-like round trip.

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use gansec::{GCodeEstimator, SecurityModel, SideChannelDataset};
use gansec_amsim::{calibration_pattern, ConditionEncoding, PrinterSim};
use gansec_dsp::FrequencyBins;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(seed: u64) -> (SecurityModel, SideChannelDataset, SideChannelDataset) {
    let sim = PrinterSim::printrbot_class();
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = sim.run(&calibration_pattern(4), &mut rng);
    let ds = SideChannelDataset::from_trace(
        &trace,
        FrequencyBins::log_spaced(24, 50.0, 5000.0),
        1024,
        512,
        ConditionEncoding::Simple3,
    )
    .expect("calibration frames");
    let (train, test) = ds.split_even_odd();
    let mut model = SecurityModel::for_dataset(&train, &mut rng);
    model.train(&train, 500, &mut rng).expect("stable training");
    (model, train, test)
}

#[test]
fn estimator_survives_model_persistence() {
    let (model, train, test) = setup(11);
    let features = train.per_condition_top_features(2);

    // Estimator from the live model.
    let mut rng = StdRng::seed_from_u64(12);
    let live = GCodeEstimator::fit(&model, 0.2, 200, features.clone(), &mut rng);
    let live_acc = live.evaluate(&test).accuracy();

    // Estimator from a JSON round-tripped model with the same RNG seed.
    let restored =
        SecurityModel::from_json(&model.to_json().expect("serialize")).expect("deserialize");
    let mut rng = StdRng::seed_from_u64(12);
    let stored = GCodeEstimator::fit(&restored, 0.2, 200, features, &mut rng);
    let stored_acc = stored.evaluate(&test).accuracy();

    assert!(
        (live_acc - stored_acc).abs() < 1e-12,
        "persistence changed the attacker: {live_acc} vs {stored_acc}"
    );
    assert!(
        live_acc > 0.6,
        "attacker should beat chance, got {live_acc}"
    );
}

#[test]
fn attacker_degrades_gracefully_with_tiny_training() {
    // An under-trained model must not crash the attacker; it just
    // reconstructs worse than a converged one.
    let sim = PrinterSim::printrbot_class();
    let mut rng = StdRng::seed_from_u64(21);
    let trace = sim.run(&calibration_pattern(4), &mut rng);
    let ds = SideChannelDataset::from_trace(
        &trace,
        FrequencyBins::log_spaced(24, 50.0, 5000.0),
        1024,
        512,
        ConditionEncoding::Simple3,
    )
    .expect("frames");
    let (train, test) = ds.split_even_odd();

    let accuracy_after = |iters: usize, rng: &mut StdRng| {
        let mut model = SecurityModel::for_dataset(&train, rng);
        model.train(&train, iters, rng).expect("stable");
        let features = train.per_condition_top_features(2);
        GCodeEstimator::fit(&model, 0.2, 200, features, rng)
            .evaluate(&test)
            .accuracy()
    };
    let mut rng = StdRng::seed_from_u64(22);
    let weak = accuracy_after(5, &mut rng);
    let mut rng = StdRng::seed_from_u64(22);
    let strong = accuracy_after(600, &mut rng);
    assert!(
        strong >= weak,
        "more training must not hurt: weak {weak} strong {strong}"
    );
    assert!(strong > 0.6, "converged attacker accuracy {strong}");
}

#[test]
fn save_report_round_trips_likelihood_report() {
    let (model, train, test) = setup(31);
    let mut rng = StdRng::seed_from_u64(32);
    let top = train.top_feature_indices(1);
    let report = gansec::LikelihoodAnalysis::new(0.2, 100, top).analyze(&model, &test, &mut rng);

    let dir = std::env::temp_dir().join("gansec_integration_reports");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("likelihood.json");
    gansec::save_report(&report, &path).expect("save");
    let loaded: gansec::LikelihoodReport = gansec::load_report(&path).expect("load");
    assert_eq!(loaded, report);
    std::fs::remove_file(&path).ok();
}
