//! The realistic slicer-style fixture (`assets/sample_part.gcode`) must
//! flow through the whole substrate: parse, plan, simulate, label.

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use gansec_amsim::{Axis, GCodeProgram, Kinematics, PrinterSim};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SAMPLE: &str = include_str!("../../../assets/sample_part.gcode");

#[test]
fn fixture_parses_completely() {
    let prog = GCodeProgram::parse(SAMPLE).expect("fixture is valid G-code");
    // Comments and blank lines are dropped; commands remain.
    assert!(prog.len() > 40, "commands: {}", prog.len());
    // Slicer staples are present.
    assert!(prog
        .commands()
        .iter()
        .any(|c| c.mnemonic == 'M' && c.code == 104));
    assert!(prog
        .commands()
        .iter()
        .any(|c| c.mnemonic == 'G' && c.code == 28));
    assert!(prog.commands().iter().any(|c| c.word('E').is_some()));
}

#[test]
fn fixture_plans_with_extrusion_and_travel() {
    let prog = GCodeProgram::parse(SAMPLE).expect("valid");
    let segs = Kinematics::printrbot_class().plan(&prog);
    assert!(segs.len() > 30, "segments: {}", segs.len());
    // Printing moves drive E alongside X/Y; travel moves do not.
    let printing = segs
        .iter()
        .filter(|s| s.step_rates_hz[Axis::E.index()] > 0.0)
        .count();
    let travel = segs
        .iter()
        .filter(|s| {
            s.step_rates_hz[Axis::E.index()] == 0.0
                && (s.step_rates_hz[Axis::X.index()] > 0.0
                    || s.step_rates_hz[Axis::Y.index()] > 0.0)
        })
        .count();
    assert!(printing > 10, "printing moves: {printing}");
    assert!(travel > 2, "travel moves: {travel}");
    // Z only moves at layer changes and lift: few, slow segments.
    let z_moves = segs
        .iter()
        .filter(|s| s.step_rates_hz[Axis::Z.index()] > 0.0)
        .count();
    assert!((2..8).contains(&z_moves), "z moves: {z_moves}");
}

#[test]
fn fixture_simulates_to_audio() {
    let prog = GCodeProgram::parse(SAMPLE).expect("valid");
    let sim = PrinterSim::printrbot_class();
    let mut rng = StdRng::seed_from_u64(1);
    let trace = sim.run(&prog, &mut rng);
    assert!(trace.duration_s() > 5.0, "duration {}", trace.duration_s());
    assert!(trace.audio.iter().all(|s| s.is_finite()));
    assert_eq!(trace.audio.len(), trace.vibration.len());
    // Multi-axis printing moves dominate: X+Y simultaneously.
    let multi = trace
        .segments
        .iter()
        .filter(|r| r.motors.count() > 1 || (r.motors.count() == 1 && !r.motors.is_single()))
        .count();
    assert!(multi < trace.segments.len(), "some single-axis moves exist");
}

#[test]
fn fixture_round_trips_through_emitter() {
    let prog = GCodeProgram::parse(SAMPLE).expect("valid");
    let reparsed = GCodeProgram::parse(&prog.to_source()).expect("emitted source reparses");
    assert_eq!(prog, reparsed);
}
