//! Property tests for the simulator: parser round-trips, kinematic
//! invariants, attack-injection guarantees.

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use gansec_amsim::{
    Attack, AttackInjector, AttackKind, Axis, GCodeCommand, GCodeProgram, GCodeWord, Kinematics,
    MotorSet,
};
use proptest::prelude::*;

fn axis_strategy() -> impl Strategy<Value = Axis> {
    prop_oneof![Just(Axis::X), Just(Axis::Y), Just(Axis::Z), Just(Axis::E),]
}

/// Random well-formed move commands.
fn move_command() -> impl Strategy<Value = GCodeCommand> {
    (
        proptest::option::of(60.0..6000.0f64),
        proptest::collection::vec((axis_strategy(), -50.0..50.0f64), 0..4),
    )
        .prop_map(|(feed, axes)| {
            let mut words = Vec::new();
            if let Some(f) = feed {
                words.push(GCodeWord {
                    letter: 'F',
                    value: (f * 100.0).round() / 100.0,
                });
            }
            for (axis, v) in axes {
                if words.iter().all(|w: &GCodeWord| w.letter != axis.letter()) {
                    words.push(GCodeWord {
                        letter: axis.letter(),
                        value: (v * 100.0).round() / 100.0,
                    });
                }
            }
            GCodeCommand::linear_move(words)
        })
}

fn program() -> impl Strategy<Value = GCodeProgram> {
    proptest::collection::vec(move_command(), 0..20).prop_map(GCodeProgram::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parser_round_trips_generated_programs(prog in program()) {
        let source = prog.to_source();
        let reparsed = GCodeProgram::parse(&source).expect("emitted source is valid");
        prop_assert_eq!(prog.len(), reparsed.len());
        for (a, b) in prog.commands().iter().zip(reparsed.commands()) {
            prop_assert_eq!(a.mnemonic, b.mnemonic);
            prop_assert_eq!(a.code, b.code);
            for w in &a.words {
                let rb = b.word(w.letter).expect("word survives round trip");
                prop_assert!((w.value - rb).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn kinematics_invariants(prog in program()) {
        let kin = Kinematics::printrbot_class();
        let segments = kin.plan(&prog);
        prop_assert!(segments.len() <= prog.len());
        for s in &segments {
            prop_assert!(s.duration_s > 0.0, "zero-duration segment");
            prop_assert!(s.duration_s.is_finite());
            for axis in Axis::ALL {
                let rate = s.step_rates_hz[axis.index()];
                prop_assert!(rate >= 0.0 && rate.is_finite());
                // Rate is distance-consistent: rate * duration = steps.
                let steps = s.distances_mm[axis.index()].abs() * kin.steps_per_mm(axis);
                prop_assert!((rate * s.duration_s - steps).abs() < 1e-6);
            }
            prop_assert!(s.command_index < prog.len());
        }
    }

    #[test]
    fn planning_is_deterministic(prog in program()) {
        let kin = Kinematics::printrbot_class();
        prop_assert_eq!(kin.plan(&prog), kin.plan(&prog));
    }

    #[test]
    fn stall_attack_silences_exactly_one_axis(
        prog in program(),
        axis in prop_oneof![Just(Axis::X), Just(Axis::Y), Just(Axis::Z)],
    ) {
        let Attack { tampered, .. } =
            AttackInjector::new().inject(&prog, AttackKind::StallAxis { axis });
        for cmd in tampered.commands() {
            if cmd.is_move() {
                prop_assert!(cmd.word(axis.letter()).is_none());
            }
        }
        // Kinematics confirm: the axis never steps.
        let segs = Kinematics::printrbot_class().plan(&tampered);
        for s in &segs {
            prop_assert_eq!(s.step_rates_hz[axis.index()], 0.0);
        }
    }

    #[test]
    fn swap_attack_is_involutive(prog in program()) {
        let inj = AttackInjector::new();
        let kind = AttackKind::SwapAxes { a: Axis::X, b: Axis::Y };
        let once = inj.inject(&prog, kind);
        let twice = inj.inject(&once.tampered, kind);
        // Word order may differ (set_word appends), so compare semantics.
        prop_assert_eq!(twice.tampered.len(), prog.len());
        for (a, b) in prog.commands().iter().zip(twice.tampered.commands()) {
            prop_assert_eq!(a.mnemonic, b.mnemonic);
            prop_assert_eq!(a.code, b.code);
            for letter in ['X', 'Y', 'Z', 'E', 'F'] {
                prop_assert_eq!(a.word(letter), b.word(letter), "letter {}", letter);
            }
        }
    }

    #[test]
    fn scale_attack_scales_exactly_the_axis(
        prog in program(),
        factor in 1.1..3.0f64,
    ) {
        let attack = AttackInjector::new().inject(
            &prog,
            AttackKind::ScaleAxis { axis: Axis::X, factor },
        );
        for (orig, tampered) in prog.commands().iter().zip(attack.tampered.commands()) {
            match (orig.word('X'), tampered.word('X')) {
                (Some(a), Some(b)) if orig.is_move() => {
                    prop_assert!((b - a * factor).abs() < 1e-9);
                }
                (None, None) => {}
                (a, b) => prop_assert_eq!(a, b),
            }
            // Other axes untouched.
            for letter in ['Y', 'Z', 'E', 'F'] {
                prop_assert_eq!(orig.word(letter), tampered.word(letter));
            }
        }
    }

    #[test]
    fn motor_set_matches_kinematics(prog in program()) {
        let segs = Kinematics::printrbot_class().plan(&prog);
        for s in &segs {
            let m = MotorSet::from_segment(s);
            prop_assert_eq!(m.x, s.step_rates_hz[Axis::X.index()] > 0.0);
            prop_assert_eq!(m.y, s.step_rates_hz[Axis::Y.index()] > 0.0);
            prop_assert_eq!(m.z, s.step_rates_hz[Axis::Z.index()] > 0.0);
        }
    }
}
