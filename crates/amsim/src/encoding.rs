//! One-hot condition encoding of G/M-code motor activity (§IV-B).
//!
//! "The G/M code is one-hot encoded based on presence of instructions
//! that run stepper motors X ([1,0,0]), Y ([0,1,0]) and Z ([0,0,1]) ...
//! based on G/M-codes `G_t` and `G_{t-1}`." The paper also proposes the
//! extension to motor *combinations*: "for three physical components and
//! their combination, the one-hot encoding can be of size 2^3 = 8".
//! Both encodings are implemented here.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Axis, MotionSegment};

/// The set of XYZ motors active in a segment (the extruder is tracked by
/// the simulator but excluded from the paper's condition space).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MotorSet {
    /// X stepper running.
    pub x: bool,
    /// Y stepper running.
    pub y: bool,
    /// Z stepper running.
    pub z: bool,
}

impl MotorSet {
    /// No motors.
    pub const NONE: MotorSet = MotorSet {
        x: false,
        y: false,
        z: false,
    };
    /// Only X.
    pub const X: MotorSet = MotorSet {
        x: true,
        y: false,
        z: false,
    };
    /// Only Y.
    pub const Y: MotorSet = MotorSet {
        x: false,
        y: true,
        z: false,
    };
    /// Only Z.
    pub const Z: MotorSet = MotorSet {
        x: false,
        y: false,
        z: true,
    };

    /// Derives the motor set from a planned segment.
    pub fn from_segment(segment: &MotionSegment) -> Self {
        Self {
            x: segment.step_rates_hz[Axis::X.index()] > 0.0,
            y: segment.step_rates_hz[Axis::Y.index()] > 0.0,
            z: segment.step_rates_hz[Axis::Z.index()] > 0.0,
        }
    }

    /// Number of active motors.
    pub fn count(self) -> usize {
        self.x as usize + self.y as usize + self.z as usize
    }

    /// Whether exactly one motor runs (the paper's simple-case regime).
    pub fn is_single(self) -> bool {
        self.count() == 1
    }

    /// Bitmask with X as bit 0, Y bit 1, Z bit 2.
    pub fn bits(self) -> usize {
        self.x as usize | (self.y as usize) << 1 | (self.z as usize) << 2
    }

    /// Inverse of [`MotorSet::bits`] (low three bits only).
    pub fn from_bits(bits: usize) -> Self {
        Self {
            x: bits & 1 != 0,
            y: bits & 2 != 0,
            z: bits & 4 != 0,
        }
    }
}

impl fmt::Display for MotorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count() == 0 {
            return write!(f, "idle");
        }
        let mut first = true;
        for (on, name) in [(self.x, "X"), (self.y, "Y"), (self.z, "Z")] {
            if on {
                if !first {
                    write!(f, "+")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        Ok(())
    }
}

/// How motor activity maps to a CGAN condition vector.
///
/// # Example
///
/// ```
/// use gansec_amsim::{ConditionEncoding, MotorSet};
///
/// // The paper's §IV-B example: only the X motor runs.
/// let enc = ConditionEncoding::Simple3;
/// assert_eq!(enc.encode(MotorSet::X), Some(vec![1.0, 0.0, 0.0]));
/// // Multi-motor moves need the suggested 2^3 combination encoding.
/// let xy = MotorSet { x: true, y: true, z: false };
/// assert_eq!(enc.encode(xy), None);
/// assert!(ConditionEncoding::Combination8.encode(xy).is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConditionEncoding {
    /// The paper's 3-way single-motor one-hot: X→`[1,0,0]`, Y→`[0,1,0]`,
    /// Z→`[0,0,1]`. Multi-motor or idle segments do not encode
    /// ([`ConditionEncoding::encode`] returns `None`).
    Simple3,
    /// The paper's suggested `2^3 = 8`-way combination one-hot, indexed
    /// by [`MotorSet::bits`]; every motor set encodes.
    Combination8,
}

impl ConditionEncoding {
    /// Width of the condition vectors this encoding produces.
    pub fn dim(self) -> usize {
        match self {
            ConditionEncoding::Simple3 => 3,
            ConditionEncoding::Combination8 => 8,
        }
    }

    /// Encodes a motor set, or `None` when the set is outside the
    /// encoding's domain (non-single sets under [`Self::Simple3`]).
    pub fn encode(self, motors: MotorSet) -> Option<Vec<f64>> {
        match self {
            ConditionEncoding::Simple3 => {
                if !motors.is_single() {
                    return None;
                }
                let mut v = vec![0.0; 3];
                if motors.x {
                    v[0] = 1.0;
                } else if motors.y {
                    v[1] = 1.0;
                } else {
                    v[2] = 1.0;
                }
                Some(v)
            }
            ConditionEncoding::Combination8 => {
                let mut v = vec![0.0; 8];
                v[motors.bits()] = 1.0;
                Some(v)
            }
        }
    }

    /// Decodes a condition vector back to a motor set, or `None` if the
    /// vector is not a valid one-hot of this encoding.
    pub fn decode(self, cond: &[f64]) -> Option<MotorSet> {
        if cond.len() != self.dim() {
            return None;
        }
        let hot: Vec<usize> = cond
            .iter()
            .enumerate()
            .filter(|(_, &v)| (v - 1.0).abs() < 1e-9)
            .map(|(i, _)| i)
            .collect();
        let all_else_zero = cond
            .iter()
            .filter(|&&v| v.abs() >= 1e-9 && (v - 1.0).abs() >= 1e-9)
            .count()
            == 0;
        if hot.len() != 1 || !all_else_zero {
            return None;
        }
        match self {
            ConditionEncoding::Simple3 => Some(match hot[0] {
                0 => MotorSet::X,
                1 => MotorSet::Y,
                _ => MotorSet::Z,
            }),
            ConditionEncoding::Combination8 => Some(MotorSet::from_bits(hot[0])),
        }
    }

    /// Every encodable condition vector, in index order. For `Simple3`
    /// these are the paper's `Cond1`, `Cond2`, `Cond3`.
    pub fn all_conditions(self) -> Vec<Vec<f64>> {
        match self {
            ConditionEncoding::Simple3 => vec![
                vec![1.0, 0.0, 0.0],
                vec![0.0, 1.0, 0.0],
                vec![0.0, 0.0, 1.0],
            ],
            ConditionEncoding::Combination8 => (0..8)
                .map(|b| {
                    let mut v = vec![0.0; 8];
                    v[b] = 1.0;
                    v
                })
                .collect(),
        }
    }
}

impl Default for ConditionEncoding {
    /// The paper's 3-way single-motor encoding.
    fn default() -> Self {
        ConditionEncoding::Simple3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_encoding_values() {
        let e = ConditionEncoding::Simple3;
        assert_eq!(e.encode(MotorSet::X), Some(vec![1.0, 0.0, 0.0]));
        assert_eq!(e.encode(MotorSet::Y), Some(vec![0.0, 1.0, 0.0]));
        assert_eq!(e.encode(MotorSet::Z), Some(vec![0.0, 0.0, 1.0]));
    }

    #[test]
    fn simple3_rejects_multi_motor() {
        let e = ConditionEncoding::Simple3;
        assert_eq!(e.encode(MotorSet::NONE), None);
        let xy = MotorSet {
            x: true,
            y: true,
            z: false,
        };
        assert_eq!(e.encode(xy), None);
    }

    #[test]
    fn combination8_encodes_everything() {
        let e = ConditionEncoding::Combination8;
        for bits in 0..8 {
            let m = MotorSet::from_bits(bits);
            let v = e.encode(m).unwrap();
            assert_eq!(v.len(), 8);
            assert_eq!(v.iter().filter(|&&x| x == 1.0).count(), 1);
            assert_eq!(v[bits], 1.0);
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        for enc in [ConditionEncoding::Simple3, ConditionEncoding::Combination8] {
            for cond in enc.all_conditions() {
                let m = enc.decode(&cond).expect("valid one-hot");
                assert_eq!(enc.encode(m), Some(cond.clone()));
            }
        }
    }

    #[test]
    fn decode_rejects_invalid() {
        let e = ConditionEncoding::Simple3;
        assert_eq!(e.decode(&[1.0, 1.0, 0.0]), None);
        assert_eq!(e.decode(&[0.0, 0.0, 0.0]), None);
        assert_eq!(e.decode(&[0.5, 0.5, 0.0]), None);
        assert_eq!(e.decode(&[1.0, 0.0]), None);
    }

    #[test]
    fn bits_round_trip() {
        for b in 0..8 {
            assert_eq!(MotorSet::from_bits(b).bits(), b);
        }
    }

    #[test]
    fn display_names_motors() {
        assert_eq!(MotorSet::X.to_string(), "X");
        assert_eq!(MotorSet::NONE.to_string(), "idle");
        let xz = MotorSet {
            x: true,
            y: false,
            z: true,
        };
        assert_eq!(xz.to_string(), "X+Z");
    }

    #[test]
    fn all_conditions_counts() {
        assert_eq!(ConditionEncoding::Simple3.all_conditions().len(), 3);
        assert_eq!(ConditionEncoding::Combination8.all_conditions().len(), 8);
    }
}
