//! Additive-manufacturing (fused-deposition 3D printer) simulator.
//!
//! The paper's case study records a physical Printrbot-class printer in a
//! makeshift anechoic chamber through a contact microphone (§IV). That
//! testbed is not reproducible in software-only form, so this crate
//! simulates the same *information structure*: a cartesian printer whose
//! four stepper motors emit axis-specific acoustic signatures driven by
//! the G/M-code it executes. The security question GAN-Sec asks — *is the
//! conditional distribution of emission features given the executing
//! command learnable and separable per motor?* — is preserved because:
//!
//! * each motor's fundamental is its kinematic **step frequency**
//!   (`steps/mm x mm/s`), exactly as in a real stepper;
//! * each axis adds a distinct mechanical-resonance signature (light X
//!   carriage vs. heavy Y bed vs. high-ratio Z leadscrew), with deliberate
//!   X/Y overlap and a well-separated Z — the overlap structure behind
//!   Table I's ordering (`Cond3` most identifiable, `Cond2` least) is an
//!   emergent property of these physical parameters, not of the labels;
//! * the anechoic chamber and contact microphone become a Gaussian noise
//!   floor, band-limited sampling, and soft clipping.
//!
//! Contents:
//!
//! * [`GCodeProgram`]/[`GCodeCommand`] — G/M-code parsing and emission;
//! * [`Kinematics`]/[`MotionSegment`] — command pairs to per-axis step
//!   rates and durations;
//! * [`AcousticModel`]/[`Microphone`] — emission synthesis and capture;
//! * [`MotorSet`]/[`ConditionEncoding`] — the paper's one-hot encodings
//!   (3-way single-motor and the suggested `2^3 = 8`-way combination);
//! * [`PrinterSim`]/[`SimulationTrace`] — end-to-end program execution;
//! * workload generators ([`single_axis_program`],
//!   [`mixed_axis_program`], [`calibration_pattern`]);
//! * [`AttackInjector`] — integrity (G-code tampering) and availability
//!   (axis stall) attacks with ground-truth labels;
//! * [`FaultModel`] — physical sensor faults (dropout, clipping, frame
//!   corruption) for robustness testing of the downstream pipeline;
//! * [`printer_architecture`] — the Figure 5/6 CPPS architecture for
//!   `gansec-cpps`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod acoustics;
mod arch;
mod attacks;
mod encoding;
mod faults;
mod frame_attacks;
mod gcode;
mod kinematics;
mod simulator;
mod workload;

pub use acoustics::{AcousticModel, AxisAcoustics, Microphone, SensorKind};
pub use arch::{printer_architecture, PrinterArchitecture};
pub use attacks::{Attack, AttackInjector, AttackKind};
pub use encoding::{ConditionEncoding, MotorSet};
pub use faults::{CorruptionKind, FaultModel, FaultReport};
pub use frame_attacks::{FrameAttackKind, FrameAttacker};
pub use gcode::{GCodeCommand, GCodeProgram, GCodeWord, ParseGCodeError};
pub use kinematics::{Axis, Kinematics, MotionSegment};
pub use simulator::{PrinterSim, SegmentRecord, SimulationTrace};
pub use workload::{calibration_pattern, mixed_axis_program, single_axis_program};
