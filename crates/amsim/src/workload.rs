//! Workload (toolpath) generators.
//!
//! §IV-B: "for simplicity, we extract G/M-codes from 3D objects that only
//! move one stepper motor at a time" — [`single_axis_program`] generates
//! exactly those. [`mixed_axis_program`] and [`calibration_pattern`]
//! exercise the extended `2^3` combination encoding.

use rand::Rng;

use crate::{Axis, GCodeCommand, GCodeProgram, GCodeWord};

/// A program of `n_moves` back-and-forth moves on a single axis at the
/// given feed (mm/min), starting from the origin. Matches the paper's
/// single-motor training objects.
///
/// # Panics
///
/// Panics if `distance <= 0` or `feed_mm_min <= 0`.
pub fn single_axis_program(
    axis: Axis,
    n_moves: usize,
    distance: f64,
    feed_mm_min: f64,
) -> GCodeProgram {
    assert!(distance > 0.0, "distance must be positive");
    assert!(feed_mm_min > 0.0, "feed must be positive");
    let mut prog = GCodeProgram::default();
    for i in 0..n_moves {
        let position = if i % 2 == 0 { distance } else { 0.0 };
        let mut words = Vec::new();
        if i == 0 {
            words.push(GCodeWord {
                letter: 'F',
                value: feed_mm_min,
            });
        }
        words.push(GCodeWord {
            letter: axis.letter(),
            value: position,
        });
        prog.push(GCodeCommand::linear_move(words));
    }
    prog
}

/// A program alternating single-axis moves over X, Y, Z in round-robin
/// order with per-axis feeds (slower Z, as slicers emit). Produces a
/// balanced dataset over the paper's three conditions.
///
/// # Panics
///
/// Panics if `moves_per_axis == 0`.
pub fn calibration_pattern(moves_per_axis: usize) -> GCodeProgram {
    assert!(moves_per_axis > 0, "moves_per_axis must be positive");
    let mut prog = GCodeProgram::default();
    // Slicer-realistic feeds: belt axes fast, the Z leadscrew slow. At
    // these rates the step combs are distinct (X/Y 1600 Hz, Z 800 Hz).
    let feeds = [1200.0, 1200.0, 120.0];
    let distances = [20.0, 20.0, 2.0];
    let axes = [Axis::X, Axis::Y, Axis::Z];
    let mut positions = [0.0f64; 3];
    for round in 0..moves_per_axis {
        for (i, axis) in axes.iter().enumerate() {
            positions[i] = if round % 2 == 0 { distances[i] } else { 0.0 };
            prog.push(GCodeCommand::linear_move(vec![
                GCodeWord {
                    letter: 'F',
                    value: feeds[i],
                },
                GCodeWord {
                    letter: axis.letter(),
                    value: positions[i],
                },
            ]));
        }
    }
    prog
}

/// A randomized program mixing single- and multi-axis moves, dwells and
/// occasional extrusion: the workload for the `2^3` combination-encoding
/// ablation and for attack-detection experiments.
///
/// # Panics
///
/// Panics if `n_commands == 0`.
pub fn mixed_axis_program(n_commands: usize, rng: &mut impl Rng) -> GCodeProgram {
    assert!(n_commands > 0, "n_commands must be positive");
    let mut prog = GCodeProgram::default();
    let mut pos = [0.0f64; 3];
    for _ in 0..n_commands {
        let roll: f64 = rng.gen();
        if roll < 0.08 {
            // Dwell.
            prog.push(GCodeCommand::new(
                'G',
                4,
                vec![GCodeWord {
                    letter: 'P',
                    value: rng.gen_range(100.0..400.0),
                }],
            ));
            continue;
        }
        let mut words = vec![GCodeWord {
            letter: 'F',
            value: rng.gen_range(300.0..2400.0),
        }];
        // Choose 1-3 axes to move.
        let n_axes = 1 + (rng.gen_range(0..100) % 3).min(2);
        let mut axes: Vec<usize> = (0..3).collect();
        for i in (1..axes.len()).rev() {
            let j = rng.gen_range(0..=i);
            axes.swap(i, j);
        }
        for &ai in axes.iter().take(n_axes) {
            let delta: f64 = rng.gen_range(1.0..15.0);
            let sign = if rng.gen::<bool>() && pos[ai] - delta > -50.0 {
                -1.0
            } else {
                1.0
            };
            pos[ai] += sign * delta;
            let letter = [Axis::X, Axis::Y, Axis::Z][ai].letter();
            words.push(GCodeWord {
                letter,
                value: pos[ai],
            });
        }
        if roll > 0.85 {
            words.push(GCodeWord {
                letter: 'E',
                value: rng.gen_range(0.1..2.0),
            });
        }
        prog.push(GCodeCommand::linear_move(words));
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Kinematics, MotorSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_axis_moves_only_one_motor() {
        for axis in [Axis::X, Axis::Y, Axis::Z] {
            let prog = single_axis_program(axis, 6, 10.0, 1200.0);
            let segs = Kinematics::printrbot_class().plan(&prog);
            assert_eq!(segs.len(), 6);
            for s in &segs {
                assert_eq!(s.active_axes(), vec![axis]);
            }
        }
    }

    #[test]
    fn single_axis_alternates_direction() {
        let prog = single_axis_program(Axis::X, 4, 10.0, 1200.0);
        let segs = Kinematics::printrbot_class().plan(&prog);
        assert!(segs[0].distances_mm[0] > 0.0);
        assert!(segs[1].distances_mm[0] < 0.0);
        assert!(segs[2].distances_mm[0] > 0.0);
    }

    #[test]
    fn calibration_pattern_is_balanced() {
        let prog = calibration_pattern(4);
        let segs = Kinematics::printrbot_class().plan(&prog);
        let mut counts = [0usize; 3];
        for s in &segs {
            let m = MotorSet::from_segment(s);
            assert!(m.is_single(), "calibration must be single-axis");
            counts[if m.x {
                0
            } else if m.y {
                1
            } else {
                2
            }] += 1;
        }
        assert_eq!(counts, [4, 4, 4]);
    }

    #[test]
    fn mixed_program_contains_multi_axis_moves() {
        let mut rng = StdRng::seed_from_u64(11);
        let prog = mixed_axis_program(100, &mut rng);
        let segs = Kinematics::printrbot_class().plan(&prog);
        let multi = segs
            .iter()
            .filter(|s| MotorSet::from_segment(s).count() > 1)
            .count();
        assert!(multi > 5, "expected multi-axis moves, got {multi}");
    }

    #[test]
    fn mixed_program_is_reproducible_per_seed() {
        let a = mixed_axis_program(20, &mut StdRng::seed_from_u64(3));
        let b = mixed_axis_program(20, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn programs_reparse() {
        let mut rng = StdRng::seed_from_u64(5);
        for prog in [
            single_axis_program(Axis::Z, 3, 4.0, 240.0),
            calibration_pattern(2),
            mixed_axis_program(30, &mut rng),
        ] {
            let reparsed = GCodeProgram::parse(&prog.to_source()).unwrap();
            assert_eq!(prog.len(), reparsed.len());
        }
    }

    #[test]
    #[should_panic(expected = "distance")]
    fn rejects_zero_distance() {
        let _ = single_axis_program(Axis::X, 1, 0.0, 1200.0);
    }
}
