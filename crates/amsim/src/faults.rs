//! Physical-fault injection for emission capture.
//!
//! The clean simulator models anechoic-chamber capture; real factory-floor
//! sensors do not behave that well. This module wraps a captured emission
//! signal with the three dominant failure modes of contact-microphone
//! telemetry:
//!
//! * **sensor dropout** — the channel goes dead for short windows
//!   (connector glitches, buffer underruns), reading exactly zero;
//! * **amplitude clipping** — the ADC saturates at a rail, flattening
//!   peaks (misplaced sensor, wrong gain);
//! * **frame corruption** — individual samples are replaced with garbage
//!   (stuck-at-zero, full-scale spikes, or non-finite values from a
//!   corrupted DMA transfer).
//!
//! Downstream dataset construction and Algorithm 3 scoring must degrade
//! gracefully under these faults — skipping or flagging bad frames rather
//! than producing NaN likelihoods — and the integration suite uses
//! [`FaultModel`] to prove that.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::SimulationTrace;

/// What a corrupted sample is replaced with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CorruptionKind {
    /// Stuck-at-zero samples.
    Zero,
    /// Full-scale spikes of random polarity.
    Spike {
        /// Absolute amplitude of the injected spike.
        amplitude: f64,
    },
    /// Non-finite garbage (`NaN`), the worst case for numeric pipelines.
    NonFinite,
}

/// Tally of samples degraded by one [`FaultModel::apply`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Samples zeroed by dropout windows.
    pub dropout_samples: usize,
    /// Samples flattened to the clip rail.
    pub clipped_samples: usize,
    /// Samples replaced by the corruption model.
    pub corrupted_samples: usize,
}

impl FaultReport {
    /// Total degraded samples (a sample hit twice counts twice).
    pub fn total_faulted(&self) -> usize {
        self.dropout_samples + self.clipped_samples + self.corrupted_samples
    }

    /// Whether the pass left the signal untouched.
    pub fn is_clean(&self) -> bool {
        self.total_faulted() == 0
    }

    /// Accumulates another report into this one.
    pub fn absorb(&mut self, other: &FaultReport) {
        self.dropout_samples += other.dropout_samples;
        self.clipped_samples += other.clipped_samples;
        self.corrupted_samples += other.corrupted_samples;
    }
}

/// A configurable sensor-fault model applied over a captured signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Expected dropout events per second of signal (Poisson-like via a
    /// per-sample Bernoulli start).
    pub dropout_per_s: f64,
    /// Duration of each dropout window in seconds.
    pub dropout_len_s: f64,
    /// Saturation rail: samples beyond `±level` are flattened to it.
    pub clip_level: Option<f64>,
    /// Per-sample probability of corruption in `[0, 1]`.
    pub corruption_prob: f64,
    /// What corrupted samples become.
    pub corruption: CorruptionKind,
}

impl FaultModel {
    /// The identity model: no faults injected.
    pub fn none() -> Self {
        Self {
            dropout_per_s: 0.0,
            dropout_len_s: 0.0,
            clip_level: None,
            corruption_prob: 0.0,
            corruption: CorruptionKind::Zero,
        }
    }

    /// A factory-floor preset: a couple of dropouts per second, a
    /// saturating ADC, and sporadic non-finite corruption. Used by the
    /// robustness tests to stress the analysis pipeline.
    pub fn harsh() -> Self {
        Self {
            dropout_per_s: 2.0,
            dropout_len_s: 0.01,
            clip_level: Some(0.5),
            corruption_prob: 2e-4,
            corruption: CorruptionKind::NonFinite,
        }
    }

    /// Whether this model can alter any sample.
    pub fn is_disabled(&self) -> bool {
        (self.dropout_per_s == 0.0 || self.dropout_len_s == 0.0)
            && self.clip_level.is_none()
            && self.corruption_prob == 0.0
    }

    fn validate(&self) {
        assert!(
            self.dropout_per_s.is_finite() && self.dropout_per_s >= 0.0,
            "dropout_per_s must be finite and non-negative: {}",
            self.dropout_per_s
        );
        assert!(
            self.dropout_len_s.is_finite() && self.dropout_len_s >= 0.0,
            "dropout_len_s must be finite and non-negative: {}",
            self.dropout_len_s
        );
        if let Some(level) = self.clip_level {
            assert!(
                level.is_finite() && level > 0.0,
                "clip_level must be finite and positive: {level}"
            );
        }
        assert!(
            (0.0..=1.0).contains(&self.corruption_prob),
            "corruption_prob must be in [0, 1]: {}",
            self.corruption_prob
        );
    }

    /// Degrades `signal` in place and reports what was hit. Faults are
    /// applied in physical order: dropout (sensor), clipping (ADC), then
    /// corruption (transfer).
    ///
    /// # Panics
    ///
    /// Panics if the model parameters are out of range or `sample_rate`
    /// is not positive.
    pub fn apply(&self, signal: &mut [f64], sample_rate: f64, rng: &mut impl Rng) -> FaultReport {
        self.validate();
        assert!(
            sample_rate.is_finite() && sample_rate > 0.0,
            "sample_rate must be positive: {sample_rate}"
        );
        let mut report = FaultReport::default();
        let n = signal.len();
        if n == 0 {
            return report;
        }

        if self.dropout_per_s > 0.0 && self.dropout_len_s > 0.0 {
            let p_start = (self.dropout_per_s / sample_rate).min(1.0);
            let len = ((self.dropout_len_s * sample_rate).ceil() as usize).max(1);
            let mut i = 0;
            while i < n {
                if rng.gen_bool(p_start) {
                    let end = (i + len).min(n);
                    for s in &mut signal[i..end] {
                        *s = 0.0;
                    }
                    report.dropout_samples += end - i;
                    i = end;
                } else {
                    i += 1;
                }
            }
        }

        if let Some(level) = self.clip_level {
            for s in signal.iter_mut() {
                if s.abs() > level {
                    *s = level * s.signum();
                    report.clipped_samples += 1;
                }
            }
        }

        if self.corruption_prob > 0.0 {
            for s in signal.iter_mut() {
                if rng.gen_bool(self.corruption_prob) {
                    *s = match self.corruption {
                        CorruptionKind::Zero => 0.0,
                        CorruptionKind::Spike { amplitude } => {
                            if rng.gen_bool(0.5) {
                                amplitude
                            } else {
                                -amplitude
                            }
                        }
                        CorruptionKind::NonFinite => f64::NAN,
                    };
                    report.corrupted_samples += 1;
                }
            }
        }

        report
    }

    /// Degrades both capture channels of a [`SimulationTrace`] in place
    /// (independent fault draws per channel) and returns the combined
    /// report.
    ///
    /// # Panics
    ///
    /// As for [`FaultModel::apply`].
    pub fn apply_to_trace(&self, trace: &mut SimulationTrace, rng: &mut impl Rng) -> FaultReport {
        let sample_rate = trace.sample_rate;
        let mut report = self.apply(&mut trace.audio, sample_rate, rng);
        report.absorb(&self.apply(&mut trace.vibration, sample_rate, rng));
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sine(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.13).sin()).collect()
    }

    #[test]
    fn none_model_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut signal = sine(1000);
        let original = signal.clone();
        let report = FaultModel::none().apply(&mut signal, 8000.0, &mut rng);
        assert!(report.is_clean());
        assert!(FaultModel::none().is_disabled());
        assert_eq!(signal, original);
    }

    #[test]
    fn dropout_zeroes_whole_windows() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut signal = vec![1.0; 8000];
        let model = FaultModel {
            dropout_per_s: 50.0,
            dropout_len_s: 0.01,
            ..FaultModel::none()
        };
        let report = model.apply(&mut signal, 8000.0, &mut rng);
        assert!(report.dropout_samples > 0);
        let zeros = signal.iter().filter(|&&s| s == 0.0).count();
        assert_eq!(zeros, report.dropout_samples);
        // Windows are 80 samples; at least one full window must exist.
        let mut run = 0usize;
        let mut longest = 0usize;
        for &s in &signal {
            if s == 0.0 {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
        }
        assert!(longest >= 80, "longest zero run {longest}");
    }

    #[test]
    fn clipping_saturates_at_rail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut signal: Vec<f64> = (0..100).map(|i| (i as f64 - 50.0) * 0.1).collect();
        let model = FaultModel {
            clip_level: Some(1.0),
            ..FaultModel::none()
        };
        let report = model.apply(&mut signal, 8000.0, &mut rng);
        assert!(report.clipped_samples > 0);
        assert!(signal.iter().all(|s| s.abs() <= 1.0));
        // In-range samples are untouched.
        assert_eq!(signal[50], 0.0);
    }

    #[test]
    fn corruption_injects_requested_kind() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut signal = sine(5000);
        let model = FaultModel {
            corruption_prob: 0.05,
            corruption: CorruptionKind::NonFinite,
            ..FaultModel::none()
        };
        let report = model.apply(&mut signal, 8000.0, &mut rng);
        assert!(report.corrupted_samples > 0);
        let nans = signal.iter().filter(|s| !s.is_finite()).count();
        assert_eq!(nans, report.corrupted_samples);

        let mut spiked = sine(5000);
        let model = FaultModel {
            corruption_prob: 0.05,
            corruption: CorruptionKind::Spike { amplitude: 9.0 },
            ..FaultModel::none()
        };
        let report = model.apply(&mut spiked, 8000.0, &mut rng);
        let spikes = spiked.iter().filter(|&&s| s.abs() == 9.0).count();
        assert_eq!(spikes, report.corrupted_samples);
    }

    #[test]
    fn faults_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut signal = sine(2000);
            let report = FaultModel::harsh().apply(&mut signal, 8000.0, &mut rng);
            let fingerprint = signal
                .iter()
                .fold(0u64, |acc, s| acc.rotate_left(7) ^ s.to_bits());
            (fingerprint, report)
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    #[should_panic(expected = "corruption_prob")]
    fn invalid_probability_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = FaultModel {
            corruption_prob: 1.5,
            ..FaultModel::none()
        };
        let _ = model.apply(&mut [0.0], 8000.0, &mut rng);
    }
}
