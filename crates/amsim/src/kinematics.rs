//! Printer kinematics: G-code command pairs to per-axis motion.
//!
//! The acoustic fundamental of a stepper motor is its *step frequency*:
//! `steps_per_mm x axis_speed_mm_s`. The kinematic model tracks absolute
//! position and feed rate across commands and converts each move into a
//! [`MotionSegment`] carrying the per-axis step rates that drive the
//! acoustic synthesis.

use serde::{Deserialize, Serialize};

use crate::{GCodeCommand, GCodeProgram};

/// The four driven axes of a cartesian fused-deposition printer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// Carriage left/right.
    X,
    /// Bed forward/back (on the paper's printer the Y motor moves the
    /// whole bed — the heaviest load).
    Y,
    /// Vertical leadscrew.
    Z,
    /// Filament extruder.
    E,
}

impl Axis {
    /// All axes in canonical order.
    pub const ALL: [Axis; 4] = [Axis::X, Axis::Y, Axis::Z, Axis::E];

    /// The G-code address letter.
    pub fn letter(self) -> char {
        match self {
            Axis::X => 'X',
            Axis::Y => 'Y',
            Axis::Z => 'Z',
            Axis::E => 'E',
        }
    }

    /// Dense index into per-axis arrays.
    pub fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
            Axis::E => 3,
        }
    }
}

/// Kinematic parameters of the printer.
///
/// # Example
///
/// ```
/// use gansec_amsim::{Axis, GCodeProgram, Kinematics};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // F1200 = 20 mm/s; X at 80 steps/mm emits a 1600 Hz step comb.
/// let program: GCodeProgram = "G1 F1200 X10".parse()?;
/// let segments = Kinematics::printrbot_class().plan(&program);
/// assert_eq!(segments[0].step_rates_hz[Axis::X.index()], 1600.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kinematics {
    /// Full steps (including microstepping) per millimeter, per axis.
    steps_per_mm: [f64; 4],
    /// Feed rate (mm/min) assumed when a program never sets `F`.
    default_feed_mm_min: f64,
    /// Upper clamp on feed rate (mm/min), as firmware would enforce.
    max_feed_mm_min: f64,
}

impl Kinematics {
    /// Creates a kinematic model.
    ///
    /// # Panics
    ///
    /// Panics if any `steps_per_mm` entry or feed parameter is not
    /// positive and finite.
    pub fn new(steps_per_mm: [f64; 4], default_feed_mm_min: f64, max_feed_mm_min: f64) -> Self {
        assert!(
            steps_per_mm.iter().all(|&s| s.is_finite() && s > 0.0),
            "steps_per_mm must be positive"
        );
        assert!(
            default_feed_mm_min > 0.0 && max_feed_mm_min >= default_feed_mm_min,
            "need 0 < default_feed <= max_feed"
        );
        Self {
            steps_per_mm,
            default_feed_mm_min,
            max_feed_mm_min,
        }
    }

    /// A Printrbot-class printer: belt-driven X/Y at 80 steps/mm,
    /// leadscrew Z at 400 steps/mm, geared extruder at 96 steps/mm.
    /// The 5x step ratio of Z is what makes its acoustic signature the
    /// most distinctive (the paper's `Cond3`).
    pub fn printrbot_class() -> Self {
        Self::new([80.0, 80.0, 400.0, 96.0], 1200.0, 6000.0)
    }

    /// Steps per millimeter for `axis`.
    pub fn steps_per_mm(&self, axis: Axis) -> f64 {
        self.steps_per_mm[axis.index()]
    }

    /// Converts a program into motion segments, tracking absolute
    /// position, modal feed rate, and the `G90`/`G91`
    /// absolute/relative positioning mode. Non-move commands produce:
    /// `G4` dwells a silent segment of the requested duration (`P` ms or
    /// `S` seconds); `G28` homes tracked axes (instantaneous at this
    /// abstraction level); everything else (M-codes) is skipped as
    /// acoustically negligible.
    pub fn plan(&self, program: &GCodeProgram) -> Vec<MotionSegment> {
        let mut segments = Vec::new();
        let mut pos = [0.0f64; 4];
        let mut feed = self.default_feed_mm_min;
        let mut relative = false;
        for (i, cmd) in program.commands().iter().enumerate() {
            if cmd.mnemonic == 'G' {
                match cmd.code {
                    90 => {
                        relative = false;
                        continue;
                    }
                    91 => {
                        relative = true;
                        continue;
                    }
                    28 => {
                        // Home: named axes (or all, if none named) to 0.
                        let named: Vec<Axis> = Axis::ALL
                            .into_iter()
                            .filter(|a| cmd.word(a.letter()).is_some())
                            .collect();
                        let targets = if named.is_empty() {
                            vec![Axis::X, Axis::Y, Axis::Z]
                        } else {
                            named
                        };
                        for a in targets {
                            pos[a.index()] = 0.0;
                        }
                        continue;
                    }
                    _ => {}
                }
            }
            if cmd.is_dwell() {
                let seconds = cmd
                    .word('P')
                    .map(|ms| ms / 1000.0)
                    .or_else(|| cmd.word('S'))
                    .unwrap_or(0.0)
                    .max(0.0);
                if seconds > 0.0 {
                    segments.push(MotionSegment {
                        command_index: i,
                        duration_s: seconds,
                        step_rates_hz: [0.0; 4],
                        distances_mm: [0.0; 4],
                        feed_mm_s: 0.0,
                    });
                }
                continue;
            }
            if !cmd.is_move() {
                continue;
            }
            if let Some(f) = cmd.word('F') {
                feed = f.clamp(1.0, self.max_feed_mm_min);
            }
            if let Some(seg) = self.segment_for_move(i, cmd, &mut pos, feed, relative) {
                segments.push(seg);
            }
        }
        segments
    }

    /// Plans a single move given the current position, updating it.
    /// Returns `None` for zero-distance moves.
    fn segment_for_move(
        &self,
        command_index: usize,
        cmd: &GCodeCommand,
        pos: &mut [f64; 4],
        feed_mm_min: f64,
        relative: bool,
    ) -> Option<MotionSegment> {
        let mut distances = [0.0f64; 4];
        for axis in Axis::ALL {
            if let Some(value) = cmd.word(axis.letter()) {
                let target = if relative {
                    pos[axis.index()] + value
                } else {
                    value
                };
                distances[axis.index()] = target - pos[axis.index()];
                pos[axis.index()] = target;
            }
        }
        // Cartesian path length over XYZ; E-only moves use E distance.
        let xyz_len = (distances[0] * distances[0]
            + distances[1] * distances[1]
            + distances[2] * distances[2])
            .sqrt();
        let path_len = if xyz_len > 0.0 {
            xyz_len
        } else {
            distances[3].abs()
        };
        if path_len <= 0.0 {
            return None;
        }
        let feed_mm_s = feed_mm_min / 60.0;
        let duration_s = path_len / feed_mm_s;
        let mut step_rates = [0.0f64; 4];
        for axis in Axis::ALL {
            let d = distances[axis.index()].abs();
            if d > 0.0 {
                let axis_speed = d / duration_s;
                step_rates[axis.index()] = axis_speed * self.steps_per_mm[axis.index()];
            }
        }
        Some(MotionSegment {
            command_index,
            duration_s,
            step_rates_hz: step_rates,
            distances_mm: distances,
            feed_mm_s,
        })
    }
}

impl Default for Kinematics {
    /// The Printrbot-class parameters of the case study.
    fn default() -> Self {
        Self::printrbot_class()
    }
}

/// One planned motion: the kinematic ground truth for a command.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotionSegment {
    /// Index of the originating command within the program.
    pub command_index: usize,
    /// Wall-clock duration in seconds.
    pub duration_s: f64,
    /// Per-axis stepper step frequency in Hz (0 for idle axes), indexed
    /// by [`Axis::index`].
    pub step_rates_hz: [f64; 4],
    /// Signed per-axis travel in millimeters.
    pub distances_mm: [f64; 4],
    /// Path feed rate in mm/s (0 for dwells).
    pub feed_mm_s: f64,
}

impl MotionSegment {
    /// Axes with nonzero step rate.
    pub fn active_axes(&self) -> Vec<Axis> {
        Axis::ALL
            .into_iter()
            .filter(|a| self.step_rates_hz[a.index()] > 0.0)
            .collect()
    }

    /// Whether any motor is running.
    pub fn is_motion(&self) -> bool {
        self.step_rates_hz.iter().any(|&r| r > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(src: &str) -> Vec<MotionSegment> {
        Kinematics::printrbot_class().plan(&GCodeProgram::parse(src).unwrap())
    }

    #[test]
    fn single_axis_step_rate_matches_physics() {
        // F1200 = 20 mm/s; X at 80 steps/mm -> 1600 Hz fundamental.
        let segs = plan("G1 F1200 X10");
        assert_eq!(segs.len(), 1);
        let s = &segs[0];
        assert!((s.duration_s - 0.5).abs() < 1e-9);
        assert!((s.step_rates_hz[Axis::X.index()] - 1600.0).abs() < 1e-9);
        assert_eq!(s.active_axes(), vec![Axis::X]);
    }

    #[test]
    fn z_axis_is_five_times_denser() {
        let x = plan("G1 F1200 X10");
        let z = plan("G1 F1200 Z10");
        let rx = x[0].step_rates_hz[Axis::X.index()];
        let rz = z[0].step_rates_hz[Axis::Z.index()];
        assert!((rz / rx - 5.0).abs() < 1e-9, "rz {rz} rx {rx}");
    }

    #[test]
    fn diagonal_move_splits_rates() {
        // 3-4-5 triangle: X=3, Y=4, path=5 at 20 mm/s -> duration 0.25 s.
        let segs = plan("G1 F1200 X3 Y4");
        let s = &segs[0];
        assert!((s.duration_s - 0.25).abs() < 1e-9);
        let rx = s.step_rates_hz[Axis::X.index()];
        let ry = s.step_rates_hz[Axis::Y.index()];
        assert!((rx - 3.0 / 0.25 * 80.0).abs() < 1e-9);
        assert!((ry - 4.0 / 0.25 * 80.0).abs() < 1e-9);
    }

    #[test]
    fn positions_are_modal() {
        // Second command moves X 10 -> 10 (no-op) so yields no segment.
        let segs = plan("G1 F1200 X10\nG1 X10\nG1 X20");
        assert_eq!(segs.len(), 2);
        assert!((segs[1].distances_mm[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn feed_rate_is_modal() {
        let segs = plan("G1 F600 X10\nG1 X20");
        assert!((segs[0].feed_mm_s - 10.0).abs() < 1e-9);
        assert!((segs[1].feed_mm_s - 10.0).abs() < 1e-9);
    }

    #[test]
    fn negative_moves_have_positive_rates() {
        let segs = plan("G1 F1200 X-10");
        assert!(segs[0].step_rates_hz[0] > 0.0);
        assert!(segs[0].distances_mm[0] < 0.0);
    }

    #[test]
    fn dwell_is_silent_segment() {
        let segs = plan("G4 P500");
        assert_eq!(segs.len(), 1);
        assert!((segs[0].duration_s - 0.5).abs() < 1e-9);
        assert!(!segs[0].is_motion());
        // S variant in seconds.
        let segs = plan("G4 S2");
        assert!((segs[0].duration_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn extruder_only_move_uses_e_distance() {
        let segs = plan("G1 F120 E5");
        assert_eq!(segs.len(), 1);
        // 2 mm/s * 96 steps/mm = 192 Hz.
        assert!((segs[0].step_rates_hz[Axis::E.index()] - 192.0).abs() < 1e-9);
    }

    #[test]
    fn non_motion_commands_skipped() {
        let segs = plan("M104 S200\nG28\nM84");
        assert!(segs.is_empty());
    }

    #[test]
    fn relative_mode_accumulates() {
        // G91: each X5 advances 5 mm from the previous position.
        let segs = plan("G91\nG1 F1200 X5\nG1 X5\nG1 X-10");
        assert_eq!(segs.len(), 3);
        assert!((segs[0].distances_mm[0] - 5.0).abs() < 1e-9);
        assert!((segs[1].distances_mm[0] - 5.0).abs() < 1e-9);
        assert!((segs[2].distances_mm[0] + 10.0).abs() < 1e-9);
    }

    #[test]
    fn g90_returns_to_absolute() {
        let segs = plan("G91\nG1 F1200 X5\nG90\nG1 X5");
        // After the relative X5, position is 5; absolute X5 is a no-op.
        assert_eq!(segs.len(), 1);
    }

    #[test]
    fn g28_homes_axes() {
        // Move out, home X only, then absolute X10 travels the full 10.
        let segs = plan("G1 F1200 X10\nG28 X0\nG1 X10");
        assert_eq!(segs.len(), 2);
        assert!((segs[1].distances_mm[0] - 10.0).abs() < 1e-9);
        // Bare G28 homes X, Y and Z.
        let segs = plan("G1 F1200 X10 Y10\nG28\nG1 X10 Y10");
        assert!((segs[1].distances_mm[0] - 10.0).abs() < 1e-9);
        assert!((segs[1].distances_mm[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn feed_clamped_to_max() {
        let k = Kinematics::printrbot_class();
        let prog = GCodeProgram::parse("G1 F999999 X10").unwrap();
        let segs = k.plan(&prog);
        // 6000 mm/min = 100 mm/s -> 0.1 s for 10 mm.
        assert!((segs[0].duration_s - 0.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "steps_per_mm")]
    fn rejects_nonpositive_steps() {
        let _ = Kinematics::new([0.0, 80.0, 400.0, 96.0], 1200.0, 6000.0);
    }
}
