//! G/M-code parsing and emission.
//!
//! The paper drives its printer with "G-code, a programming language
//! widely used in industrial systems ... along with M-code, auxiliary
//! commands" (§IV). This parser covers the dialect the case study uses:
//! `G0`/`G1` moves with `F`/`X`/`Y`/`Z`/`E` words, `G4` dwells, `G28`
//! homing, `G90`/`G91` positioning modes, and arbitrary `M` codes, with
//! `;` and parenthesized comments.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// One address word of a command, e.g. `X10.5`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GCodeWord {
    /// Address letter, uppercased (`'X'`, `'F'`, ...).
    pub letter: char,
    /// Numeric value.
    pub value: f64,
}

impl fmt::Display for GCodeWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.value == self.value.trunc() && self.value.abs() < 1e15 {
            write!(f, "{}{}", self.letter, self.value as i64)
        } else {
            write!(f, "{}{}", self.letter, self.value)
        }
    }
}

/// One G/M-code command: a code word plus its parameter words.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GCodeCommand {
    /// `'G'` or `'M'`.
    pub mnemonic: char,
    /// Code number (`1` in `G1`).
    pub code: u32,
    /// Parameter words in source order.
    pub words: Vec<GCodeWord>,
}

impl GCodeCommand {
    /// Creates a command from its parts.
    pub fn new(mnemonic: char, code: u32, words: Vec<GCodeWord>) -> Self {
        Self {
            mnemonic: mnemonic.to_ascii_uppercase(),
            code,
            words,
        }
    }

    /// Convenience constructor for a `G1` linear move.
    pub fn linear_move(words: Vec<GCodeWord>) -> Self {
        Self::new('G', 1, words)
    }

    /// The value of parameter `letter`, if present (first occurrence).
    pub fn word(&self, letter: char) -> Option<f64> {
        let letter = letter.to_ascii_uppercase();
        self.words
            .iter()
            .find(|w| w.letter == letter)
            .map(|w| w.value)
    }

    /// Sets or replaces parameter `letter`.
    pub fn set_word(&mut self, letter: char, value: f64) {
        let letter = letter.to_ascii_uppercase();
        if let Some(w) = self.words.iter_mut().find(|w| w.letter == letter) {
            w.value = value;
        } else {
            self.words.push(GCodeWord { letter, value });
        }
    }

    /// Removes parameter `letter` if present; returns its old value.
    pub fn remove_word(&mut self, letter: char) -> Option<f64> {
        let letter = letter.to_ascii_uppercase();
        let pos = self.words.iter().position(|w| w.letter == letter)?;
        Some(self.words.remove(pos).value)
    }

    /// Whether this is a motion command (`G0` or `G1`).
    pub fn is_move(&self) -> bool {
        self.mnemonic == 'G' && (self.code == 0 || self.code == 1)
    }

    /// Whether this is a dwell (`G4`).
    pub fn is_dwell(&self) -> bool {
        self.mnemonic == 'G' && self.code == 4
    }
}

impl fmt::Display for GCodeCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.mnemonic, self.code)?;
        for w in &self.words {
            write!(f, " {w}")?;
        }
        Ok(())
    }
}

/// Error from parsing G-code text.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseGCodeError {
    line: usize,
    message: String,
}

impl ParseGCodeError {
    /// 1-based source line of the error.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseGCodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "g-code parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseGCodeError {}

/// A parsed G/M-code program: the signal flow entering the printer
/// sub-system from external node `C4`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GCodeProgram {
    commands: Vec<GCodeCommand>,
}

impl GCodeProgram {
    /// Wraps a command list.
    pub fn new(commands: Vec<GCodeCommand>) -> Self {
        Self { commands }
    }

    /// Parses a full program, skipping blank lines and comments.
    ///
    /// # Errors
    ///
    /// Returns [`ParseGCodeError`] with the offending 1-based line number
    /// on malformed input.
    pub fn parse(source: &str) -> Result<Self, ParseGCodeError> {
        let mut commands = Vec::new();
        for (i, raw_line) in source.lines().enumerate() {
            let line_no = i + 1;
            let line = strip_comments(raw_line);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            commands.push(parse_command(line, line_no)?);
        }
        Ok(Self { commands })
    }

    /// The commands in program order.
    pub fn commands(&self) -> &[GCodeCommand] {
        &self.commands
    }

    /// Mutable access for attack injection.
    pub fn commands_mut(&mut self) -> &mut Vec<GCodeCommand> {
        &mut self.commands
    }

    /// Number of commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Appends a command.
    pub fn push(&mut self, command: GCodeCommand) {
        self.commands.push(command);
    }

    /// Serializes back to G-code text (one command per line).
    pub fn to_source(&self) -> String {
        let mut out = String::new();
        for c in &self.commands {
            out.push_str(&c.to_string());
            out.push('\n');
        }
        out
    }
}

impl FromStr for GCodeProgram {
    type Err = ParseGCodeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

impl FromIterator<GCodeCommand> for GCodeProgram {
    fn from_iter<I: IntoIterator<Item = GCodeCommand>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

fn strip_comments(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_parens = false;
    for ch in line.chars() {
        match ch {
            ';' if !in_parens => break,
            '(' => in_parens = true,
            ')' if in_parens => in_parens = false,
            _ if !in_parens => out.push(ch),
            _ => {}
        }
    }
    out
}

fn parse_command(line: &str, line_no: usize) -> Result<GCodeCommand, ParseGCodeError> {
    let err = |message: String| ParseGCodeError {
        line: line_no,
        message,
    };
    let mut tokens = line.split_whitespace();
    let head = tokens.next().expect("caller skips empty lines");
    let mut head_chars = head.chars();
    let mnemonic = head_chars
        .next()
        .expect("split_whitespace yields nonempty tokens")
        .to_ascii_uppercase();
    if mnemonic != 'G' && mnemonic != 'M' {
        return Err(err(format!("expected G or M command, found {head:?}")));
    }
    let code_str: String = head_chars.collect();
    let code: u32 = code_str
        .parse()
        .map_err(|_| err(format!("invalid code number in {head:?}")))?;

    let mut words = Vec::new();
    for tok in tokens {
        let mut chars = tok.chars();
        let letter = chars
            .next()
            .expect("split_whitespace yields nonempty tokens")
            .to_ascii_uppercase();
        if !letter.is_ascii_alphabetic() {
            return Err(err(format!("invalid word {tok:?}")));
        }
        let value_str: String = chars.collect();
        let value: f64 = value_str
            .parse()
            .map_err(|_| err(format!("invalid number in word {tok:?}")))?;
        words.push(GCodeWord { letter, value });
    }
    Ok(GCodeCommand {
        mnemonic,
        code,
        words,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        // §IV-B: "if G_{t-1} is [G1 F1200 X5 Y5 Z5] and G_t is
        // [G1 F1200 X10 Y5 Z5] then encoding for G_t will be [1,0,0]".
        let prog = GCodeProgram::parse("G1 F1200 X5 Y5 Z5\nG1 F1200 X10 Y5 Z5").unwrap();
        assert_eq!(prog.len(), 2);
        let c = &prog.commands()[1];
        assert!(c.is_move());
        assert_eq!(c.word('X'), Some(10.0));
        assert_eq!(c.word('F'), Some(1200.0));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let src = "; full line comment\nG1 X1 ; trailing\n\nG1 X2 (inline) Y3\n";
        let prog = GCodeProgram::parse(src).unwrap();
        assert_eq!(prog.len(), 2);
        assert_eq!(prog.commands()[1].word('Y'), Some(3.0));
    }

    #[test]
    fn case_insensitive() {
        let prog = GCodeProgram::parse("g1 x5 y-2.5 f600").unwrap();
        let c = &prog.commands()[0];
        assert_eq!(c.mnemonic, 'G');
        assert_eq!(c.word('x'), Some(5.0));
        assert_eq!(c.word('Y'), Some(-2.5));
    }

    #[test]
    fn m_codes_parse() {
        let prog = GCodeProgram::parse("M104 S200\nM84").unwrap();
        assert_eq!(prog.commands()[0].mnemonic, 'M');
        assert_eq!(prog.commands()[0].code, 104);
        assert_eq!(prog.commands()[0].word('S'), Some(200.0));
        assert!(prog.commands()[1].words.is_empty());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = GCodeProgram::parse("G1 X1\nT0 nonsense").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("line 2"));
        let err = GCodeProgram::parse("G1 Xfoo").unwrap_err();
        assert_eq!(err.line(), 1);
        let err = GCodeProgram::parse("Gx").unwrap_err();
        assert_eq!(err.line(), 1);
    }

    #[test]
    fn round_trip_through_source() {
        let src = "G1 F1200 X10 Y5 Z5\nG4 P500\nM107\n";
        let prog = GCodeProgram::parse(src).unwrap();
        let emitted = prog.to_source();
        let reparsed = GCodeProgram::parse(&emitted).unwrap();
        assert_eq!(prog, reparsed);
    }

    #[test]
    fn word_mutation() {
        let mut c = GCodeCommand::linear_move(vec![GCodeWord {
            letter: 'X',
            value: 5.0,
        }]);
        c.set_word('x', 7.0);
        assert_eq!(c.word('X'), Some(7.0));
        c.set_word('Y', 1.0);
        assert_eq!(c.word('Y'), Some(1.0));
        assert_eq!(c.remove_word('Y'), Some(1.0));
        assert_eq!(c.word('Y'), None);
        assert_eq!(c.remove_word('Q'), None);
    }

    #[test]
    fn display_formats_integers_cleanly() {
        let c = GCodeCommand::new(
            'G',
            1,
            vec![
                GCodeWord {
                    letter: 'F',
                    value: 1200.0,
                },
                GCodeWord {
                    letter: 'X',
                    value: 10.5,
                },
            ],
        );
        assert_eq!(c.to_string(), "G1 F1200 X10.5");
    }

    #[test]
    fn dwell_and_move_predicates() {
        let prog = GCodeProgram::parse("G0 X1\nG1 X2\nG4 P100\nG28").unwrap();
        let c = prog.commands();
        assert!(c[0].is_move());
        assert!(c[1].is_move());
        assert!(!c[2].is_move());
        assert!(c[2].is_dwell());
        assert!(!c[3].is_move());
    }

    #[test]
    fn from_str_trait() {
        let prog: GCodeProgram = "G1 X1".parse().unwrap();
        assert_eq!(prog.len(), 1);
    }
}
