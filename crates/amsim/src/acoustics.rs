//! Acoustic emission synthesis: the physical side-channel.
//!
//! Each running stepper emits a harmonic comb rooted at its step
//! frequency plus the mechanical resonances of the structure it drives.
//! The default axis profiles are chosen from the physics of a
//! Printrbot-class machine — light belt-driven X carriage, heavy
//! bed-carrying Y, high-ratio leadscrew Z — and deliberately give X and Y
//! overlapping spectral regions while Z sits alone in a high band. That
//! overlap structure is what produces the paper's Table I ordering
//! (`Cond3` best identifiable, `Cond2` worst) *emergently* from the
//! simulated physics rather than from the labels.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Axis, MotionSegment};

/// Which physical sensor observes the emission.
///
/// The paper's case study monitors "energy flows between nodes P2, P3,
/// P4, P5, P8 and the node P9" — multiple physical emissions reaching
/// the environment by different paths. Two observation points are
/// modeled: the airborne/contact acoustic path (flat transfer) and a
/// frame-mounted accelerometer whose mechanical path emphasizes low
/// frequencies (`~1/f` rolloff above the knee).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorKind {
    /// Contact microphone: flat transfer over the analyzed band.
    AcousticMic,
    /// Frame accelerometer: low-frequency emphasis; the vibration energy
    /// flow `P1 -> P9`.
    FrameAccelerometer,
}

impl SensorKind {
    /// Transfer-function magnitude at frequency `f` (Hz).
    pub fn transfer(self, f: f64) -> f64 {
        match self {
            SensorKind::AcousticMic => 1.0,
            SensorKind::FrameAccelerometer => {
                // First-order rolloff above a 600 Hz mechanical knee.
                let knee = 600.0;
                1.0 / (1.0 + (f / knee).powi(2)).sqrt()
            }
        }
    }
}

/// Spectral profile of one axis drive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisAcoustics {
    /// Overall emission amplitude of this axis.
    pub base_amplitude: f64,
    /// Relative amplitude of the k-th harmonic of the step frequency
    /// (index 0 = fundamental).
    pub harmonic_amps: Vec<f64>,
    /// Structural resonances as `(frequency_hz, relative_gain)`; excited
    /// whenever the axis moves.
    pub resonances: Vec<(f64, f64)>,
    /// Depth of the slow amplitude modulation (belt/screw periodicity).
    pub am_depth: f64,
    /// Amplitude-modulation rate in Hz.
    pub am_rate_hz: f64,
}

impl AxisAcoustics {
    /// Light belt-driven X carriage: mid-band resonances.
    pub fn default_x() -> Self {
        Self {
            base_amplitude: 0.50,
            harmonic_amps: vec![1.0, 0.50, 0.25, 0.12],
            resonances: vec![(1150.0, 0.35), (2300.0, 0.15)],
            am_depth: 0.10,
            am_rate_hz: 7.0,
        }
    }

    /// Heavy bed-carrying Y: low resonance plus a mid-band mode that
    /// overlaps X's — the overlap that makes Y the hardest condition to
    /// identify (paper `Cond2`).
    pub fn default_y() -> Self {
        Self {
            base_amplitude: 0.60,
            harmonic_amps: vec![1.0, 0.60, 0.30, 0.15],
            resonances: vec![(520.0, 0.40), (1100.0, 0.30)],
            am_depth: 0.20,
            am_rate_hz: 4.0,
        }
    }

    /// High-ratio leadscrew Z: a 5x-denser step comb and isolated
    /// high-band resonances — the most distinctive signature (`Cond3`).
    pub fn default_z() -> Self {
        Self {
            base_amplitude: 0.70,
            harmonic_amps: vec![1.0, 0.70, 0.40, 0.20, 0.10],
            resonances: vec![(2800.0, 0.55), (3600.0, 0.35)],
            am_depth: 0.04,
            am_rate_hz: 11.0,
        }
    }

    /// Geared extruder: quiet, low-band.
    pub fn default_e() -> Self {
        Self {
            base_amplitude: 0.30,
            harmonic_amps: vec![1.0, 0.40, 0.15],
            resonances: vec![(700.0, 0.20)],
            am_depth: 0.12,
            am_rate_hz: 5.0,
        }
    }
}

/// The full emission model: per-axis profiles summed into one pressure
/// signal (the energy flows from nodes `P2, P3, P4, P5` toward the
/// environment node `P9`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcousticModel {
    axes: [AxisAcoustics; 4],
}

impl AcousticModel {
    /// Creates a model from explicit per-axis profiles (indexed by
    /// [`Axis::index`]).
    pub fn new(axes: [AxisAcoustics; 4]) -> Self {
        Self { axes }
    }

    /// The Printrbot-class default profiles.
    pub fn printrbot_class() -> Self {
        Self::new([
            AxisAcoustics::default_x(),
            AxisAcoustics::default_y(),
            AxisAcoustics::default_z(),
            AxisAcoustics::default_e(),
        ])
    }

    /// Profile for one axis.
    pub fn axis(&self, axis: Axis) -> &AxisAcoustics {
        &self.axes[axis.index()]
    }

    /// Mutable profile access (for what-if redesign studies).
    pub fn axis_mut(&mut self, axis: Axis) -> &mut AxisAcoustics {
        &mut self.axes[axis.index()]
    }

    /// Synthesizes the raw (pre-microphone) pressure signal of one motion
    /// segment at `sample_rate` Hz through a flat (acoustic) sensor path.
    /// Harmonics above Nyquist are skipped. Phases are randomized per
    /// segment; dwells produce silence.
    pub fn synthesize(
        &self,
        segment: &MotionSegment,
        sample_rate: f64,
        rng: &mut impl Rng,
    ) -> Vec<f64> {
        self.synthesize_channel(segment, sample_rate, SensorKind::AcousticMic, rng)
    }

    /// Synthesizes one motion segment as observed through `sensor`'s
    /// transfer function (the multiple-emission case of §IV).
    pub fn synthesize_channel(
        &self,
        segment: &MotionSegment,
        sample_rate: f64,
        sensor: SensorKind,
        rng: &mut impl Rng,
    ) -> Vec<f64> {
        assert!(sample_rate > 0.0, "sample_rate must be positive");
        let n = (segment.duration_s * sample_rate).round().max(0.0) as usize;
        let mut out = vec![0.0f64; n];
        if n == 0 || !segment.is_motion() {
            return out;
        }
        let nyquist = sample_rate / 2.0;
        let tau = std::f64::consts::TAU;
        for axis in Axis::ALL {
            let rate = segment.step_rates_hz[axis.index()];
            if rate <= 0.0 {
                continue;
            }
            let profile = &self.axes[axis.index()];
            // Faster stepping pumps more energy into the structure.
            let speed_scale = (rate / 1600.0).sqrt().clamp(0.4, 1.6);
            let amp = profile.base_amplitude * speed_scale;
            let am_phase: f64 = rng.gen_range(0.0..tau);

            // Harmonic comb of the step frequency.
            for (k, &h_amp) in profile.harmonic_amps.iter().enumerate() {
                let f = rate * (k + 1) as f64;
                if f >= nyquist {
                    break;
                }
                let phase: f64 = rng.gen_range(0.0..tau);
                let w = tau * f / sample_rate;
                let am_w = tau * profile.am_rate_hz / sample_rate;
                let g = sensor.transfer(f);
                for (i, s) in out.iter_mut().enumerate() {
                    let t = i as f64;
                    let env = 1.0 + profile.am_depth * (am_w * t + am_phase).sin();
                    *s += amp * h_amp * g * env * (w * t + phase).sin();
                }
            }
            // Structural resonances.
            for &(f_res, gain) in &profile.resonances {
                if f_res >= nyquist {
                    continue;
                }
                let phase: f64 = rng.gen_range(0.0..tau);
                let w = tau * f_res / sample_rate;
                let g = sensor.transfer(f_res);
                for (i, s) in out.iter_mut().enumerate() {
                    *s += amp * gain * g * (w * i as f64 + phase).sin();
                }
            }
        }
        out
    }
}

impl Default for AcousticModel {
    /// Printrbot-class emission profiles.
    fn default() -> Self {
        Self::printrbot_class()
    }
}

/// The contact microphone and makeshift anechoic chamber (§IV): additive
/// Gaussian noise floor, gain, and soft clipping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Microphone {
    sample_rate: f64,
    noise_std: f64,
    gain: f64,
}

impl Microphone {
    /// Creates a capture model.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate <= 0`, `noise_std < 0` or `gain <= 0`.
    pub fn new(sample_rate: f64, noise_std: f64, gain: f64) -> Self {
        assert!(sample_rate > 0.0, "sample_rate must be positive");
        assert!(noise_std >= 0.0, "noise_std must be nonnegative");
        assert!(gain > 0.0, "gain must be positive");
        Self {
            sample_rate,
            noise_std,
            gain,
        }
    }

    /// An AKG C411-class contact microphone in an anechoic chamber:
    /// 12 kHz sampling (covering the paper's 50-5000 Hz band), a low
    /// noise floor and unit gain.
    pub fn c411_anechoic() -> Self {
        Self::new(12_000.0, 0.02, 1.0)
    }

    /// Sampling rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Noise-floor standard deviation.
    pub fn noise_std(&self) -> f64 {
        self.noise_std
    }

    /// Applies gain, noise floor, and soft clipping to a raw pressure
    /// signal, in place.
    pub fn capture(&self, signal: &mut [f64], rng: &mut impl Rng) {
        for s in signal.iter_mut() {
            let noise = gansec_noise(rng) * self.noise_std;
            // tanh soft clip keeps the signal in (-1, 1) like an ADC
            // front-end would.
            *s = ((*s * self.gain) + noise).tanh();
        }
    }
}

impl Default for Microphone {
    /// The case study's capture chain.
    fn default() -> Self {
        Self::c411_anechoic()
    }
}

/// Local Box-Muller normal sample (`rand_distr` is outside the approved
/// dependency set).
fn gansec_noise(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn segment(rates: [f64; 4], duration: f64) -> MotionSegment {
        MotionSegment {
            command_index: 0,
            duration_s: duration,
            step_rates_hz: rates,
            distances_mm: [1.0; 4],
            feed_mm_s: 10.0,
        }
    }

    #[test]
    fn silence_for_dwell() {
        let model = AcousticModel::printrbot_class();
        let mut rng = StdRng::seed_from_u64(1);
        let out = model.synthesize(&segment([0.0; 4], 0.25), 12_000.0, &mut rng);
        assert_eq!(out.len(), 3000);
        assert!(out.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn sample_count_matches_duration() {
        let model = AcousticModel::printrbot_class();
        let mut rng = StdRng::seed_from_u64(2);
        let out = model.synthesize(&segment([1600.0, 0.0, 0.0, 0.0], 0.5), 12_000.0, &mut rng);
        assert_eq!(out.len(), 6000);
        assert!(out.iter().any(|&s| s != 0.0));
    }

    #[test]
    fn x_motion_peaks_near_step_frequency() {
        use gansec_dsp::{Stft, Window};
        let model = AcousticModel::printrbot_class();
        let mut rng = StdRng::seed_from_u64(3);
        let out = model.synthesize(&segment([1600.0, 0.0, 0.0, 0.0], 1.0), 12_000.0, &mut rng);
        let spec = Stft::new(2048, 1024, Window::Hann).spectrogram(&out, 12_000.0);
        let mean = spec.mean_spectrum();
        let bin = |f: f64| (f / spec.bin_hz()).round() as usize;
        // Energy at the fundamental dominates a quiet reference band.
        assert!(mean[bin(1600.0)] > 5.0 * mean[bin(4000.0)]);
    }

    #[test]
    fn axes_have_distinct_spectra() {
        use gansec_dsp::{Stft, Window};
        let model = AcousticModel::printrbot_class();
        let spec_for = |rates: [f64; 4], seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = model.synthesize(&segment(rates, 1.0), 12_000.0, &mut rng);
            Stft::new(2048, 1024, Window::Hann)
                .spectrogram(&out, 12_000.0)
                .mean_spectrum()
        };
        let x = spec_for([1600.0, 0.0, 0.0, 0.0], 4);
        let z = spec_for([0.0, 0.0, 2000.0, 0.0], 5);
        // Z's high-band resonance (2800 Hz) present for Z, absent for X.
        let bin = |f: f64| (f / (12_000.0 / 2048.0)).round() as usize;
        assert!(z[bin(2800.0)] > 5.0 * x[bin(2800.0)]);
    }

    #[test]
    fn harmonics_above_nyquist_skipped() {
        let model = AcousticModel::printrbot_class();
        let mut rng = StdRng::seed_from_u64(6);
        // Step rate beyond Nyquist: only resonances remain, no panic.
        let out = model.synthesize(&segment([0.0, 0.0, 20_000.0, 0.0], 0.1), 12_000.0, &mut rng);
        assert!(out.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn microphone_bounds_output() {
        let mic = Microphone::new(12_000.0, 0.05, 10.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut sig = vec![5.0, -5.0, 0.0, 100.0];
        mic.capture(&mut sig, &mut rng);
        assert!(sig.iter().all(|&s| s.abs() <= 1.0));
    }

    #[test]
    fn microphone_noise_floor_present_in_silence() {
        let mic = Microphone::c411_anechoic();
        let mut rng = StdRng::seed_from_u64(8);
        let mut sig = vec![0.0; 10_000];
        mic.capture(&mut sig, &mut rng);
        let rms = (sig.iter().map(|s| s * s).sum::<f64>() / sig.len() as f64).sqrt();
        assert!((rms - 0.02).abs() < 0.005, "rms {rms}");
    }

    #[test]
    fn accelerometer_attenuates_high_frequencies() {
        use gansec_dsp::{Stft, Window};
        let model = AcousticModel::printrbot_class();
        let seg = segment([0.0, 0.0, 2000.0, 0.0], 1.0); // Z: high-band resonances
        let spec_for = |sensor: SensorKind| {
            let mut rng = StdRng::seed_from_u64(42);
            let out = model.synthesize_channel(&seg, 12_000.0, sensor, &mut rng);
            Stft::new(2048, 1024, Window::Hann)
                .spectrogram(&out, 12_000.0)
                .mean_spectrum()
        };
        let acoustic = spec_for(SensorKind::AcousticMic);
        let vibration = spec_for(SensorKind::FrameAccelerometer);
        let bin = |f: f64| (f / (12_000.0 / 2048.0)).round() as usize;
        // The 2800 Hz resonance is strongly attenuated on the frame path.
        let ratio = vibration[bin(2800.0)] / acoustic[bin(2800.0)].max(1e-12);
        assert!(ratio < 0.5, "high band ratio {ratio}");
    }

    #[test]
    fn transfer_functions_are_sane() {
        assert_eq!(SensorKind::AcousticMic.transfer(5000.0), 1.0);
        let acc = SensorKind::FrameAccelerometer;
        assert!(acc.transfer(100.0) > 0.9);
        assert!(acc.transfer(3000.0) < 0.3);
        assert!(acc.transfer(100.0) > acc.transfer(1000.0));
    }

    #[test]
    #[should_panic(expected = "gain must be positive")]
    fn microphone_rejects_zero_gain() {
        let _ = Microphone::new(12_000.0, 0.01, 0.0);
    }
}
