//! The printer's CPPS architecture: the input to Algorithm 1 that yields
//! the paper's Figure 6 graph.
//!
//! Nodes follow the paper's labeling: cyber components `C1..C4` (with
//! `C4` the *external* G/M-code source) and physical components `P1..P9`
//! (with `P9` the *environment* that all unintentional emissions flow
//! into).

use gansec_cpps::{ComponentId, CppsArchitecture, FlowId, FlowKind};

/// Handles into the constructed printer architecture, so experiments can
/// reference the paper's named nodes and flows without string lookups.
#[derive(Debug, Clone)]
pub struct PrinterArchitecture {
    /// The architecture itself (run Algorithm 1 via
    /// [`CppsArchitecture::build_graph`]).
    pub arch: CppsArchitecture,
    /// `C1`: main controller board.
    pub c1_controller: ComponentId,
    /// `C2`: firmware motion planner.
    pub c2_firmware: ComponentId,
    /// `C3`: stepper driver electronics.
    pub c3_drivers: ComponentId,
    /// `C4`: external G/M-code source (another sub-system).
    pub c4_external: ComponentId,
    /// `P1`: frame/chassis.
    pub p1_frame: ComponentId,
    /// `P2`: X stepper motor.
    pub p2_motor_x: ComponentId,
    /// `P3`: Y stepper motor.
    pub p3_motor_y: ComponentId,
    /// `P4`: Z stepper motor.
    pub p4_motor_z: ComponentId,
    /// `P5`: extruder stepper motor.
    pub p5_motor_e: ComponentId,
    /// `P6`: hotend heater.
    pub p6_hotend: ComponentId,
    /// `P7`: print bed.
    pub p7_bed: ComponentId,
    /// `P8`: cooling fan.
    pub p8_fan: ComponentId,
    /// `P9`: the physical environment.
    pub p9_environment: ComponentId,
    /// The G/M-code signal flow `C4 -> C1` — the conditioning flow of the
    /// case study.
    pub gcode_flow: FlowId,
    /// Acoustic energy flows into `P9` from `P2, P3, P4, P5, P8` — the
    /// monitored emissions of §IV-B, in that order.
    pub acoustic_flows: Vec<FlowId>,
}

/// Builds the additive-manufacturing sub-system of Figures 5 and 6.
pub fn printer_architecture() -> PrinterArchitecture {
    let mut arch = CppsArchitecture::new("additive-manufacturing");
    let printer = arch.add_subsystem("3d-printer");
    let external = arch.add_subsystem("external");
    let environment = arch.add_subsystem("environment");

    let expect = "subsystem ids are fresh";
    let c1 = arch.add_cyber(printer, "C1 controller").expect(expect);
    let c2 = arch.add_cyber(printer, "C2 firmware").expect(expect);
    let c3 = arch.add_cyber(printer, "C3 stepper drivers").expect(expect);
    let c4 = arch
        .add_cyber(external, "C4 external G-code source")
        .expect(expect);
    let p1 = arch.add_physical(printer, "P1 frame").expect(expect);
    let p2 = arch.add_physical(printer, "P2 X motor").expect(expect);
    let p3 = arch.add_physical(printer, "P3 Y motor").expect(expect);
    let p4 = arch.add_physical(printer, "P4 Z motor").expect(expect);
    let p5 = arch.add_physical(printer, "P5 E motor").expect(expect);
    let p6 = arch.add_physical(printer, "P6 hotend").expect(expect);
    let p7 = arch.add_physical(printer, "P7 bed").expect(expect);
    let p8 = arch.add_physical(printer, "P8 fan").expect(expect);
    let p9 = arch
        .add_physical(environment, "P9 environment")
        .expect(expect);

    let fe = "component ids are fresh";
    // Cyber signal chain: external source -> controller -> firmware -> drivers.
    let gcode_flow = arch
        .add_flow("G/M-code stream", FlowKind::Signal, c4, c1)
        .expect(fe);
    let _ = arch
        .add_flow("parsed commands", FlowKind::Signal, c1, c2)
        .expect(fe);
    let _ = arch
        .add_flow("step pulses", FlowKind::Signal, c2, c3)
        .expect(fe);
    let _ = arch
        .add_flow("heater control", FlowKind::Signal, c1, p6)
        .expect(fe);
    let _ = arch
        .add_flow("fan control", FlowKind::Signal, c1, p8)
        .expect(fe);

    // Electrical energy: drivers -> motors.
    for (motor, name) in [
        (p2, "X drive current"),
        (p3, "Y drive current"),
        (p4, "Z drive current"),
        (p5, "E drive current"),
    ] {
        let _ = arch.add_flow(name, FlowKind::Energy, c3, motor).expect(fe);
    }

    // Mechanical energy within the machine.
    let _ = arch
        .add_flow("X vibration to frame", FlowKind::Energy, p2, p1)
        .expect(fe);
    let _ = arch
        .add_flow("Y vibration to bed", FlowKind::Energy, p3, p7)
        .expect(fe);
    let _ = arch
        .add_flow("Z vibration to frame", FlowKind::Energy, p4, p1)
        .expect(fe);
    let _ = arch
        .add_flow("heat to bed", FlowKind::Energy, p6, p7)
        .expect(fe);

    // Emissions to the environment (the side-channels): the five energy
    // flows §IV-B monitors, plus thermal/frame paths.
    let mut acoustic_flows = Vec::new();
    for (src, name) in [
        (p2, "acoustic X"),
        (p3, "acoustic Y"),
        (p4, "acoustic Z"),
        (p5, "acoustic E"),
        (p8, "acoustic fan"),
    ] {
        acoustic_flows.push(arch.add_flow(name, FlowKind::Energy, src, p9).expect(fe));
    }
    let _ = arch
        .add_flow("frame vibration", FlowKind::Energy, p1, p9)
        .expect(fe);
    let _ = arch
        .add_flow("thermal emission", FlowKind::Energy, p6, p9)
        .expect(fe);

    PrinterArchitecture {
        arch,
        c1_controller: c1,
        c2_firmware: c2,
        c3_drivers: c3,
        c4_external: c4,
        p1_frame: p1,
        p2_motor_x: p2,
        p3_motor_y: p3,
        p4_motor_z: p4,
        p5_motor_e: p5,
        p6_hotend: p6,
        p7_bed: p7,
        p8_fan: p8,
        p9_environment: p9,
        gcode_flow,
        acoustic_flows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gansec_cpps::{CppsGraph, Domain};

    #[test]
    fn node_counts_match_figure6() {
        let pa = printer_architecture();
        let cyber = pa
            .arch
            .components()
            .iter()
            .filter(|c| c.domain() == Domain::Cyber)
            .count();
        let physical = pa
            .arch
            .components()
            .iter()
            .filter(|c| c.domain() == Domain::Physical)
            .count();
        assert_eq!(cyber, 4, "C1..C4");
        assert_eq!(physical, 9, "P1..P9");
    }

    #[test]
    fn graph_is_acyclic_as_designed() {
        let pa = printer_architecture();
        let g: CppsGraph = pa.arch.build_graph();
        assert!(g.feedback_flows().is_empty());
    }

    #[test]
    fn gcode_reaches_every_acoustic_emission() {
        let pa = printer_architecture();
        let g = pa.arch.build_graph();
        let gcode = g.flow(pa.gcode_flow).unwrap();
        // Motor emissions are reachable from the external source, so all
        // (gcode, acoustic-motor) pairs are candidates for CGAN modeling.
        let pairs = g.candidate_flow_pairs();
        for &f in &pa.acoustic_flows[..4] {
            assert!(
                g.reachable(gcode.from(), g.flow(f).unwrap().to()),
                "emission {f} unreachable from C4"
            );
            assert!(pairs.contains(pa.gcode_flow, f));
        }
    }

    #[test]
    fn cross_domain_pairs_include_case_study_pairs() {
        let pa = printer_architecture();
        let g = pa.arch.build_graph();
        let cross = g.cross_domain_pairs();
        for &f in &pa.acoustic_flows[..4] {
            assert!(cross.contains(pa.gcode_flow, f));
        }
    }

    #[test]
    fn monitored_emissions_terminate_at_environment() {
        let pa = printer_architecture();
        for &f in &pa.acoustic_flows {
            let flow = pa.arch.flow(f).unwrap();
            assert_eq!(flow.to(), pa.p9_environment);
        }
    }

    #[test]
    fn dot_export_renders_figure6() {
        let pa = printer_architecture();
        let g = pa.arch.build_graph();
        let dot = g.to_dot(&pa.arch);
        assert!(dot.contains("C4 external G-code source"));
        assert!(dot.contains("P9 environment"));
        assert!(dot.contains("acoustic Z"));
    }
}
