//! End-to-end printer simulation: program in, labeled audio out.

use rand::Rng;
use serde::{Deserialize, Serialize};

use rand::SeedableRng;

use crate::{
    AcousticModel, GCodeProgram, Kinematics, Microphone, MotionSegment, MotorSet, SensorKind,
};

/// One executed segment of the trace: the ground-truth label source for
/// dataset generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentRecord {
    /// The planned motion.
    pub segment: MotionSegment,
    /// XYZ motors active during the segment.
    pub motors: MotorSet,
    /// Start sample index into [`SimulationTrace::audio`].
    pub audio_start: usize,
    /// One-past-end sample index.
    pub audio_end: usize,
}

impl SegmentRecord {
    /// Number of audio samples covered by this segment.
    pub fn n_samples(&self) -> usize {
        self.audio_end - self.audio_start
    }
}

/// The result of executing a program: the captured physical emissions
/// (two observation points of the same energy flows) plus per-segment
/// ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationTrace {
    /// Captured contact-microphone samples for the whole program.
    pub audio: Vec<f64>,
    /// Captured frame-accelerometer samples, time-aligned with `audio`
    /// (the second physical emission of §IV's "multiple physical
    /// emissions").
    pub vibration: Vec<f64>,
    /// Sampling rate in Hz.
    pub sample_rate: f64,
    /// Per-segment records in execution order.
    pub segments: Vec<SegmentRecord>,
}

impl SimulationTrace {
    /// The audio samples of one segment.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.segments.len()`.
    pub fn segment_audio(&self, index: usize) -> &[f64] {
        let rec = &self.segments[index];
        &self.audio[rec.audio_start..rec.audio_end]
    }

    /// The vibration samples of one segment (same indices as audio).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.segments.len()`.
    pub fn segment_vibration(&self, index: usize) -> &[f64] {
        let rec = &self.segments[index];
        &self.vibration[rec.audio_start..rec.audio_end]
    }

    /// Total trace duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.audio.len() as f64 / self.sample_rate
    }

    /// The motors active at an absolute sample index — the live G-code
    /// condition channel a streaming replay attaches to each chunk.
    /// Returns `None` past the end of the trace (or in a gap, which the
    /// simulator never emits).
    pub fn motors_at(&self, sample_index: usize) -> Option<MotorSet> {
        self.segments
            .iter()
            .find(|rec| rec.audio_start <= sample_index && sample_index < rec.audio_end)
            .map(|rec| rec.motors)
    }
}

/// The printer simulator: kinematics + acoustics + microphone.
///
/// # Example
///
/// ```
/// use gansec_amsim::{PrinterSim, single_axis_program, Axis};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let sim = PrinterSim::printrbot_class();
/// let program = single_axis_program(Axis::X, 4, 10.0, 1200.0);
/// let trace = sim.run(&program, &mut rng);
/// assert_eq!(trace.segments.len(), 4);
/// assert!(trace.audio.len() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrinterSim {
    kinematics: Kinematics,
    acoustics: AcousticModel,
    microphone: Microphone,
}

impl PrinterSim {
    /// Composes a simulator from explicit models.
    pub fn new(kinematics: Kinematics, acoustics: AcousticModel, microphone: Microphone) -> Self {
        Self {
            kinematics,
            acoustics,
            microphone,
        }
    }

    /// The case-study configuration: Printrbot-class kinematics and
    /// acoustics, C411-class capture in an anechoic chamber.
    pub fn printrbot_class() -> Self {
        Self::new(
            Kinematics::printrbot_class(),
            AcousticModel::printrbot_class(),
            Microphone::c411_anechoic(),
        )
    }

    /// The kinematic model.
    pub fn kinematics(&self) -> &Kinematics {
        &self.kinematics
    }

    /// The acoustic model.
    pub fn acoustics(&self) -> &AcousticModel {
        &self.acoustics
    }

    /// Mutable acoustic model (for redesign what-if studies).
    pub fn acoustics_mut(&mut self) -> &mut AcousticModel {
        &mut self.acoustics
    }

    /// The microphone model.
    pub fn microphone(&self) -> &Microphone {
        &self.microphone
    }

    /// Executes `program`: plans motion, synthesizes each segment's
    /// emissions on both sensor paths, and captures them through the
    /// microphone model.
    pub fn run(&self, program: &GCodeProgram, rng: &mut impl Rng) -> SimulationTrace {
        let sample_rate = self.microphone.sample_rate();
        let segments = self.kinematics.plan(program);
        let mut audio = Vec::new();
        let mut vibration = Vec::new();
        let mut records = Vec::with_capacity(segments.len());
        for segment in segments {
            let mut chunk = self.acoustics.synthesize_channel(
                &segment,
                sample_rate,
                SensorKind::AcousticMic,
                rng,
            );
            self.microphone.capture(&mut chunk, rng);
            // The accelerometer observes the same mechanical event; a
            // forked RNG keeps its phases independent but reproducible.
            let mut vib_rng = rand::rngs::StdRng::seed_from_u64(rng.gen());
            let mut vib_chunk = self.acoustics.synthesize_channel(
                &segment,
                sample_rate,
                SensorKind::FrameAccelerometer,
                &mut vib_rng,
            );
            self.microphone.capture(&mut vib_chunk, &mut vib_rng);
            let start = audio.len();
            audio.extend_from_slice(&chunk);
            vibration.extend_from_slice(&vib_chunk);
            records.push(SegmentRecord {
                motors: MotorSet::from_segment(&segment),
                segment,
                audio_start: start,
                audio_end: audio.len(),
            });
        }
        SimulationTrace {
            audio,
            vibration,
            sample_rate,
            segments: records,
        }
    }
}

impl Default for PrinterSim {
    /// The case-study configuration.
    fn default() -> Self {
        Self::printrbot_class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{single_axis_program, Axis};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trace_covers_whole_program() {
        let sim = PrinterSim::printrbot_class();
        let mut rng = StdRng::seed_from_u64(1);
        let program = single_axis_program(Axis::X, 5, 10.0, 1200.0);
        let trace = sim.run(&program, &mut rng);
        assert_eq!(trace.segments.len(), 5);
        // Segments tile the audio contiguously.
        let mut cursor = 0;
        for rec in &trace.segments {
            assert_eq!(rec.audio_start, cursor);
            cursor = rec.audio_end;
        }
        assert_eq!(cursor, trace.audio.len());
    }

    #[test]
    fn motors_at_resolves_every_sample_and_none_past_the_end() {
        let sim = PrinterSim::printrbot_class();
        let mut rng = StdRng::seed_from_u64(3);
        let program = single_axis_program(Axis::Y, 4, 8.0, 900.0);
        let trace = sim.run(&program, &mut rng);
        for rec in &trace.segments {
            assert_eq!(trace.motors_at(rec.audio_start), Some(rec.motors));
            assert_eq!(trace.motors_at(rec.audio_end - 1), Some(rec.motors));
        }
        assert_eq!(trace.motors_at(trace.audio.len()), None);
    }

    #[test]
    fn segment_labels_match_axis() {
        let sim = PrinterSim::printrbot_class();
        let mut rng = StdRng::seed_from_u64(2);
        for (axis, expected) in [
            (Axis::X, MotorSet::X),
            (Axis::Y, MotorSet::Y),
            (Axis::Z, MotorSet::Z),
        ] {
            let trace = sim.run(&single_axis_program(axis, 3, 5.0, 600.0), &mut rng);
            for rec in &trace.segments {
                assert_eq!(rec.motors, expected, "axis {axis:?}");
            }
        }
    }

    #[test]
    fn audio_is_bounded_and_finite() {
        let sim = PrinterSim::printrbot_class();
        let mut rng = StdRng::seed_from_u64(3);
        let trace = sim.run(&single_axis_program(Axis::Z, 3, 2.0, 240.0), &mut rng);
        assert!(trace.audio.iter().all(|s| s.is_finite() && s.abs() < 1.0));
    }

    #[test]
    fn vibration_channel_is_aligned_with_audio() {
        let sim = PrinterSim::printrbot_class();
        let mut rng = StdRng::seed_from_u64(9);
        let trace = sim.run(&single_axis_program(Axis::X, 3, 10.0, 1200.0), &mut rng);
        assert_eq!(trace.audio.len(), trace.vibration.len());
        for i in 0..trace.segments.len() {
            assert_eq!(
                trace.segment_audio(i).len(),
                trace.segment_vibration(i).len()
            );
        }
        assert!(trace
            .vibration
            .iter()
            .all(|s| s.is_finite() && s.abs() <= 1.0));
    }

    #[test]
    fn empty_program_yields_empty_trace() {
        let sim = PrinterSim::printrbot_class();
        let mut rng = StdRng::seed_from_u64(4);
        let trace = sim.run(&GCodeProgram::default(), &mut rng);
        assert!(trace.audio.is_empty());
        assert!(trace.segments.is_empty());
        assert_eq!(trace.duration_s(), 0.0);
    }

    #[test]
    fn segment_audio_slices_align() {
        let sim = PrinterSim::printrbot_class();
        let mut rng = StdRng::seed_from_u64(5);
        let trace = sim.run(&single_axis_program(Axis::Y, 2, 10.0, 1200.0), &mut rng);
        let a0 = trace.segment_audio(0);
        assert_eq!(a0.len(), trace.segments[0].n_samples());
    }

    #[test]
    fn duration_matches_kinematics() {
        let sim = PrinterSim::printrbot_class();
        let mut rng = StdRng::seed_from_u64(6);
        // 10 mm at 20 mm/s = 0.5 s per move, 4 moves = 2 s.
        let trace = sim.run(&single_axis_program(Axis::X, 4, 10.0, 1200.0), &mut rng);
        assert!((trace.duration_s() - 2.0).abs() < 0.01);
    }
}
