//! Frame-level side-channel attacks for detection benchmarking.
//!
//! The injectors in [`crate::attacks`] tamper with the *G-code* a
//! printer executes; these operate one layer later, on the extracted
//! `(feature row, claimed condition)` pairs the detector actually
//! scores. That is the right place to express attacks that target the
//! *detector* rather than the part — an adversary who knows the defense
//! is a per-feature Parzen model can craft emission that keeps every
//! per-feature marginal plausible while the joint spectrum is
//! nonsensical, and only joint-aware evidence (discriminator,
//! generator inversion) can catch it.
//!
//! Everything here is pure data-to-data: rows in, rows out, seeded and
//! deterministic. No tensor or model dependency, so the attack library
//! stays reusable from any layer of the stack.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The frame-level attack classes of the detection benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrameAttackKind {
    /// Adaptive integrity attack on a marginal-KDE defense: within each
    /// claimed condition, every feature column is independently
    /// permuted across frames. Each per-(condition, bin) value multiset
    /// is *exactly* preserved — a per-feature Parzen scorer sees the
    /// same marginals and stays near-blind — but the joint spectral
    /// structure of each frame is destroyed.
    KdeEvadingInjection,
    /// Replay: the recorded emission is genuine, but it is replayed
    /// under a different claimed operation — every condition label is
    /// rotated to another condition observed in the batch.
    Replay,
    /// Partial-axis spoofing: the low half of each spectrum is spliced
    /// in from a frame of a *different* condition while the claim (and
    /// the upper half) stay benign — one motor's contribution is
    /// forged, the rest is honest.
    PartialAxisSpoof,
    /// Additive acoustic masking: a noise source near the microphone
    /// raises every bin by a positive amount proportional to the
    /// frame's RMS level, hiding detail under broadband energy.
    AcousticMasking {
        /// Noise amplitude as a fraction of each frame's RMS.
        amplitude: f64,
    },
    /// Availability attack on the sensor: each bin independently drops
    /// to zero with probability `p` (an intermittently jammed or
    /// saturated channel).
    SensorDropout {
        /// Per-bin dropout probability in `[0, 1]`.
        p: f64,
    },
}

impl FrameAttackKind {
    /// Stable snake_case identifier for reports and JSON keys.
    pub fn name(&self) -> &'static str {
        match self {
            FrameAttackKind::KdeEvadingInjection => "kde_evading_injection",
            FrameAttackKind::Replay => "replay",
            FrameAttackKind::PartialAxisSpoof => "partial_axis_spoof",
            FrameAttackKind::AcousticMasking { .. } => "acoustic_masking",
            FrameAttackKind::SensorDropout { .. } => "sensor_dropout",
        }
    }

    /// The benchmark roster: one of each class at its standard
    /// strength, in report order.
    pub fn roster() -> [FrameAttackKind; 5] {
        [
            FrameAttackKind::KdeEvadingInjection,
            FrameAttackKind::Replay,
            FrameAttackKind::PartialAxisSpoof,
            FrameAttackKind::AcousticMasking { amplitude: 0.5 },
            FrameAttackKind::SensorDropout { p: 0.25 },
        ]
    }
}

/// Applies [`FrameAttackKind`]s to benign `(features, conds)` batches.
///
/// Deterministic: the same `(seed, kind, input)` always produces the
/// same attacked batch, so benchmark ROC numbers are reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameAttacker {
    seed: u64,
}

impl FrameAttacker {
    /// Creates an attacker with a pinned seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Applies `kind` to the batch, returning the attacked
    /// `(features, claimed_conds)` rows. Both inputs must have one cond
    /// row per feature row.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ or a masking/dropout parameter
    /// is out of range.
    pub fn apply(
        &self,
        kind: FrameAttackKind,
        frames: &[Vec<f64>],
        conds: &[Vec<f64>],
    ) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        assert_eq!(frames.len(), conds.len(), "one cond row per frame");
        // Domain-separate the stream per attack kind so adding one to
        // the roster never perturbs another's draws.
        let mut rng = StdRng::seed_from_u64(self.seed ^ fold_name(kind.name()));
        let mut out_frames = frames.to_vec();
        let mut out_conds = conds.to_vec();
        match kind {
            FrameAttackKind::KdeEvadingInjection => {
                for group in condition_groups(conds) {
                    let cols = group.first().map_or(0, |&r| frames[r].len());
                    for col in 0..cols {
                        let mut values: Vec<f64> = group.iter().map(|&r| frames[r][col]).collect();
                        shuffle(&mut values, &mut rng);
                        for (&r, v) in group.iter().zip(values) {
                            out_frames[r][col] = v;
                        }
                    }
                }
            }
            FrameAttackKind::Replay => {
                let classes = distinct_rows(conds);
                if classes.len() > 1 {
                    for cond in &mut out_conds {
                        let at = classes
                            .iter()
                            .position(|c| c == cond)
                            .expect("own class is distinct");
                        cond.clone_from(&classes[(at + 1) % classes.len()]);
                    }
                }
            }
            FrameAttackKind::PartialAxisSpoof => {
                let groups = condition_groups(conds);
                for (g, group) in groups.iter().enumerate() {
                    // Donor frames come from some *other* condition; a
                    // single-condition batch degenerates to in-group
                    // splicing (still joint-inconsistent).
                    let donors = if groups.len() > 1 {
                        &groups[(g + 1) % groups.len()]
                    } else {
                        group
                    };
                    for &r in group {
                        let donor = donors[rng.gen_range(0..donors.len())];
                        let half = frames[r].len() / 2;
                        for col in 0..half {
                            out_frames[r][col] = frames[donor][col];
                        }
                    }
                }
            }
            FrameAttackKind::AcousticMasking { amplitude } => {
                assert!(
                    amplitude.is_finite() && amplitude > 0.0,
                    "amplitude must be positive"
                );
                for row in &mut out_frames {
                    let rms =
                        (row.iter().map(|v| v * v).sum::<f64>() / row.len().max(1) as f64).sqrt();
                    for v in row.iter_mut() {
                        *v += amplitude * rms * rng.gen::<f64>();
                    }
                }
            }
            FrameAttackKind::SensorDropout { p } => {
                assert!((0.0..=1.0).contains(&p), "p must be a probability");
                for row in &mut out_frames {
                    for v in row.iter_mut() {
                        if rng.gen_bool(p) {
                            *v = 0.0;
                        }
                    }
                }
            }
        }
        (out_frames, out_conds)
    }
}

/// Frame indices grouped by identical condition row, in first-seen
/// order (bit-exact comparison: one-hot rows either match or don't).
fn condition_groups(conds: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let mut keys: Vec<&Vec<f64>> = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, cond) in conds.iter().enumerate() {
        match keys.iter().position(|k| *k == cond) {
            Some(at) => groups[at].push(i),
            None => {
                keys.push(cond);
                groups.push(vec![i]);
            }
        }
    }
    groups
}

/// The distinct condition rows, in first-seen order.
fn distinct_rows(conds: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let mut classes: Vec<Vec<f64>> = Vec::new();
    for cond in conds {
        if !classes.contains(cond) {
            classes.push(cond.clone());
        }
    }
    classes
}

/// Fisher–Yates with the crate's deterministic stream.
fn shuffle(values: &mut [f64], rng: &mut StdRng) {
    for i in (1..values.len()).rev() {
        values.swap(i, rng.gen_range(0..=i));
    }
}

/// FNV-1a fold of an attack name into a 64-bit domain separator.
fn fold_name(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two conditions, four frames each, distinct joint structure.
    fn batch() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut frames = Vec::new();
        let mut conds = Vec::new();
        for i in 0..8 {
            let class = i % 2;
            frames.push(
                (0..6)
                    .map(|c| (i * 6 + c) as f64 * 0.1 + class as f64)
                    .collect(),
            );
            conds.push(if class == 0 {
                vec![1.0, 0.0]
            } else {
                vec![0.0, 1.0]
            });
        }
        (frames, conds)
    }

    #[test]
    fn attacks_are_deterministic_per_seed() {
        let (frames, conds) = batch();
        for kind in FrameAttackKind::roster() {
            let a = FrameAttacker::new(7).apply(kind, &frames, &conds);
            let b = FrameAttacker::new(7).apply(kind, &frames, &conds);
            assert_eq!(a, b, "{} must be reproducible", kind.name());
        }
    }

    #[test]
    fn injection_preserves_per_condition_marginals_exactly() {
        let (frames, conds) = batch();
        let (attacked, aconds) =
            FrameAttacker::new(3).apply(FrameAttackKind::KdeEvadingInjection, &frames, &conds);
        assert_eq!(aconds, conds);
        for group in condition_groups(&conds) {
            for col in 0..6 {
                let mut before: Vec<f64> = group.iter().map(|&r| frames[r][col]).collect();
                let mut after: Vec<f64> = group.iter().map(|&r| attacked[r][col]).collect();
                before.sort_by(f64::total_cmp);
                after.sort_by(f64::total_cmp);
                assert_eq!(before, after, "column {col} multiset must survive");
            }
        }
        // ... but the joint rows themselves must actually change.
        assert_ne!(attacked, frames);
    }

    #[test]
    fn replay_rotates_every_claim_and_keeps_the_audio() {
        let (frames, conds) = batch();
        let (attacked, aconds) =
            FrameAttacker::new(3).apply(FrameAttackKind::Replay, &frames, &conds);
        assert_eq!(attacked, frames);
        for (before, after) in conds.iter().zip(&aconds) {
            assert_ne!(before, after, "every claim must be displaced");
        }
    }

    #[test]
    fn spoof_splices_the_low_half_from_another_condition() {
        let (frames, conds) = batch();
        let (attacked, aconds) =
            FrameAttacker::new(3).apply(FrameAttackKind::PartialAxisSpoof, &frames, &conds);
        assert_eq!(aconds, conds);
        for (before, after) in frames.iter().zip(&attacked) {
            // Upper half untouched.
            assert_eq!(before[3..], after[3..]);
            // Lower half comes from the other class, whose values are
            // offset by ±1 — so it must differ.
            assert_ne!(before[..3], after[..3]);
        }
    }

    #[test]
    fn masking_only_adds_energy() {
        let (frames, conds) = batch();
        let (attacked, _) = FrameAttacker::new(3).apply(
            FrameAttackKind::AcousticMasking { amplitude: 0.5 },
            &frames,
            &conds,
        );
        for (before, after) in frames.iter().zip(&attacked) {
            for (b, a) in before.iter().zip(after) {
                assert!(a >= b, "masking noise is additive and non-negative");
            }
        }
        assert_ne!(attacked, frames);
    }

    #[test]
    fn dropout_zeroes_roughly_p_of_the_bins() {
        let (frames, conds) = batch();
        let (attacked, _) =
            FrameAttacker::new(3).apply(FrameAttackKind::SensorDropout { p: 0.5 }, &frames, &conds);
        let zeroed = attacked.iter().flatten().filter(|v| **v == 0.0).count();
        assert!(zeroed > 0, "some bins must drop");
        assert!(zeroed < 48, "not all bins may drop at p=0.5");
    }

    #[test]
    fn roster_names_are_distinct() {
        let names: Vec<_> = FrameAttackKind::roster().iter().map(|k| k.name()).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    #[should_panic(expected = "one cond row per frame")]
    fn row_count_mismatch_rejected() {
        let (frames, _) = batch();
        let _ = FrameAttacker::new(0).apply(FrameAttackKind::Replay, &frames, &[]);
    }
}
