//! Cross-domain attack injection.
//!
//! The paper's Algorithm 3 discussion (§IV-D): "if a designer needs to
//! create an integrity and availability attack detection model to detect
//! attacks on individual components (X, Y or Z motor) using the
//! side-channels, he/she will be able to estimate the performance of such
//! a model using the CGAN model." These injectors create the attacked
//! executions that the detection experiments score:
//!
//! * **integrity** (kinetic-cyber): the G-code the controller executes is
//!   tampered with — scaled geometry or swapped axes — while the cyber
//!   record still claims the original program;
//! * **availability**: an axis is stalled (its moves dropped), denying
//!   the physical actuation the program requested.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Axis, GCodeProgram};

/// The attack classes of the case study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackKind {
    /// Integrity: scale every target on one axis by `factor`, silently
    /// deforming the printed geometry (the classic kinetic-cyber attack
    /// on additive manufacturing, cf. paper refs \[13\], \[14\]).
    ScaleAxis {
        /// Axis whose coordinates are scaled.
        axis: Axis,
        /// Multiplicative factor applied to each coordinate.
        factor: f64,
    },
    /// Integrity: swap the coordinates of two axes on every move,
    /// rotating the part 90 degrees in the firmware's back.
    SwapAxes {
        /// First axis.
        a: Axis,
        /// Second axis.
        b: Axis,
    },
    /// Availability: remove one axis' words from every move, stalling
    /// that motor for the whole program.
    StallAxis {
        /// The denied axis.
        axis: Axis,
    },
    /// Availability: randomly slow moves by inflating feed overrides,
    /// degrading throughput without changing geometry.
    SlowFeed {
        /// Multiplier `< 1` applied to every feed word.
        factor: f64,
    },
}

/// A labeled attack: the tampered program plus ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attack {
    /// What was done.
    pub kind: AttackKind,
    /// The tampered program the printer actually executes.
    pub tampered: GCodeProgram,
    /// Command indices whose semantics were altered.
    pub affected_commands: Vec<usize>,
}

/// Applies [`AttackKind`]s to benign programs.
///
/// # Example
///
/// ```
/// use gansec_amsim::{AttackInjector, AttackKind, Axis, GCodeProgram};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let benign: GCodeProgram = "G1 F1200 X10".parse()?;
/// let attack = AttackInjector::new().inject(
///     &benign,
///     AttackKind::ScaleAxis { axis: Axis::X, factor: 2.0 },
/// );
/// // The printed part is silently twice as wide.
/// assert_eq!(attack.tampered.commands()[0].word('X'), Some(20.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackInjector;

impl AttackInjector {
    /// Creates an injector.
    pub fn new() -> Self {
        Self
    }

    /// Applies `kind` to `program`, returning the labeled attack.
    ///
    /// # Panics
    ///
    /// Panics if a scale/slow factor is not positive and finite, or if
    /// [`AttackKind::SwapAxes`] names the same axis twice.
    pub fn inject(&self, program: &GCodeProgram, kind: AttackKind) -> Attack {
        let mut tampered = program.clone();
        let mut affected = Vec::new();
        match kind {
            AttackKind::ScaleAxis { axis, factor } => {
                assert!(
                    factor.is_finite() && factor > 0.0,
                    "factor must be positive"
                );
                for (i, cmd) in tampered.commands_mut().iter_mut().enumerate() {
                    if cmd.is_move() {
                        if let Some(v) = cmd.word(axis.letter()) {
                            cmd.set_word(axis.letter(), v * factor);
                            affected.push(i);
                        }
                    }
                }
            }
            AttackKind::SwapAxes { a, b } => {
                assert!(a != b, "cannot swap an axis with itself");
                for (i, cmd) in tampered.commands_mut().iter_mut().enumerate() {
                    if !cmd.is_move() {
                        continue;
                    }
                    let va = cmd.word(a.letter());
                    let vb = cmd.word(b.letter());
                    if va.is_some() || vb.is_some() {
                        match va {
                            Some(v) => cmd.set_word(b.letter(), v),
                            None => {
                                let _ = cmd.remove_word(b.letter());
                            }
                        }
                        match vb {
                            Some(v) => cmd.set_word(a.letter(), v),
                            None => {
                                let _ = cmd.remove_word(a.letter());
                            }
                        }
                        affected.push(i);
                    }
                }
            }
            AttackKind::StallAxis { axis } => {
                for (i, cmd) in tampered.commands_mut().iter_mut().enumerate() {
                    if cmd.is_move() && cmd.remove_word(axis.letter()).is_some() {
                        affected.push(i);
                    }
                }
            }
            AttackKind::SlowFeed { factor } => {
                assert!(
                    factor.is_finite() && factor > 0.0,
                    "factor must be positive"
                );
                for (i, cmd) in tampered.commands_mut().iter_mut().enumerate() {
                    if cmd.is_move() {
                        if let Some(f) = cmd.word('F') {
                            cmd.set_word('F', f * factor);
                            affected.push(i);
                        }
                    }
                }
            }
        }
        Attack {
            kind,
            tampered,
            affected_commands: affected,
        }
    }

    /// Samples a random attack kind for fuzz-style detection evaluation.
    pub fn random_kind(&self, rng: &mut impl Rng) -> AttackKind {
        let axes = [Axis::X, Axis::Y, Axis::Z];
        match rng.gen_range(0..4) {
            0 => AttackKind::ScaleAxis {
                axis: axes[rng.gen_range(0..3)],
                factor: rng.gen_range(1.3..2.5),
            },
            1 => {
                let a = axes[rng.gen_range(0..3)];
                let b = loop {
                    let c = axes[rng.gen_range(0..3)];
                    if c != a {
                        break c;
                    }
                };
                AttackKind::SwapAxes { a, b }
            }
            2 => AttackKind::StallAxis {
                axis: axes[rng.gen_range(0..3)],
            },
            _ => AttackKind::SlowFeed {
                factor: rng.gen_range(0.3..0.7),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{single_axis_program, Kinematics, MotorSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn benign() -> GCodeProgram {
        single_axis_program(Axis::X, 4, 10.0, 1200.0)
    }

    #[test]
    fn scale_attack_changes_geometry() {
        let attack = AttackInjector::new().inject(
            &benign(),
            AttackKind::ScaleAxis {
                axis: Axis::X,
                factor: 2.0,
            },
        );
        // Only even-indexed moves carry X != 0 and X10 -> X20.
        let x0 = attack.tampered.commands()[0].word('X');
        assert_eq!(x0, Some(20.0));
        assert!(!attack.affected_commands.is_empty());
        // Kinematics now travel twice as far.
        let k = Kinematics::printrbot_class();
        let orig = k.plan(&benign());
        let tampered = k.plan(&attack.tampered);
        assert!(tampered[0].distances_mm[0] > orig[0].distances_mm[0] * 1.9);
    }

    #[test]
    fn swap_attack_moves_wrong_motor() {
        let attack = AttackInjector::new().inject(
            &benign(),
            AttackKind::SwapAxes {
                a: Axis::X,
                b: Axis::Y,
            },
        );
        let k = Kinematics::printrbot_class();
        let segs = k.plan(&attack.tampered);
        // The benign program moved only X; the attacked one moves only Y.
        for s in &segs {
            assert_eq!(MotorSet::from_segment(s), MotorSet::Y);
        }
    }

    #[test]
    fn stall_attack_silences_motor() {
        let attack =
            AttackInjector::new().inject(&benign(), AttackKind::StallAxis { axis: Axis::X });
        let k = Kinematics::printrbot_class();
        let segs = k.plan(&attack.tampered);
        assert!(
            segs.is_empty(),
            "all moves were X-only, so no motion remains"
        );
        assert_eq!(attack.affected_commands.len(), 4);
    }

    #[test]
    fn slow_feed_attack_slows_motion() {
        let attack = AttackInjector::new().inject(&benign(), AttackKind::SlowFeed { factor: 0.5 });
        let k = Kinematics::printrbot_class();
        let orig = k.plan(&benign());
        let slowed = k.plan(&attack.tampered);
        assert!(slowed[0].duration_s > orig[0].duration_s * 1.9);
    }

    #[test]
    fn benign_program_untouched() {
        let p = benign();
        let attack = AttackInjector::new().inject(
            &p,
            AttackKind::ScaleAxis {
                axis: Axis::Z,
                factor: 2.0,
            },
        );
        // No Z words in an X-only program: nothing affected.
        assert!(attack.affected_commands.is_empty());
        assert_eq!(attack.tampered, p);
    }

    #[test]
    fn random_kinds_are_valid() {
        let inj = AttackInjector::new();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let kind = inj.random_kind(&mut rng);
            // Must not panic when applied.
            let _ = inj.inject(&benign(), kind);
            if let AttackKind::SwapAxes { a, b } = kind {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "swap an axis with itself")]
    fn swap_same_axis_rejected() {
        let _ = AttackInjector::new().inject(
            &benign(),
            AttackKind::SwapAxes {
                a: Axis::X,
                b: Axis::X,
            },
        );
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn zero_scale_rejected() {
        let _ = AttackInjector::new().inject(
            &benign(),
            AttackKind::ScaleAxis {
                axis: Axis::X,
                factor: 0.0,
            },
        );
    }
}
