//! Property tests for Algorithm 1's graph invariants over randomly
//! generated architectures.

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use gansec_cpps::{ComponentId, CppsArchitecture, FlowKind};
use proptest::prelude::*;

/// A random architecture: `n` components in 1-3 subsystems with random
/// directed flows (self-loops excluded by the builder contract, so we
/// filter them out of the generated edge list).
fn random_arch() -> impl Strategy<Value = CppsArchitecture> {
    (
        2usize..10,
        proptest::collection::vec((0usize..10, 0usize..10, any::<bool>()), 0..30),
    )
        .prop_map(|(n, edges)| {
            let mut arch = CppsArchitecture::new("random");
            let s1 = arch.add_subsystem("s1");
            let s2 = arch.add_subsystem("s2");
            let mut ids = Vec::new();
            for i in 0..n {
                let sub = if i % 2 == 0 { s1 } else { s2 };
                let id = if i % 3 == 0 {
                    arch.add_cyber(sub, format!("c{i}")).expect("valid sub")
                } else {
                    arch.add_physical(sub, format!("p{i}")).expect("valid sub")
                };
                ids.push(id);
            }
            for (k, (a, b, sig)) in edges.into_iter().enumerate() {
                let from = ids[a % n];
                let to = ids[b % n];
                if from != to {
                    let kind = if sig {
                        FlowKind::Signal
                    } else {
                        FlowKind::Energy
                    };
                    let _ = arch
                        .add_flow(format!("f{k}"), kind, from, to)
                        .expect("valid ids");
                }
            }
            arch
        })
}

/// Is the kept subgraph acyclic? (Kahn's algorithm.)
fn kept_graph_is_acyclic(g: &gansec_cpps::CppsGraph) -> bool {
    let n = g.components().len();
    let mut indeg = vec![0usize; n];
    for v in 0..n {
        for &(u, _) in g.neighbors(ComponentId::new(v)) {
            indeg[u.index()] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut seen = 0;
    while let Some(v) = queue.pop() {
        seen += 1;
        for &(u, _) in g.neighbors(ComponentId::new(v)) {
            indeg[u.index()] -= 1;
            if indeg[u.index()] == 0 {
                queue.push(u.index());
            }
        }
    }
    seen == n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn feedback_removal_yields_acyclic_graph(arch in random_arch()) {
        let g = arch.build_graph();
        prop_assert!(kept_graph_is_acyclic(&g));
    }

    #[test]
    fn no_pair_references_removed_flow(arch in random_arch()) {
        let g = arch.build_graph();
        let pairs = g.candidate_flow_pairs();
        for p in pairs.iter() {
            prop_assert!(g.is_kept(p.from));
            prop_assert!(g.is_kept(p.to));
        }
    }

    #[test]
    fn no_self_pairs(arch in random_arch()) {
        let g = arch.build_graph();
        prop_assert!(g.candidate_flow_pairs().iter().all(|p| p.from != p.to));
    }

    #[test]
    fn pruning_is_subset_and_idempotent(arch in random_arch()) {
        let g = arch.build_graph();
        let all = g.candidate_flow_pairs();
        let pruned = g.flow_pairs_with_data(|p| p.from.index() % 2 == 0);
        prop_assert!(pruned.len() <= all.len());
        for p in pruned.iter() {
            prop_assert!(all.contains(p.from, p.to));
        }
        let again = pruned.clone().retain(|p| p.from.index() % 2 == 0);
        prop_assert_eq!(again, pruned);
    }

    #[test]
    fn cross_domain_pairs_are_subset_with_mixed_kinds(arch in random_arch()) {
        let g = arch.build_graph();
        let all = g.candidate_flow_pairs();
        let cross = g.cross_domain_pairs();
        prop_assert!(cross.len() <= all.len());
        for p in cross.iter() {
            let k1 = g.flow(p.from).unwrap().kind();
            let k2 = g.flow(p.to).unwrap().kind();
            prop_assert!(k1 != k2);
        }
    }

    #[test]
    fn reachability_is_transitive_on_samples(arch in random_arch()) {
        let g = arch.build_graph();
        let n = g.components().len();
        for a in 0..n.min(4) {
            for b in 0..n.min(4) {
                for c in 0..n.min(4) {
                    let (a, b, c) = (
                        ComponentId::new(a),
                        ComponentId::new(b),
                        ComponentId::new(c),
                    );
                    if g.reachable(a, b) && g.reachable(b, c) {
                        prop_assert!(g.reachable(a, c));
                    }
                }
            }
        }
    }

    #[test]
    fn pair_count_bounded_by_kept_flow_pairs(arch in random_arch()) {
        let g = arch.build_graph();
        let kept = g.flows().iter().filter(|f| g.is_kept(f.id())).count();
        let max_pairs = kept.saturating_mul(kept.saturating_sub(1));
        prop_assert!(g.candidate_flow_pairs().len() <= max_pairs);
    }

    #[test]
    fn dot_export_is_well_formed(arch in random_arch()) {
        let g = arch.build_graph();
        let dot = g.to_dot(&arch);
        prop_assert!(dot.starts_with("digraph"));
        prop_assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        prop_assert!(dot.matches("->").count() >= g.flows().len());
    }
}
