//! Flow pairs: the unit of CGAN modeling (`FP_T` in Algorithm 1).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::FlowId;

/// An ordered pair of flows `(F_1, F_2)`: the CGAN models
/// `Pr(F_to | F_from)` — information about `from` conditions the
/// distribution of `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowPair {
    /// The conditioning flow (`F_1` in Algorithm 1 line 14).
    pub from: FlowId,
    /// The modeled flow (`F_2`).
    pub to: FlowId,
}

impl FlowPair {
    /// Creates a pair.
    pub fn new(from: FlowId, to: FlowId) -> Self {
        Self { from, to }
    }

    /// The pair with roles swapped, for modeling the reverse conditional.
    pub fn reversed(self) -> Self {
        Self {
            from: self.to,
            to: self.from,
        }
    }
}

impl fmt::Display for FlowPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} -> {})", self.from, self.to)
    }
}

/// An ordered list of flow pairs (`FP_F` / `FP_T` in Algorithm 1).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowPairList {
    pairs: Vec<FlowPair>,
}

impl FlowPairList {
    /// Wraps a pair list, preserving order.
    pub fn new(pairs: Vec<FlowPair>) -> Self {
        Self { pairs }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over the pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = &FlowPair> {
        self.pairs.iter()
    }

    /// Whether the list contains `(from, to)`.
    pub fn contains(&self, from: FlowId, to: FlowId) -> bool {
        self.pairs.iter().any(|p| p.from == from && p.to == to)
    }

    /// Borrows the underlying slice.
    pub fn as_slice(&self) -> &[FlowPair] {
        &self.pairs
    }

    /// Consumes into the underlying vector.
    pub fn into_vec(self) -> Vec<FlowPair> {
        self.pairs
    }

    /// Keeps only pairs satisfying `keep`; Algorithm 1's data-availability
    /// pruning (`FP_F` → `FP_T`) is expressed through this.
    pub fn retain(mut self, keep: impl Fn(&FlowPair) -> bool) -> Self {
        self.pairs.retain(|p| keep(p));
        self
    }
}

impl FromIterator<FlowPair> for FlowPairList {
    fn from_iter<I: IntoIterator<Item = FlowPair>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl Extend<FlowPair> for FlowPairList {
    fn extend<I: IntoIterator<Item = FlowPair>>(&mut self, iter: I) {
        self.pairs.extend(iter);
    }
}

impl IntoIterator for FlowPairList {
    type Item = FlowPair;
    type IntoIter = std::vec::IntoIter<FlowPair>;

    fn into_iter(self) -> Self::IntoIter {
        self.pairs.into_iter()
    }
}

impl<'a> IntoIterator for &'a FlowPairList {
    type Item = &'a FlowPair;
    type IntoIter = std::slice::Iter<'a, FlowPair>;

    fn into_iter(self) -> Self::IntoIter {
        self.pairs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(i: usize) -> FlowId {
        FlowId::new(i)
    }

    #[test]
    fn reversed_swaps_roles() {
        let p = FlowPair::new(fid(1), fid(2));
        assert_eq!(p.reversed(), FlowPair::new(fid(2), fid(1)));
        assert_eq!(p.reversed().reversed(), p);
    }

    #[test]
    fn display_shows_direction() {
        assert_eq!(FlowPair::new(fid(0), fid(3)).to_string(), "(f0 -> f3)");
    }

    #[test]
    fn retain_filters_in_place() {
        let list: FlowPairList = (0..4).map(|i| FlowPair::new(fid(i), fid(i + 1))).collect();
        let kept = list.retain(|p| p.from.index() % 2 == 0);
        assert_eq!(kept.len(), 2);
        assert!(kept.contains(fid(0), fid(1)));
        assert!(kept.contains(fid(2), fid(3)));
    }

    #[test]
    fn collection_traits() {
        let mut list: FlowPairList = std::iter::once(FlowPair::new(fid(0), fid(1))).collect();
        list.extend([FlowPair::new(fid(1), fid(2))]);
        assert_eq!(list.len(), 2);
        let v: Vec<FlowPair> = list.clone().into_iter().collect();
        assert_eq!(v.len(), 2);
        let borrowed: Vec<&FlowPair> = (&list).into_iter().collect();
        assert_eq!(borrowed.len(), 2);
    }

    #[test]
    fn empty_list_behaves() {
        let list = FlowPairList::default();
        assert!(list.is_empty());
        assert!(!list.contains(fid(0), fid(1)));
    }
}
