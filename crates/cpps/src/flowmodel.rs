//! Probabilistic flow models: the paper's §I-B preliminaries.
//!
//! *Signal flow*: a discrete random variable `F_S ∈ {f_1..f_n}` with
//! events `E_i = [F_S = f_i]` of known probability `Pr(E_i)`.
//!
//! *Energy flow*: a continuous signal whose feature-extraction pipeline
//! (`f_X`, `f_Y`) yields feature variables `Y^i`, each again discrete
//! with events `E_{i_j}` and probabilities.
//!
//! These models give the information-theoretic frame around the CGAN:
//! the entropy of a signal flow is the ceiling on what *any* side
//! channel can leak about it, and comparing it with the measured mutual
//! information quantifies how much of the ceiling an attacker reaches.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Error from flow-model construction.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowModelError {
    /// No events were supplied.
    Empty,
    /// A probability was negative or non-finite.
    InvalidProbability(f64),
    /// Probabilities do not sum to ~1.
    NotNormalized(f64),
    /// Value and probability lists differ in length.
    LengthMismatch {
        /// Number of event values.
        values: usize,
        /// Number of probabilities.
        probs: usize,
    },
}

impl fmt::Display for FlowModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowModelError::Empty => write!(f, "a flow needs at least one event"),
            FlowModelError::InvalidProbability(p) => write!(f, "invalid probability {p}"),
            FlowModelError::NotNormalized(s) => {
                write!(f, "probabilities sum to {s}, expected 1")
            }
            FlowModelError::LengthMismatch { values, probs } => {
                write!(f, "{values} values but {probs} probabilities")
            }
        }
    }
}

impl Error for FlowModelError {}

/// A discrete signal-flow model: named event values with probabilities
/// (`F_S`, `E_i`, `Pr(E_i)` of §I-B).
///
/// # Example
///
/// ```
/// use gansec_cpps::SignalFlowModel;
///
/// // A uniform 3-way command flow can leak at most ln(3) nats.
/// let flow = SignalFlowModel::uniform(3);
/// assert!((flow.entropy_nats() - 3.0f64.ln()).abs() < 1e-12);
/// // A side channel measured at 0.55 nats captures half the ceiling.
/// assert!((flow.leakage_fraction(3.0f64.ln() / 2.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalFlowModel {
    values: Vec<String>,
    probs: Vec<f64>,
}

impl SignalFlowModel {
    /// Creates a model from event names and probabilities.
    ///
    /// # Errors
    ///
    /// Rejects empty inputs, mismatched lengths, negative/non-finite
    /// probabilities, and distributions not summing to 1 (tolerance
    /// `1e-9`).
    pub fn new(values: Vec<String>, probs: Vec<f64>) -> Result<Self, FlowModelError> {
        if values.is_empty() {
            return Err(FlowModelError::Empty);
        }
        if values.len() != probs.len() {
            return Err(FlowModelError::LengthMismatch {
                values: values.len(),
                probs: probs.len(),
            });
        }
        if let Some(&bad) = probs.iter().find(|&&p| !p.is_finite() || p < 0.0) {
            return Err(FlowModelError::InvalidProbability(bad));
        }
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(FlowModelError::NotNormalized(sum));
        }
        Ok(Self { values, probs })
    }

    /// A uniform distribution over `n` events named `e0..e(n-1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "need at least one event");
        Self {
            values: (0..n).map(|i| format!("e{i}")).collect(),
            probs: vec![1.0 / n as f64; n],
        }
    }

    /// Estimates the model from observed event counts, with names taken
    /// from `values`.
    ///
    /// # Errors
    ///
    /// Rejects empty or mismatched inputs and all-zero counts.
    pub fn from_counts(values: Vec<String>, counts: &[u64]) -> Result<Self, FlowModelError> {
        if values.len() != counts.len() {
            return Err(FlowModelError::LengthMismatch {
                values: values.len(),
                probs: counts.len(),
            });
        }
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Err(FlowModelError::Empty);
        }
        let probs = counts.iter().map(|&c| c as f64 / total as f64).collect();
        Self::new(values, probs)
    }

    /// Number of events `n`.
    pub fn n_events(&self) -> usize {
        self.values.len()
    }

    /// Event names in index order.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// `Pr(E_i)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn probability(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// The full probability vector.
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// Shannon entropy `H(F_S)` in nats — the ceiling on the information
    /// any side channel can leak about this flow per observation.
    pub fn entropy_nats(&self) -> f64 {
        self.probs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.ln())
            .sum()
    }

    /// Entropy in bits.
    pub fn entropy_bits(&self) -> f64 {
        self.entropy_nats() / std::f64::consts::LN_2
    }

    /// What fraction of this flow's entropy a measured leakage of
    /// `mutual_information_nats` captures, clamped to `[0, 1]`. A value
    /// of 1 means the side channel reveals the flow completely.
    pub fn leakage_fraction(&self, mutual_information_nats: f64) -> f64 {
        let h = self.entropy_nats();
        if h <= 0.0 {
            return 0.0;
        }
        (mutual_information_nats / h).clamp(0.0, 1.0)
    }
}

/// An energy-flow model after feature extraction: one discrete event
/// model per extracted feature `Y^i` (§I-B's `E_{i_j}` families).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyFlowModel {
    features: Vec<SignalFlowModel>,
}

impl EnergyFlowModel {
    /// Wraps per-feature event models.
    ///
    /// # Errors
    ///
    /// Rejects an empty feature list.
    pub fn new(features: Vec<SignalFlowModel>) -> Result<Self, FlowModelError> {
        if features.is_empty() {
            return Err(FlowModelError::Empty);
        }
        Ok(Self { features })
    }

    /// Number of feature variables `m`.
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// The event model of feature `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn feature(&self, i: usize) -> &SignalFlowModel {
        &self.features[i]
    }

    /// Upper bound on the joint entropy (nats): the sum of per-feature
    /// entropies (equality iff features are independent).
    pub fn joint_entropy_upper_bound_nats(&self) -> f64 {
        self.features
            .iter()
            .map(SignalFlowModel::entropy_nats)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("v{i}")).collect()
    }

    #[test]
    fn uniform_entropy_is_log_n() {
        let m = SignalFlowModel::uniform(8);
        assert!((m.entropy_nats() - 8.0f64.ln()).abs() < 1e-12);
        assert!((m.entropy_bits() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn point_mass_has_zero_entropy() {
        let m = SignalFlowModel::new(names(2), vec![1.0, 0.0]).unwrap();
        assert_eq!(m.entropy_nats(), 0.0);
        assert_eq!(m.leakage_fraction(0.5), 0.0);
    }

    #[test]
    fn from_counts_normalizes() {
        let m = SignalFlowModel::from_counts(names(3), &[10, 30, 60]).unwrap();
        assert!((m.probability(0) - 0.1).abs() < 1e-12);
        assert!((m.probability(2) - 0.6).abs() < 1e-12);
        let sum: f64 = m.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_fraction_is_clamped_ratio() {
        let m = SignalFlowModel::uniform(3); // H = ln 3
        let h = 3.0f64.ln();
        assert!((m.leakage_fraction(h / 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(m.leakage_fraction(10.0), 1.0);
        assert_eq!(m.leakage_fraction(-1.0), 0.0);
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            SignalFlowModel::new(vec![], vec![]),
            Err(FlowModelError::Empty)
        );
        assert!(matches!(
            SignalFlowModel::new(names(2), vec![0.5]),
            Err(FlowModelError::LengthMismatch { .. })
        ));
        assert!(matches!(
            SignalFlowModel::new(names(2), vec![0.7, 0.7]),
            Err(FlowModelError::NotNormalized(_))
        ));
        assert!(matches!(
            SignalFlowModel::new(names(2), vec![-0.5, 1.5]),
            Err(FlowModelError::InvalidProbability(_))
        ));
        assert_eq!(
            SignalFlowModel::from_counts(names(2), &[0, 0]),
            Err(FlowModelError::Empty)
        );
    }

    #[test]
    fn energy_flow_entropy_bound() {
        let f1 = SignalFlowModel::uniform(4); // ln 4
        let f2 = SignalFlowModel::uniform(2); // ln 2
        let e = EnergyFlowModel::new(vec![f1, f2]).unwrap();
        assert_eq!(e.n_features(), 2);
        assert!((e.joint_entropy_upper_bound_nats() - (4.0f64.ln() + 2.0f64.ln())).abs() < 1e-12);
        assert_eq!(e.feature(1).n_events(), 2);
    }

    #[test]
    fn energy_flow_rejects_empty() {
        assert_eq!(EnergyFlowModel::new(vec![]), Err(FlowModelError::Empty));
    }

    #[test]
    fn error_display() {
        let e = FlowModelError::NotNormalized(0.7);
        assert!(e.to_string().contains("0.7"));
    }
}
