//! CPPS architecture modeling and flow-pair generation (paper §II-III).
//!
//! A Cyber-Physical Production System is modeled as sub-systems containing
//! cyber (`C_i`) and physical (`P_i`) components connected by *signal
//! flows* (cyber-domain, discrete) and *energy flows* (physical-domain,
//! continuous). This crate implements:
//!
//! * the design-time architecture description ([`CppsArchitecture`] and
//!   its builder API);
//! * **Algorithm 1** of the paper: [`CppsGraph`] generation, feedback-loop
//!   removal, DFS reachability, exhaustive flow-pair enumeration
//!   ([`CppsGraph::candidate_flow_pairs`]) and pruning against available
//!   historical data ([`CppsGraph::flow_pairs_with_data`]);
//! * Graphviz DOT export reproducing the paper's Figure 6 layout
//!   ([`CppsGraph::to_dot`]).
//!
//! # Example
//!
//! ```
//! use gansec_cpps::{CppsArchitecture, FlowKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut arch = CppsArchitecture::new("toy");
//! let sub = arch.add_subsystem("printer");
//! let c1 = arch.add_cyber(sub, "controller")?;
//! let p1 = arch.add_physical(sub, "motor")?;
//! let p9 = arch.add_physical(sub, "environment")?;
//! let f1 = arch.add_flow("pwm", FlowKind::Signal, c1, p1)?;
//! let f2 = arch.add_flow("acoustic", FlowKind::Energy, p1, p9)?;
//! let graph = arch.build_graph();
//! let pairs = graph.candidate_flow_pairs();
//! assert!(pairs.iter().any(|p| p.from == f1 && p.to == f2));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod architecture;
mod flowmodel;
mod graph;
mod ids;
mod pairs;

pub use architecture::{ArchError, Component, CppsArchitecture, Domain, Flow, FlowKind, Subsystem};
pub use flowmodel::{EnergyFlowModel, FlowModelError, SignalFlowModel};
pub use graph::CppsGraph;
pub use ids::{ComponentId, FlowId, SubsystemId};
pub use pairs::{FlowPair, FlowPairList};
