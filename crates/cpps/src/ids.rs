//! Typed identifiers for architecture entities.
//!
//! Newtypes keep component, flow, and subsystem indices from being mixed
//! up in the graph algorithms (C-NEWTYPE).

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(usize);

        impl $name {
            /// Wraps a raw index. Indices are assigned densely by
            /// [`crate::CppsArchitecture`] in insertion order.
            pub fn new(index: usize) -> Self {
                Self(index)
            }

            /// The raw dense index.
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifier of a cyber or physical component (a graph node).
    ComponentId,
    "n"
);
id_type!(
    /// Identifier of a signal or energy flow (a graph edge).
    FlowId,
    "f"
);
id_type!(
    /// Identifier of a sub-system grouping components.
    SubsystemId,
    "s"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        let c = ComponentId::new(3);
        assert_eq!(c.index(), 3);
        assert_eq!(usize::from(c), 3);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(ComponentId::new(1).to_string(), "n1");
        assert_eq!(FlowId::new(2).to_string(), "f2");
        assert_eq!(SubsystemId::new(0).to_string(), "s0");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(FlowId::new(1) < FlowId::new(2));
    }
}
