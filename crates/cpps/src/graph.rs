//! `G_CPPS` generation and traversal: Algorithm 1 lines 1-14.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::{
    Component, ComponentId, CppsArchitecture, Domain, Flow, FlowId, FlowKind, FlowPair,
    FlowPairList,
};

/// The CPPS graph: components as nodes, flows as directed edges, with
/// feedback loops removed (Algorithm 1 line 3) so that reachability
/// queries terminate and flow pairs have a causal direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CppsGraph {
    components: Vec<Component>,
    flows: Vec<Flow>,
    /// `adjacency[v]` lists (neighbor, flow id) for kept flows out of `v`.
    adjacency: Vec<Vec<(ComponentId, FlowId)>>,
    /// Flows classified as feedback (back edges) and excluded from the
    /// adjacency structure. They remain listed for reporting.
    feedback_flows: Vec<FlowId>,
}

impl CppsGraph {
    /// Builds the graph from a design-time architecture (Algorithm 1
    /// lines 1-10): every component becomes a node; every flow becomes a
    /// directed edge; back edges found by a deterministic DFS over nodes
    /// in id order are classified as feedback loops and removed.
    pub fn from_architecture(arch: &CppsArchitecture) -> Self {
        let n = arch.components().len();
        let mut adjacency: Vec<Vec<(ComponentId, FlowId)>> = vec![Vec::new(); n];
        for flow in arch.flows() {
            adjacency[flow.from().index()].push((flow.to(), flow.id()));
        }

        let feedback = find_back_edges(n, &adjacency);
        if !feedback.is_empty() {
            let feedback_set: HashSet<FlowId> = feedback.iter().copied().collect();
            for adj in &mut adjacency {
                adj.retain(|(_, f)| !feedback_set.contains(f));
            }
        }

        Self {
            components: arch.components().to_vec(),
            flows: arch.flows().to_vec(),
            adjacency,
            feedback_flows: feedback,
        }
    }

    /// Graph nodes in id order.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// All declared flows in id order, including removed feedback flows.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Flows classified as feedback loops and excluded from traversal.
    pub fn feedback_flows(&self) -> &[FlowId] {
        &self.feedback_flows
    }

    /// Whether `flow` survived feedback removal.
    pub fn is_kept(&self, flow: FlowId) -> bool {
        !self.feedback_flows.contains(&flow)
    }

    /// Looks up a flow by id.
    pub fn flow(&self, id: FlowId) -> Option<&Flow> {
        self.flows.get(id.index())
    }

    /// Looks up a component by id.
    pub fn component(&self, id: ComponentId) -> Option<&Component> {
        self.components.get(id.index())
    }

    /// Kept out-edges of `v` as `(neighbor, flow)` pairs.
    pub fn neighbors(&self, v: ComponentId) -> &[(ComponentId, FlowId)] {
        &self.adjacency[v.index()]
    }

    /// Whether `to` is reachable from `from` along kept flows (DFS);
    /// a node is reachable from itself.
    pub fn reachable(&self, from: ComponentId, to: ComponentId) -> bool {
        if from == to {
            return true;
        }
        let mut visited = vec![false; self.components.len()];
        let mut stack = vec![from];
        visited[from.index()] = true;
        while let Some(v) = stack.pop() {
            for &(u, _) in &self.adjacency[v.index()] {
                if u == to {
                    return true;
                }
                if !visited[u.index()] {
                    visited[u.index()] = true;
                    stack.push(u);
                }
            }
        }
        false
    }

    /// Shortest flow path (by hop count, BFS) from component `from` to
    /// component `to`, as the list of traversed flow ids; `None` if
    /// unreachable, `Some(vec![])` if `from == to`. This is the
    /// "explanation" of a flow pair: the physical route the information
    /// takes from the conditioning flow to the modeled emission.
    pub fn flow_path(&self, from: ComponentId, to: ComponentId) -> Option<Vec<FlowId>> {
        if from == to {
            return Some(Vec::new());
        }
        let n = self.components.len();
        let mut prev: Vec<Option<(ComponentId, FlowId)>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[from.index()] = true;
        queue.push_back(from);
        while let Some(v) = queue.pop_front() {
            for &(u, f) in &self.adjacency[v.index()] {
                if !visited[u.index()] {
                    visited[u.index()] = true;
                    prev[u.index()] = Some((v, f));
                    if u == to {
                        // Reconstruct the path backwards.
                        let mut path = Vec::new();
                        let mut cursor = to;
                        while cursor != from {
                            let (p, flow) =
                                prev[cursor.index()].expect("visited nodes have predecessors");
                            path.push(flow);
                            cursor = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(u);
                }
            }
        }
        None
    }

    /// Explains a flow pair: the shortest kept-flow route from the tail
    /// of `pair.from` to the *source* of `pair.to`, ending with
    /// `pair.to` itself — i.e. the causal chain that terminates in the
    /// modeled emission (not merely any path to its destination node).
    /// `None` when the pair is not connected that way.
    pub fn explain_pair(&self, pair: &FlowPair) -> Option<Vec<FlowId>> {
        let from = self.flows.get(pair.from.index())?.from();
        let emission = self.flows.get(pair.to.index())?;
        if !self.is_kept(emission.id()) {
            return None;
        }
        let mut path = self.flow_path(from, emission.from())?;
        path.push(emission.id());
        Some(path)
    }

    /// Algorithm 1 lines 11-14: enumerates candidate flow pairs
    /// `(F_1, F_2)` of *kept* flows with `F_1 != F_2` where the head of
    /// `F_2` is reachable from the tail of `F_1`, i.e. the two flows lie
    /// on a common causal path and `Pr(F_2 | F_1)` is physically
    /// meaningful to model.
    pub fn candidate_flow_pairs(&self) -> FlowPairList {
        let mut pairs = Vec::new();
        for f1 in &self.flows {
            if !self.is_kept(f1.id()) {
                continue;
            }
            for f2 in &self.flows {
                if f1.id() == f2.id() || !self.is_kept(f2.id()) {
                    continue;
                }
                if self.reachable(f1.from(), f2.to()) {
                    pairs.push(FlowPair::new(f1.id(), f2.id()));
                }
            }
        }
        FlowPairList::new(pairs)
    }

    /// Algorithm 1 lines 15-17: prunes candidate pairs to those for which
    /// historical data exists, as decided by `has_data`.
    pub fn flow_pairs_with_data(&self, has_data: impl Fn(&FlowPair) -> bool) -> FlowPairList {
        self.candidate_flow_pairs().retain(has_data)
    }

    /// Candidate pairs restricted to cross-domain `(signal, energy)` or
    /// `(energy, signal)` combinations — the pairs the paper's case study
    /// selects for side-channel analysis (§IV-B).
    pub fn cross_domain_pairs(&self) -> FlowPairList {
        self.candidate_flow_pairs().retain(|p| {
            let k1 = self.flows[p.from.index()].kind();
            let k2 = self.flows[p.to.index()].kind();
            k1 != k2
        })
    }

    /// Exports the graph in Graphviz DOT form, clustered by sub-system:
    /// cyber components as boxes, physical as ellipses, signal flows as
    /// solid edges, energy flows dashed, removed feedback flows dotted
    /// red. Rendering this for the printer architecture reproduces the
    /// paper's Figure 6.
    pub fn to_dot(&self, arch: &CppsArchitecture) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph g_cpps {{");
        let _ = writeln!(out, "  rankdir=LR;");
        for sub in arch.subsystems() {
            let _ = writeln!(out, "  subgraph cluster_{} {{", sub.id().index());
            let _ = writeln!(out, "    label=\"{}\";", sub.name());
            for c in &self.components {
                if c.subsystem() == sub.id() {
                    let shape = match c.domain() {
                        Domain::Cyber => "box",
                        Domain::Physical => "ellipse",
                    };
                    let _ = writeln!(
                        out,
                        "    {} [label=\"{}\", shape={}];",
                        c.id(),
                        c.name(),
                        shape
                    );
                }
            }
            let _ = writeln!(out, "  }}");
        }
        for f in &self.flows {
            let style = if !self.is_kept(f.id()) {
                "style=dotted, color=red"
            } else {
                match f.kind() {
                    FlowKind::Signal => "style=solid",
                    FlowKind::Energy => "style=dashed",
                }
            };
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{}\", {}];",
                f.from(),
                f.to(),
                f.name(),
                style
            );
        }
        let _ = writeln!(out, "}}");
        out
    }
}

/// Deterministic iterative DFS classifying back edges (edges into a node
/// still on the current DFS stack). Removing exactly these edges makes
/// the remaining graph acyclic.
fn find_back_edges(n: usize, adjacency: &[Vec<(ComponentId, FlowId)>]) -> Vec<FlowId> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Unvisited,
        OnStack,
        Done,
    }
    let mut state = vec![State::Unvisited; n];
    let mut back = Vec::new();

    for root in 0..n {
        if state[root] != State::Unvisited {
            continue;
        }
        // Each stack frame: (node, next out-edge index to examine).
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        state[root] = State::OnStack;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < adjacency[v].len() {
                let (u, f) = adjacency[v][*next];
                *next += 1;
                match state[u.index()] {
                    State::OnStack => back.push(f),
                    State::Unvisited => {
                        state[u.index()] = State::OnStack;
                        stack.push((u.index(), 0));
                    }
                    State::Done => {}
                }
            } else {
                state[v] = State::Done;
                stack.pop();
            }
        }
    }
    back.sort_unstable();
    back
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CppsArchitecture;

    /// a -> b -> c with a feedback edge c -> a.
    fn cyclic_arch() -> (CppsArchitecture, Vec<ComponentId>, Vec<FlowId>) {
        let mut arch = CppsArchitecture::new("cyclic");
        let s = arch.add_subsystem("s");
        let a = arch.add_cyber(s, "a").unwrap();
        let b = arch.add_physical(s, "b").unwrap();
        let c = arch.add_physical(s, "c").unwrap();
        let f0 = arch.add_flow("ab", FlowKind::Signal, a, b).unwrap();
        let f1 = arch.add_flow("bc", FlowKind::Energy, b, c).unwrap();
        let f2 = arch.add_flow("ca", FlowKind::Signal, c, a).unwrap();
        (arch, vec![a, b, c], vec![f0, f1, f2])
    }

    #[test]
    fn feedback_edge_is_removed() {
        let (arch, _, flows) = cyclic_arch();
        let g = arch.build_graph();
        assert_eq!(g.feedback_flows(), &[flows[2]]);
        assert!(g.is_kept(flows[0]));
        assert!(!g.is_kept(flows[2]));
    }

    #[test]
    fn acyclic_graph_keeps_everything() {
        let mut arch = CppsArchitecture::new("dag");
        let s = arch.add_subsystem("s");
        let a = arch.add_cyber(s, "a").unwrap();
        let b = arch.add_physical(s, "b").unwrap();
        let _ = arch.add_flow("ab", FlowKind::Signal, a, b).unwrap();
        let g = arch.build_graph();
        assert!(g.feedback_flows().is_empty());
    }

    #[test]
    fn reachability_follows_kept_edges_only() {
        let (arch, comps, _) = cyclic_arch();
        let g = arch.build_graph();
        assert!(g.reachable(comps[0], comps[2])); // a -> b -> c
        assert!(!g.reachable(comps[2], comps[0])); // feedback removed
        assert!(g.reachable(comps[1], comps[1])); // self
    }

    #[test]
    fn candidate_pairs_respect_causality() {
        let (arch, _, flows) = cyclic_arch();
        let g = arch.build_graph();
        let pairs = g.candidate_flow_pairs();
        // (ab, bc): head(bc)=c reachable from tail(ab)=a -> included.
        assert!(pairs.contains(flows[0], flows[1]));
        // (bc, ab): head(ab)=b reachable from tail(bc)=b (self) -> included.
        assert!(pairs.contains(flows[1], flows[0]));
        // Feedback flow ca excluded entirely.
        assert!(pairs.iter().all(|p| p.from != flows[2] && p.to != flows[2]));
    }

    #[test]
    fn no_self_pairs() {
        let (arch, _, _) = cyclic_arch();
        let pairs = arch.build_graph().candidate_flow_pairs();
        assert!(pairs.iter().all(|p| p.from != p.to));
    }

    #[test]
    fn data_pruning_is_subset() {
        let (arch, _, flows) = cyclic_arch();
        let g = arch.build_graph();
        let all = g.candidate_flow_pairs();
        let pruned = g.flow_pairs_with_data(|p| p.from == flows[0]);
        assert!(pruned.len() <= all.len());
        assert!(pruned.iter().all(|p| all.contains(p.from, p.to)));
        assert!(pruned.iter().all(|p| p.from == flows[0]));
    }

    #[test]
    fn cross_domain_pairs_mix_kinds() {
        let (arch, _, _) = cyclic_arch();
        let g = arch.build_graph();
        for p in g.cross_domain_pairs().iter() {
            let k1 = g.flow(p.from).unwrap().kind();
            let k2 = g.flow(p.to).unwrap().kind();
            assert_ne!(k1, k2);
        }
    }

    #[test]
    fn dot_export_mentions_all_components_and_flows() {
        let (arch, _, _) = cyclic_arch();
        let g = arch.build_graph();
        let dot = g.to_dot(&arch);
        for c in g.components() {
            assert!(dot.contains(c.name()), "missing component {}", c.name());
        }
        for f in g.flows() {
            assert!(dot.contains(f.name()), "missing flow {}", f.name());
        }
        assert!(dot.contains("digraph"));
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("color=red")); // removed feedback flow styled
    }

    #[test]
    fn flow_path_finds_route() {
        let (arch, comps, flows) = cyclic_arch();
        let g = arch.build_graph();
        // a -> b -> c uses flows ab then bc.
        assert_eq!(
            g.flow_path(comps[0], comps[2]),
            Some(vec![flows[0], flows[1]])
        );
        // Self path is empty.
        assert_eq!(g.flow_path(comps[1], comps[1]), Some(vec![]));
        // Feedback edge removed: c cannot reach a.
        assert_eq!(g.flow_path(comps[2], comps[0]), None);
    }

    #[test]
    fn explain_pair_routes_end_with_the_emission() {
        let (arch, _, flows) = cyclic_arch();
        let g = arch.build_graph();
        let pair = FlowPair::new(flows[0], flows[1]);
        // Route from a to b (the source of bc), then the emission bc.
        assert_eq!(g.explain_pair(&pair), Some(vec![flows[0], flows[1]]));
        // Removed feedback flows cannot be explained.
        let bad = FlowPair::new(flows[0], flows[2]);
        assert_eq!(g.explain_pair(&bad), None);
    }

    #[test]
    fn two_cycles_both_broken() {
        let mut arch = CppsArchitecture::new("two-cycles");
        let s = arch.add_subsystem("s");
        let a = arch.add_cyber(s, "a").unwrap();
        let b = arch.add_physical(s, "b").unwrap();
        let c = arch.add_physical(s, "c").unwrap();
        let d = arch.add_physical(s, "d").unwrap();
        let _ = arch.add_flow("ab", FlowKind::Signal, a, b).unwrap();
        let _ = arch.add_flow("ba", FlowKind::Signal, b, a).unwrap();
        let _ = arch.add_flow("cd", FlowKind::Energy, c, d).unwrap();
        let _ = arch.add_flow("dc", FlowKind::Energy, d, c).unwrap();
        let g = arch.build_graph();
        assert_eq!(g.feedback_flows().len(), 2);
        // After removal the graph is acyclic: no node reaches itself via
        // a nonempty path. Check via pair enumeration terminating and
        // mutual reachability being broken.
        assert!(!(g.reachable(a, b) && g.reachable(b, a)));
        assert!(!(g.reachable(c, d) && g.reachable(d, c)));
    }
}
