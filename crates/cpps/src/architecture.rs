//! Design-time CPPS architecture description: the input to Algorithm 1.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ComponentId, CppsGraph, FlowId, SubsystemId};

/// Whether a component lives in the cyber or the physical domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Computation/communication: controllers, firmware, external networks.
    Cyber,
    /// Matter/energy: motors, frames, the ambient environment.
    Physical,
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Cyber => write!(f, "cyber"),
            Domain::Physical => write!(f, "physical"),
        }
    }
}

/// Whether a flow carries discrete signals or continuous energy.
///
/// Signal flows (`F_S`) are cyber-domain discrete random variables;
/// energy flows (`F_E`) are continuous-time physical quantities (§I-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowKind {
    /// Discrete signal flow `F_S` (e.g. G/M-code streams).
    Signal,
    /// Continuous energy flow `F_E` (e.g. acoustic, vibration, thermal).
    Energy,
}

impl fmt::Display for FlowKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowKind::Signal => write!(f, "signal"),
            FlowKind::Energy => write!(f, "energy"),
        }
    }
}

/// A named sub-system grouping components (`Sub_1 ... Sub_n` in Fig. 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subsystem {
    id: SubsystemId,
    name: String,
}

impl Subsystem {
    /// Identifier.
    pub fn id(&self) -> SubsystemId {
        self.id
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A cyber or physical component: one node of `G_CPPS`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Component {
    id: ComponentId,
    name: String,
    domain: Domain,
    subsystem: SubsystemId,
}

impl Component {
    /// Identifier (the graph node id).
    pub fn id(&self) -> ComponentId {
        self.id
    }

    /// Human-readable name (e.g. `"X stepper motor"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cyber or physical domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Owning sub-system.
    pub fn subsystem(&self) -> SubsystemId {
        self.subsystem
    }
}

/// A directed signal or energy flow: one edge of `G_CPPS`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flow {
    id: FlowId,
    name: String,
    kind: FlowKind,
    from: ComponentId,
    to: ComponentId,
}

impl Flow {
    /// Identifier (the graph edge id).
    pub fn id(&self) -> FlowId {
        self.id
    }

    /// Human-readable name (e.g. `"acoustic emission"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Signal or energy.
    pub fn kind(&self) -> FlowKind {
        self.kind
    }

    /// Source component (the flow's *tail* in Algorithm 1's terminology).
    pub fn from(&self) -> ComponentId {
        self.from
    }

    /// Destination component (the flow's *head*).
    pub fn to(&self) -> ComponentId {
        self.to
    }
}

/// Errors from architecture construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// A referenced subsystem id does not exist.
    UnknownSubsystem(SubsystemId),
    /// A referenced component id does not exist.
    UnknownComponent(ComponentId),
    /// A flow was declared from a component to itself.
    SelfFlow(ComponentId),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::UnknownSubsystem(id) => write!(f, "unknown subsystem {id}"),
            ArchError::UnknownComponent(id) => write!(f, "unknown component {id}"),
            ArchError::SelfFlow(id) => write!(f, "flow from component {id} to itself"),
        }
    }
}

impl Error for ArchError {}

/// Design-time CPPS architecture: the `Sub, C, P, F_S, F_E` inputs of
/// Algorithm 1.
///
/// Build incrementally with [`CppsArchitecture::add_subsystem`],
/// [`CppsArchitecture::add_cyber`] / [`CppsArchitecture::add_physical`]
/// and [`CppsArchitecture::add_flow`], then call
/// [`CppsArchitecture::build_graph`] to run the graph-generation step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CppsArchitecture {
    name: String,
    subsystems: Vec<Subsystem>,
    components: Vec<Component>,
    flows: Vec<Flow>,
}

impl CppsArchitecture {
    /// Creates an empty architecture with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            subsystems: Vec::new(),
            components: Vec::new(),
            flows: Vec::new(),
        }
    }

    /// Architecture display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers a sub-system and returns its id.
    pub fn add_subsystem(&mut self, name: impl Into<String>) -> SubsystemId {
        let id = SubsystemId::new(self.subsystems.len());
        self.subsystems.push(Subsystem {
            id,
            name: name.into(),
        });
        id
    }

    /// Registers a cyber-domain component in `subsystem`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::UnknownSubsystem`] for a stale id.
    pub fn add_cyber(
        &mut self,
        subsystem: SubsystemId,
        name: impl Into<String>,
    ) -> Result<ComponentId, ArchError> {
        self.add_component(subsystem, name, Domain::Cyber)
    }

    /// Registers a physical-domain component in `subsystem`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::UnknownSubsystem`] for a stale id.
    pub fn add_physical(
        &mut self,
        subsystem: SubsystemId,
        name: impl Into<String>,
    ) -> Result<ComponentId, ArchError> {
        self.add_component(subsystem, name, Domain::Physical)
    }

    fn add_component(
        &mut self,
        subsystem: SubsystemId,
        name: impl Into<String>,
        domain: Domain,
    ) -> Result<ComponentId, ArchError> {
        if subsystem.index() >= self.subsystems.len() {
            return Err(ArchError::UnknownSubsystem(subsystem));
        }
        let id = ComponentId::new(self.components.len());
        self.components.push(Component {
            id,
            name: name.into(),
            domain,
            subsystem,
        });
        Ok(id)
    }

    /// Registers a directed flow between two existing components.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::UnknownComponent`] for stale ids and
    /// [`ArchError::SelfFlow`] if `from == to` (self-loops carry no
    /// cross-component information and would defeat the feedback-removal
    /// step).
    pub fn add_flow(
        &mut self,
        name: impl Into<String>,
        kind: FlowKind,
        from: ComponentId,
        to: ComponentId,
    ) -> Result<FlowId, ArchError> {
        for c in [from, to] {
            if c.index() >= self.components.len() {
                return Err(ArchError::UnknownComponent(c));
            }
        }
        if from == to {
            return Err(ArchError::SelfFlow(from));
        }
        let id = FlowId::new(self.flows.len());
        self.flows.push(Flow {
            id,
            name: name.into(),
            kind,
            from,
            to,
        });
        Ok(id)
    }

    /// Registered sub-systems.
    pub fn subsystems(&self) -> &[Subsystem] {
        &self.subsystems
    }

    /// Registered components in id order.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Registered flows in id order.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Looks up a component.
    pub fn component(&self, id: ComponentId) -> Option<&Component> {
        self.components.get(id.index())
    }

    /// Looks up a flow.
    pub fn flow(&self, id: FlowId) -> Option<&Flow> {
        self.flows.get(id.index())
    }

    /// Components belonging to `subsystem`, in id order (Algorithm 1's
    /// node list `Q`).
    pub fn components_in(&self, subsystem: SubsystemId) -> Vec<&Component> {
        self.components
            .iter()
            .filter(|c| c.subsystem == subsystem)
            .collect()
    }

    /// Runs Algorithm 1's graph-generation step (lines 1-10): builds
    /// `G_CPPS` with feedback loops removed.
    pub fn build_graph(&self) -> CppsGraph {
        CppsGraph::from_architecture(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (CppsArchitecture, ComponentId, ComponentId) {
        let mut arch = CppsArchitecture::new("toy");
        let s = arch.add_subsystem("s");
        let a = arch.add_cyber(s, "a").unwrap();
        let b = arch.add_physical(s, "b").unwrap();
        (arch, a, b)
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let (arch, a, b) = toy();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(arch.components().len(), 2);
        assert_eq!(arch.component(a).unwrap().domain(), Domain::Cyber);
        assert_eq!(arch.component(b).unwrap().domain(), Domain::Physical);
    }

    #[test]
    fn add_flow_validates_components() {
        let (mut arch, a, _) = toy();
        let bogus = ComponentId::new(99);
        assert_eq!(
            arch.add_flow("x", FlowKind::Signal, a, bogus),
            Err(ArchError::UnknownComponent(bogus))
        );
    }

    #[test]
    fn self_flows_rejected() {
        let (mut arch, a, _) = toy();
        assert_eq!(
            arch.add_flow("loop", FlowKind::Signal, a, a),
            Err(ArchError::SelfFlow(a))
        );
    }

    #[test]
    fn unknown_subsystem_rejected() {
        let mut arch = CppsArchitecture::new("x");
        let bogus = SubsystemId::new(7);
        assert_eq!(
            arch.add_cyber(bogus, "c"),
            Err(ArchError::UnknownSubsystem(bogus))
        );
    }

    #[test]
    fn components_in_filters_by_subsystem() {
        let mut arch = CppsArchitecture::new("two");
        let s1 = arch.add_subsystem("one");
        let s2 = arch.add_subsystem("two");
        let _ = arch.add_cyber(s1, "a").unwrap();
        let _ = arch.add_cyber(s2, "b").unwrap();
        let _ = arch.add_physical(s1, "c").unwrap();
        let in1: Vec<&str> = arch.components_in(s1).iter().map(|c| c.name()).collect();
        assert_eq!(in1, vec!["a", "c"]);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ArchError::SelfFlow(ComponentId::new(4));
        assert!(e.to_string().contains("n4"));
    }

    #[test]
    fn flow_accessors() {
        let (mut arch, a, b) = toy();
        let f = arch.add_flow("sig", FlowKind::Signal, a, b).unwrap();
        let flow = arch.flow(f).unwrap();
        assert_eq!(flow.from(), a);
        assert_eq!(flow.to(), b);
        assert_eq!(flow.kind(), FlowKind::Signal);
        assert_eq!(flow.name(), "sig");
    }
}
