//! Experiment harness shared by the figure/table reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the index); this library holds the common
//! setup — simulate the case-study workload, build the side-channel
//! dataset, train the flow-pair CGAN — and small printing/serialization
//! helpers so the binaries stay declarative.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use gansec::{SecurityModel, SideChannelDataset};
use gansec_amsim::{calibration_pattern, ConditionEncoding, PrinterSim, SimulationTrace};
use gansec_dsp::FrequencyBins;

/// Analysis frame length used across experiments (samples).
pub const FRAME_LEN: usize = 1024;
/// Frame hop used across experiments (samples).
pub const HOP: usize = 512;

/// Experiment sizing, overridable from the environment:
/// `GANSEC_SCALE=paper` selects the full 100-bin configuration, anything
/// else (or unset) the fast CI-friendly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 48 bins, 6 moves/axis, 800 iterations — minutes on a laptop.
    Fast,
    /// The paper's 100 bins, 10 moves/axis, 2000 iterations.
    Paper,
}

impl Scale {
    /// Reads `GANSEC_SCALE` from the environment.
    pub fn from_env() -> Self {
        match std::env::var("GANSEC_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Fast,
        }
    }

    /// Number of frequency bins.
    pub fn n_bins(self) -> usize {
        match self {
            Scale::Fast => 48,
            Scale::Paper => 100,
        }
    }

    /// Calibration moves per axis.
    pub fn moves_per_axis(self) -> usize {
        match self {
            Scale::Fast => 6,
            Scale::Paper => 10,
        }
    }

    /// Algorithm 2 iterations.
    pub fn train_iterations(self) -> usize {
        match self {
            Scale::Fast => 800,
            Scale::Paper => 2000,
        }
    }

    /// Generated samples per condition in Algorithm 3.
    pub fn gsize(self) -> usize {
        match self {
            Scale::Fast => 300,
            Scale::Paper => 500,
        }
    }

    /// The frequency binning.
    pub fn bins(self) -> FrequencyBins {
        FrequencyBins::log_spaced(self.n_bins(), 50.0, 5000.0)
    }
}

/// The common experiment setup: simulated trace, train/test datasets.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// The captured trace.
    pub trace: SimulationTrace,
    /// Training frames.
    pub train: SideChannelDataset,
    /// Held-out frames for Algorithm 3.
    pub test: SideChannelDataset,
    /// The scale the study was built at.
    pub scale: Scale,
}

impl CaseStudy {
    /// Simulates the calibration workload and builds the datasets.
    ///
    /// # Panics
    ///
    /// Panics if the workload is too short to frame (cannot happen at
    /// the provided scales).
    pub fn build(scale: Scale, seed: u64) -> Self {
        Self::build_with_encoding(scale, seed, ConditionEncoding::Simple3)
    }

    /// Like [`CaseStudy::build`] with an explicit condition encoding.
    ///
    /// # Panics
    ///
    /// See [`CaseStudy::build`].
    pub fn build_with_encoding(scale: Scale, seed: u64, encoding: ConditionEncoding) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let sim = PrinterSim::printrbot_class();
        let trace = sim.run(&calibration_pattern(scale.moves_per_axis()), &mut rng);
        let dataset =
            SideChannelDataset::from_trace(&trace, scale.bins(), FRAME_LEN, HOP, encoding)
                .expect("calibration workload always frames");
        let (train, test) = dataset.split_even_odd();
        Self {
            trace,
            train,
            test,
            scale,
        }
    }

    /// Trains a fresh CGAN on the training split for the study's scale.
    ///
    /// # Panics
    ///
    /// Panics if training diverges (stable at the provided scales).
    pub fn train_model(&self, seed: u64) -> SecurityModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = SecurityModel::for_dataset(&self.train, &mut rng);
        model
            .train(&self.train, self.scale.train_iterations(), &mut rng)
            .expect("training is stable at bench scales");
        model
    }
}

/// Writes `value` as pretty JSON under `bench_results/<name>.json`
/// (creating the directory), so every figure/table also exists in
/// machine-readable form. Errors are printed, not fatal — the textual
/// output on stdout is the primary artifact.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("bench_results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("(saved {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Renders a fixed-width ASCII sparkline of `values` (for loss curves in
/// terminal output).
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|&v| {
            let t = ((v - lo) / span * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[t.min(GLYPHS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_case_study_builds() {
        let cs = CaseStudy::build(Scale::Fast, 1);
        assert!(cs.train.len() > 50);
        assert!(cs.test.len() > 50);
        assert_eq!(cs.train.n_features(), 48);
    }

    #[test]
    fn sparkline_renders() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn scale_env_default_is_fast() {
        assert_eq!(Scale::from_env(), Scale::Fast);
    }
}
