//! Ablation A2: the paper's literal minimax generator loss (Algorithm 2
//! line 10 descends `log(1 - D(G(z|c)))`) against the non-saturating
//! variant standard in GAN practice.
//!
//! Expected: the minimax generator receives vanishing gradients while D
//! is confident (early training), so its reported loss stays high
//! longer; the non-saturating variant converges faster to the same
//! equilibrium. This quantifies a design choice the paper leaves
//! implicit.

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec::{LikelihoodAnalysis, SecurityModel};
use gansec_bench::{sparkline, CaseStudy, Scale};
use gansec_gan::{CganConfig, GeneratorLoss};

fn main() {
    let scale = Scale::from_env();
    println!("== Ablation A2: minimax vs non-saturating generator loss ==\n");

    let study = CaseStudy::build(scale, 42);
    let mut results = Vec::new();
    for (name, loss) in [
        ("minimax (paper)", GeneratorLoss::Minimax),
        ("non-saturating", GeneratorLoss::NonSaturating),
    ] {
        let mut rng = StdRng::seed_from_u64(2);
        let config = CganConfig::builder(study.train.n_features(), 3)
            .generator_loss(loss)
            .build();
        let mut model = SecurityModel::new(config, study.train.encoding(), &mut rng);
        model
            .train(&study.train, scale.train_iterations(), &mut rng)
            .expect("training is stable at bench scales");

        let g: Vec<f64> = model
            .history()
            .downsample(24)
            .iter()
            .map(|r| r.g_loss)
            .collect();
        let top = study.train.top_feature_indices(3);
        let report =
            LikelihoodAnalysis::new(0.2, scale.gsize(), top).analyze(&model, &study.test, &mut rng);
        let early_g: f64 = g[..4].iter().sum::<f64>() / 4.0;
        let late_g = model.history().final_g_loss(scale.train_iterations() / 10);
        println!("{name}:");
        println!("  G loss curve {}", sparkline(&g));
        println!("  G loss early {early_g:.3} -> late {late_g:.3}");
        println!(
            "  mean Cor {:.4}  mean Inc {:.4}  margin {:+.4}\n",
            report.mean_cor(),
            report.mean_inc(),
            report.mean_cor() - report.mean_inc()
        );
        results.push(serde_json::json!({
            "loss": name,
            "early_g": early_g,
            "late_g": late_g,
            "mean_cor": report.mean_cor(),
            "mean_inc": report.mean_inc(),
        }));
    }
    gansec_bench::save_json("ablation_genloss", &results);
}
