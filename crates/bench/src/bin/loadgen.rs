//! Serving-layer load generator: seals a pinned-seed model bundle,
//! starts an in-process `gansec-serve` server on an ephemeral port, and
//! hammers `POST /v1/score` with closed-loop clients, writing
//! `BENCH_serve.json` (throughput, p50/p99 latency) so the serving
//! layer enters the perf trajectory next to `BENCH_pipeline.json`.
//!
//! Scale comes from `GANSEC_SCALE` like every other bench binary
//! (`paper` for the full configuration, anything else the fast one);
//! the load shape is overridable from the environment too:
//! `LOADGEN_CLIENTS`, `LOADGEN_REQUESTS` (per client), `LOADGEN_FRAMES`
//! (per request), `LOADGEN_RETRIES` (`503` retries per request), and
//! `LOADGEN_OUT` for the report path.

use gansec::{GanSecPipeline, PipelineConfig};
use gansec_bench::Scale;
use gansec_engine::ScoringEngine;
use gansec_serve::loadgen::{self, LoadgenOptions};
use gansec_serve::{ServeConfig, Server};

/// Pinned seed: every run of the same binary benches the same workload.
const BENCH_SEED: u64 = 42;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = Scale::from_env();
    let mut cfg = PipelineConfig::smoke_test();
    if scale == Scale::Paper {
        cfg = PipelineConfig::paper_scale();
    }
    let opts = LoadgenOptions {
        clients: env_usize("LOADGEN_CLIENTS", 4),
        requests_per_client: env_usize("LOADGEN_REQUESTS", 100),
        frames_per_request: env_usize("LOADGEN_FRAMES", 16),
        max_retries: env_usize("LOADGEN_RETRIES", 4) as u32,
    };
    let out = std::env::var("LOADGEN_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());

    eprintln!("training a pinned-seed bundle ({scale:?} scale)...");
    let stage = GanSecPipeline::new(cfg)
        .train_stage(BENCH_SEED)
        .expect("training is stable at bench scales");
    let engine = ScoringEngine::from_bundle(stage.to_bundle());

    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServeConfig::default()
        },
        ScoringEngine::from_bundle(stage.to_bundle()),
        "loadgen-in-process",
    )
    .expect("ephemeral bind");
    eprintln!(
        "serving on http://{}; {} clients x {} requests x {} frames",
        server.addr(),
        opts.clients,
        opts.requests_per_client,
        opts.frames_per_request
    );

    let outcome = loadgen::run(server.addr(), &engine, &opts);
    server.shutdown();
    let report = outcome.expect("load run completes");

    println!(
        "{} ok / {} rejected / {} failed ({} retries); {:.0} frames/s; p50 {:.3} ms, p99 {:.3} ms",
        report.ok_requests,
        report.rejected_requests,
        report.failed_requests,
        report.retries,
        report.throughput_fps,
        report.p50_ms,
        report.p99_ms
    );
    let json = report.to_json(&opts);
    std::fs::write(&out, format!("{json}\n")).expect("write report");
    eprintln!("(saved {out})");
}
