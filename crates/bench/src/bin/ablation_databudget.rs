//! Ablation A3: attacker data budget.
//!
//! §III: "The amount of data given for training can also be modified
//! according to the attacker capability or attack detection model's
//! resources". The sweep trains the CGAN on shrinking fractions of the
//! captured pair data and reports the leakage estimate an attacker with
//! that budget would obtain, next to the direct-KDE baseline at the same
//! budget (A4's estimator).

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec::{KdeBaseline, LikelihoodAnalysis, SecurityModel};
use gansec_bench::{CaseStudy, Scale};

const FRACTIONS: [f64; 4] = [0.1, 0.25, 0.5, 1.0];

fn main() {
    let scale = Scale::from_env();
    println!("== Ablation A3: training-data budget vs leakage estimate ==\n");

    let study = CaseStudy::build(scale, 42);
    println!(
        "full training set: {} frames; held-out test: {} frames\n",
        study.train.len(),
        study.test.len()
    );
    println!(
        "{:>9}{:>9}{:>16}{:>16}{:>16}",
        "fraction", "frames", "CGAN margin", "KDE margin", "CGAN mean Cor"
    );

    let mut rows = Vec::new();
    for &frac in &FRACTIONS {
        let budget = ((study.train.len() as f64) * frac) as usize;
        let train = study.train.truncated(budget.max(8));
        let top = train.top_feature_indices(3);

        let mut rng = StdRng::seed_from_u64(3);
        let mut model = SecurityModel::for_dataset(&train, &mut rng);
        model
            .train(&train, scale.train_iterations(), &mut rng)
            .expect("training is stable at bench scales");
        let cgan_report = LikelihoodAnalysis::new(0.2, scale.gsize(), top.clone()).analyze(
            &model,
            &study.test,
            &mut rng,
        );
        let cgan_margin = cgan_report.mean_cor() - cgan_report.mean_inc();

        let kde_report = KdeBaseline::new(0.2, top).analyze(&train, &study.test);
        let kde_margin = kde_report.mean_cor() - kde_report.mean_inc();

        println!(
            "{frac:>9.2}{:>9}{cgan_margin:>16.4}{kde_margin:>16.4}{:>16.4}",
            train.len(),
            cgan_report.mean_cor()
        );
        rows.push(serde_json::json!({
            "fraction": frac,
            "frames": train.len(),
            "cgan_margin": cgan_margin,
            "kde_margin": kde_margin,
            "cgan_mean_cor": cgan_report.mean_cor(),
        }));
    }

    println!(
        "\nreading: even a fraction of the pair data yields a usable leakage\n\
         estimate — the capability knob the paper assigns to the attacker model."
    );
    gansec_bench::save_json("ablation_databudget", &rows);
}
