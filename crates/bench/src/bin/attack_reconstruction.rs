//! Extension: the concrete confidentiality attacker of §IV-D — "a CPPS
//! designer can estimate if an attacker is able to estimate the G/M-code
//! based on the acoustic emissions".
//!
//! A maximum-likelihood estimator built from the trained generator
//! classifies every emission frame to a motor condition; per-segment
//! majority voting reconstructs the executed command stream. Reported:
//! the frame-level confusion matrix and the command-level reconstruction
//! accuracy.

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec::GCodeEstimator;
use gansec_amsim::{calibration_pattern, ConditionEncoding, MotorSet, PrinterSim};
use gansec_bench::{CaseStudy, Scale, FRAME_LEN, HOP};
use gansec_dsp::{FeatureExtractor, ScalingKind};

fn main() {
    let scale = Scale::from_env();
    println!("== Extension: G/M-code reconstruction from audio alone ==\n");

    let study = CaseStudy::build(scale, 42);
    let model = study.train_model(6);
    let mut rng = StdRng::seed_from_u64(66);
    let features = study.train.per_condition_top_features(3);
    let estimator = GCodeEstimator::fit(&model, 0.2, scale.gsize(), features, &mut rng);

    // Frame-level: held-out frames, attacker sees features only.
    let confusion = estimator.evaluate(&study.test);
    println!("frame-level reconstruction (held-out frames):");
    println!("  accuracy: {:.3} (chance = 0.333)", confusion.accuracy());
    println!("  confusion (rows = actual, cols = predicted):");
    let names = ["X", "Y", "Z"];
    print!("{:>8}", "");
    for n in names {
        print!("{n:>7}");
    }
    println!("{:>9}{:>9}", "recall", "prec");
    for (i, n) in names.iter().enumerate() {
        print!("{n:>8}");
        for j in 0..3 {
            print!("{:>7}", confusion.counts()[i][j]);
        }
        println!(
            "{:>9.3}{:>9.3}",
            confusion.recall(i),
            confusion.precision(i)
        );
    }

    // Command-level: fresh trace, majority vote per executed segment.
    println!("\ncommand-level reconstruction (fresh trace, majority vote per move):");
    let sim = PrinterSim::printrbot_class();
    let trace = sim.run(&calibration_pattern(scale.moves_per_axis()), &mut rng);
    let extractor = FeatureExtractor::new(scale.bins(), FRAME_LEN, HOP, ScalingKind::None);
    let mut correct = 0usize;
    let mut total = 0usize;
    for (i, rec) in trace.segments.iter().enumerate() {
        let Some(truth) = ConditionEncoding::Simple3.encode(rec.motors) else {
            continue;
        };
        let mut fm = extractor.extract(trace.segment_audio(i), trace.sample_rate);
        study.train.apply_scale(&mut fm);
        if fm.n_rows() == 0 {
            continue;
        }
        let preds: Vec<usize> = fm
            .rows()
            .iter()
            .map(|row| estimator.classify_frame(row))
            .collect();
        let voted = estimator.majority_vote(&preds).expect("nonempty frames");
        let truth_idx = truth.iter().position(|&v| v == 1.0).expect("one-hot");
        total += 1;
        if voted == truth_idx {
            correct += 1;
        }
    }
    let cmd_acc = correct as f64 / total.max(1) as f64;
    println!("  {correct}/{total} moves reconstructed correctly ({cmd_acc:.3})");

    let verdict = if cmd_acc > 0.9 {
        "the G/M-code stream is effectively public to a microphone"
    } else if cmd_acc > 0.5 {
        "partial leakage: an attacker recovers most of the command stream"
    } else {
        "leakage below practical reconstruction threshold"
    };
    println!("\nverdict: {verdict}.");

    // Show the decoded motor names the estimator uses.
    for ci in 0..estimator.n_conditions() {
        let m = estimator.motor(ci).map(|m: MotorSet| m.to_string());
        println!("  condition {ci} = motor {}", m.unwrap_or_default());
    }

    gansec_bench::save_json(
        "attack_reconstruction",
        &serde_json::json!({
            "frame_accuracy": confusion.accuracy(),
            "command_accuracy": cmd_acc,
            "confusion": confusion.counts(),
        }),
    );
}
