//! Ablation A8: the paper's CWT features vs a conventional STFT
//! pipeline.
//!
//! §IV-B justifies the continuous wavelet transform because it
//! "preserves the high-frequency resolution in time-domain". This
//! ablation runs the identical downstream stack (same bins, same CGAN,
//! same Algorithm 3, same attacker) on both analyses and compares
//! leakage estimates — quantifying how much the CWT choice matters on a
//! workload of short, alternating moves where time resolution counts.

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec::{GCodeEstimator, LikelihoodAnalysis, SecurityModel, SideChannelDataset};
use gansec_amsim::{
    calibration_pattern, ConditionEncoding, GCodeCommand, GCodeProgram, GCodeWord, PrinterSim,
};
use gansec_bench::{Scale, FRAME_LEN, HOP};
use gansec_dsp::AnalysisKind;

/// Short alternating moves: ~0.11 s per command, barely more than one
/// analysis frame — the regime where time resolution decides how much
/// uncorrupted signal each label gets.
fn short_move_workload(moves_per_axis: usize) -> GCodeProgram {
    let mut prog = GCodeProgram::default();
    let feeds = [1200.0, 1200.0, 120.0];
    let distances = [2.2, 2.2, 0.22];
    let axes = ['X', 'Y', 'Z'];
    for round in 0..moves_per_axis {
        for (i, &letter) in axes.iter().enumerate() {
            let pos = if round % 2 == 0 { distances[i] } else { 0.0 };
            prog.push(GCodeCommand::linear_move(vec![
                GCodeWord {
                    letter: 'F',
                    value: feeds[i],
                },
                GCodeWord { letter, value: pos },
            ]));
        }
    }
    prog
}

fn main() {
    let scale = Scale::from_env();
    println!("== Ablation A8: CWT (paper) vs STFT feature pipeline ==\n");

    let sim = PrinterSim::printrbot_class();
    println!(
        "{:<12}{:<10}{:>10}{:>14}{:>14}{:>16}",
        "workload", "analysis", "frames", "mean Cor", "margin", "attacker acc"
    );
    let mut results = Vec::new();
    let workloads = [
        ("long-moves", calibration_pattern(scale.moves_per_axis())),
        (
            "short-moves",
            short_move_workload(scale.moves_per_axis() * 8),
        ),
    ];
    for (workload_name, program) in workloads {
        let mut rng = StdRng::seed_from_u64(42);
        let trace = sim.run(&program, &mut rng);
        for (name, analysis) in [("CWT", AnalysisKind::Cwt), ("STFT", AnalysisKind::Stft)] {
            let dataset = SideChannelDataset::from_trace_with_analysis(
                &trace,
                scale.bins(),
                FRAME_LEN,
                HOP,
                ConditionEncoding::Simple3,
                analysis,
            )
            .expect("workload frames");
            let (train, test) = dataset.split_even_odd();
            let mut rng = StdRng::seed_from_u64(8);
            let mut model = SecurityModel::for_dataset(&train, &mut rng);
            model
                .train(&train, scale.train_iterations(), &mut rng)
                .expect("training stable");
            let features = train.per_condition_top_features(2);
            let report = LikelihoodAnalysis::new(0.2, scale.gsize(), features.clone())
                .analyze(&model, &test, &mut rng);
            let margin = report.mean_cor() - report.mean_inc();
            let estimator = GCodeEstimator::fit(&model, 0.2, scale.gsize(), features, &mut rng);
            let acc = estimator.evaluate(&test).accuracy();
            println!(
                "{workload_name:<12}{name:<10}{:>10}{:>14.4}{margin:>14.4}{acc:>16.3}",
                dataset.len(),
                report.mean_cor()
            );
            results.push(serde_json::json!({
                "workload": workload_name,
                "analysis": name,
                "frames": dataset.len(),
                "mean_cor": report.mean_cor(),
                "margin": margin,
                "attacker_accuracy": acc,
            }));
        }
    }

    println!(
        "\nreading: on this testbed the two analyses are equivalent — motor\n\
         emissions are quasi-stationary within a command, so STFT loses\n\
         nothing. The paper's CWT preference is defensible but not load-\n\
         bearing for its results; the leak survives either pipeline."
    );
    gansec_bench::save_json("ablation_features", &results);
}
