//! Ablation A1: the paper's 3-way single-motor encoding vs the proposed
//! `2^3 = 8`-way combination encoding (§IV-B: "the one-hot encoding can
//! be of size 2^3 = 8").
//!
//! Workload: a mixed program containing single- and multi-axis moves.
//! The 3-way encoding can only train on the single-motor subset; the
//! 8-way encoding uses everything. Reported: usable training frames and
//! the mean leakage margin over the conditions each encoding can see.

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec::{LikelihoodAnalysis, SecurityModel, SideChannelDataset};
use gansec_amsim::{mixed_axis_program, ConditionEncoding, PrinterSim};
use gansec_bench::{Scale, FRAME_LEN, HOP};

fn main() {
    let scale = Scale::from_env();
    println!("== Ablation A1: condition encoding (3-way vs 2^3) ==\n");

    let sim = PrinterSim::printrbot_class();
    let mut rng = StdRng::seed_from_u64(42);
    let program = mixed_axis_program(if scale == Scale::Paper { 160 } else { 80 }, &mut rng);
    let trace = sim.run(&program, &mut rng);
    println!(
        "mixed workload: {} commands, {:.1} s of audio\n",
        program.len(),
        trace.duration_s()
    );

    println!(
        "{:<16}{:>10}{:>12}{:>14}{:>14}",
        "encoding", "frames", "conditions", "mean Cor", "mean margin"
    );
    let mut results = Vec::new();
    for encoding in [ConditionEncoding::Simple3, ConditionEncoding::Combination8] {
        let Ok(dataset) =
            SideChannelDataset::from_trace(&trace, scale.bins(), FRAME_LEN, HOP, encoding)
        else {
            println!("{encoding:?}: no usable frames");
            continue;
        };
        let (train, test) = dataset.split_even_odd();
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = SecurityModel::for_dataset(&train, &mut rng);
        model
            .train(&train, scale.train_iterations(), &mut rng)
            .expect("training is stable at bench scales");
        let top = train.top_feature_indices(3);
        let report =
            LikelihoodAnalysis::new(0.2, scale.gsize(), top).analyze(&model, &test, &mut rng);
        // Only score conditions that actually occur in the test data.
        let seen: Vec<&gansec::ConditionLikelihood> = report
            .conditions
            .iter()
            .filter(|c| {
                (0..test.len()).any(|i| {
                    test.conds()
                        .row(i)
                        .iter()
                        .zip(&c.condition)
                        .all(|(&a, &b)| (a - b).abs() < 1e-9)
                })
            })
            .collect();
        let mean_cor = seen.iter().map(|c| c.mean_cor()).sum::<f64>() / seen.len().max(1) as f64;
        let mean_margin = seen.iter().map(|c| c.margin()).sum::<f64>() / seen.len().max(1) as f64;
        let name = match encoding {
            ConditionEncoding::Simple3 => "Simple3",
            ConditionEncoding::Combination8 => "Combination8",
        };
        println!(
            "{name:<16}{:>10}{:>12}{:>14.4}{:>14.4}",
            dataset.len(),
            seen.len(),
            mean_cor,
            mean_margin
        );
        results.push(serde_json::json!({
            "encoding": name,
            "frames": dataset.len(),
            "conditions_seen": seen.len(),
            "mean_cor": mean_cor,
            "mean_margin": mean_margin,
        }));
    }

    println!(
        "\nreading: the 8-way encoding turns the multi-axis moves the 3-way\n\
         encoding must discard into usable training data, at the cost of a\n\
         larger condition space per sample budget."
    );
    gansec_bench::save_json("ablation_encoding", &results);
}
