//! Figure 6: `G_CPPS` generation for the additive-manufacturing system.
//!
//! Prints the Algorithm 1 outputs for the printer architecture — node and
//! flow inventory, the candidate / cross-domain / with-data flow-pair
//! lists — and emits the graph in Graphviz DOT form (render with
//! `dot -Tpng` to get the figure).

use gansec_amsim::printer_architecture;
use gansec_cpps::Domain;

fn main() {
    println!("== Figure 6: G_CPPS for the 3D printer ==\n");
    let pa = printer_architecture();
    let graph = pa.arch.build_graph();

    println!("components ({}):", graph.components().len());
    for c in graph.components() {
        let tag = match c.domain() {
            Domain::Cyber => "C",
            Domain::Physical => "P",
        };
        println!("  [{tag}] {} = {}", c.id(), c.name());
    }

    println!("\nflows ({}):", graph.flows().len());
    for f in graph.flows() {
        println!(
            "  {} : {} -> {}  [{}]{}",
            f.name(),
            f.from(),
            f.to(),
            f.kind(),
            if graph.is_kept(f.id()) {
                ""
            } else {
                "  (feedback, removed)"
            }
        );
    }

    let candidates = graph.candidate_flow_pairs();
    let cross = graph.cross_domain_pairs();
    let with_data = graph.flow_pairs_with_data(|p| {
        p.from == pa.gcode_flow && pa.acoustic_flows[..3].contains(&p.to)
    });
    println!("\nAlgorithm 1 pair extraction:");
    println!(
        "  candidate pairs (reachability-pruned) : {}",
        candidates.len()
    );
    println!("  cross-domain pairs (signal<->energy)  : {}", cross.len());
    println!(
        "  pairs with historical data (FP_T)     : {}",
        with_data.len()
    );
    for p in with_data.iter() {
        let from = graph.flow(p.from).expect("listed pair");
        let to = graph.flow(p.to).expect("listed pair");
        println!("    {} -> {}", from.name(), to.name());
        if let Some(route) = graph.explain_pair(p) {
            let names: Vec<&str> = route
                .iter()
                .map(|&f| graph.flow(f).expect("routed flow").name())
                .collect();
            println!("      leakage route: {}", names.join(" => "));
        }
    }

    println!("\nGraphviz DOT (pipe through `dot -Tpng -o fig6.png`):\n");
    println!("{}", graph.to_dot(&pa.arch));

    gansec_bench::save_json(
        "fig6_graph",
        &serde_json::json!({
            "components": graph.components().len(),
            "flows": graph.flows().len(),
            "candidate_pairs": candidates.len(),
            "cross_domain_pairs": cross.len(),
            "pairs_with_data": with_data.len(),
        }),
    );
}
