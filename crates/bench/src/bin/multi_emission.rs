//! Extension: leakage from **multiple physical emissions** — the exact
//! framing of the paper's case-study contribution (§I-C: "analyzing
//! information leakage from multiple physical emissions in a single
//! sub-system").
//!
//! Two observation points of the printer's energy flows are compared:
//! the contact microphone (flat transfer), a frame accelerometer
//! (low-frequency mechanical path), and their fusion. For each, the same
//! CGAN pipeline is trained and the attacker's reconstruction accuracy
//! plus Algorithm 3 margins are reported, per condition.

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec::{
    EmissionChannel, GCodeEstimator, LikelihoodAnalysis, SecurityModel, SideChannelDataset,
};
use gansec_amsim::{calibration_pattern, ConditionEncoding, PrinterSim};
use gansec_bench::{Scale, FRAME_LEN, HOP};
use gansec_dsp::AnalysisKind;

fn main() {
    let scale = Scale::from_env();
    println!("== Extension: multiple physical emissions ==\n");

    let sim = PrinterSim::printrbot_class();
    let mut rng = StdRng::seed_from_u64(42);
    let trace = sim.run(&calibration_pattern(scale.moves_per_axis()), &mut rng);

    println!(
        "{:<12}{:>8}{:>10}{:>14}{:>14}{:>14}{:>14}",
        "channel", "width", "frames", "margin X", "margin Y", "margin Z", "attacker acc"
    );
    let mut results = Vec::new();
    for (name, channel) in [
        ("acoustic", EmissionChannel::Acoustic),
        ("vibration", EmissionChannel::Vibration),
        ("fused", EmissionChannel::Fused),
    ] {
        let dataset = SideChannelDataset::from_trace_channel(
            &trace,
            scale.bins(),
            FRAME_LEN,
            HOP,
            ConditionEncoding::Simple3,
            AnalysisKind::Cwt,
            channel,
        )
        .expect("calibration frames");
        let (train, test) = dataset.split_even_odd();
        let mut rng = StdRng::seed_from_u64(13);
        let mut model = SecurityModel::for_dataset(&train, &mut rng);
        model
            .train(&train, scale.train_iterations(), &mut rng)
            .expect("training stable");
        let features = train.per_condition_top_features(2);
        let report = LikelihoodAnalysis::new(0.2, scale.gsize(), features.clone())
            .analyze(&model, &test, &mut rng);
        let margins: Vec<f64> = report.conditions.iter().map(|c| c.margin()).collect();
        let estimator = GCodeEstimator::fit(&model, 0.2, scale.gsize(), features, &mut rng);
        let acc = estimator.evaluate(&test).accuracy();
        println!(
            "{name:<12}{:>8}{:>10}{:>14.4}{:>14.4}{:>14.4}{acc:>14.3}",
            dataset.n_features(),
            dataset.len(),
            margins[0],
            margins[1],
            margins[2],
        );
        results.push(serde_json::json!({
            "channel": name,
            "width": dataset.n_features(),
            "margins": margins,
            "attacker_accuracy": acc,
        }));
    }

    println!(
        "\nreading: the vibration path attenuates the high band, dulling Z's\n\
         signature, yet still leaks; fusing both observation points gives\n\
         the attacker the union of the evidence. Securing one emission is\n\
         not securing the system — the multi-flow premise of Figure 1."
    );
    gansec_bench::save_json("multi_emission", &results);
}
