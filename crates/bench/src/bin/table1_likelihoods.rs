//! Table I: average correct (Cor) and incorrect (Inc) likelihood of the
//! acoustic energy flow given each condition, for Parzen widths
//! `h in {0.2, 0.4, 0.6, 0.8, 1.0}`, on a single frequency feature.
//!
//! Shape criteria from the paper (absolute values depend on the
//! simulated testbed):
//! * Cor > Inc for every condition at every `h`;
//! * the Cor-Inc gap narrows as `h` grows (wider kernels blur the
//!   conditional structure);
//! * `Cond3` (Z motor) attains the highest correct likelihood; `Cond2`
//!   (Y) the lowest.

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec::{LikelihoodAnalysis, TableOneRow};
use gansec_amsim::ConditionEncoding;
use gansec_bench::{CaseStudy, Scale};

const H_VALUES: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

/// The paper's published Table I, for side-by-side comparison.
const PAPER: [(&str, [(f64, f64); 5]); 3] = [
    (
        "Cond1",
        [
            (0.6000, 0.2245),
            (0.6000, 0.3247),
            (0.6069, 0.3634),
            (0.6293, 0.3783),
            (0.6437, 0.3856),
        ],
    ),
    (
        "Cond2",
        [
            (0.5750, 0.3887),
            (0.5750, 0.3961),
            (0.5750, 0.3974),
            (0.5750, 0.3982),
            (0.5532, 0.3978),
        ],
    ),
    (
        "Cond3",
        [
            (0.6556, 0.3876),
            (0.6556, 0.3956),
            (0.6556, 0.3979),
            (0.6601, 0.3983),
            (0.6556, 0.3985),
        ],
    ),
];

fn main() {
    let scale = Scale::from_env();
    println!("== Table I: Cor/Inc likelihoods over Parzen widths (scale: {scale:?}) ==\n");

    // The ceiling-saturated Cor values make single-run orderings a coin
    // flip at the fourth decimal; averaging a few independently seeded
    // runs (train + analyze) gives the stable ordering the paper reports.
    const SEEDS: [u64; 5] = [1, 2, 3, 5, 8];
    let study = CaseStudy::build(scale, 42);

    // "a single feature in the frequency domain": the paper picks an
    // informative bin per analysis. We take each condition's two most
    // variant bins (union), so every motor's signature band contributes.
    let top = study.train.per_condition_top_features(2);
    println!(
        "features analyzed: bins {:?} (centers {:?} Hz); {} seeds averaged\n",
        top,
        top.iter()
            .map(|&i| study.train.bins().centers()[i].round())
            .collect::<Vec<_>>(),
        SEEDS.len()
    );

    // acc[ci][hi] = (sum_cor, sum_inc)
    let mut acc = vec![vec![(0.0f64, 0.0f64); H_VALUES.len()]; 3];
    let mut motors = [None; 3];
    for &seed in &SEEDS {
        let model = study.train_model(seed);
        let mut rng = StdRng::seed_from_u64(seed * 31 + 11);
        for (hi, &h) in H_VALUES.iter().enumerate() {
            let report = LikelihoodAnalysis::new(h, scale.gsize(), top.clone()).analyze(
                &model,
                &study.test,
                &mut rng,
            );
            for c in &report.conditions {
                motors[c.condition_index] = c.motor;
                acc[c.condition_index][hi].0 += c.mean_cor();
                acc[c.condition_index][hi].1 += c.mean_inc();
            }
        }
    }
    let n = SEEDS.len() as f64;
    let rows: Vec<TableOneRow> = (0..3)
        .map(|ci| TableOneRow {
            condition_index: ci,
            motor: motors[ci],
            cells: H_VALUES
                .iter()
                .enumerate()
                .map(|(hi, &h)| (h, acc[ci][hi].0 / n, acc[ci][hi].1 / n))
                .collect(),
        })
        .collect();

    println!("measured:");
    println!("{}", TableOneRow::format_table(&rows));

    println!("paper (for shape comparison):");
    let paper_rows: Vec<TableOneRow> = PAPER
        .iter()
        .enumerate()
        .map(|(ci, (_, cells))| TableOneRow {
            condition_index: ci,
            motor: ConditionEncoding::Simple3
                .decode(&ConditionEncoding::Simple3.all_conditions()[ci]),
            cells: H_VALUES
                .iter()
                .zip(cells.iter())
                .map(|(&h, &(cor, inc))| (h, cor, inc))
                .collect(),
        })
        .collect();
    println!("{}", TableOneRow::format_table(&paper_rows));

    // Shape checks.
    println!("shape checks:");
    let mut all_cor_beat_inc = true;
    for row in &rows {
        for &(_, cor, inc) in &row.cells {
            if cor <= inc {
                all_cor_beat_inc = false;
            }
        }
    }
    println!(
        "  Cor > Inc for every condition and h : {}",
        if all_cor_beat_inc {
            "yes (matches paper)"
        } else {
            "NO"
        }
    );
    let gap = |row: &TableOneRow, k: usize| row.cells[k].1 - row.cells[k].2;
    let gaps_narrow = rows
        .iter()
        .all(|r| gap(r, 0) >= gap(r, H_VALUES.len() - 1) - 1e-9);
    println!(
        "  Cor-Inc gap narrows as h grows      : {}",
        if gaps_narrow {
            "yes (matches paper)"
        } else {
            "NO"
        }
    );
    let mean_cor =
        |r: &TableOneRow| r.cells.iter().map(|c| c.1).sum::<f64>() / r.cells.len() as f64;
    let (c1, c2, c3) = (mean_cor(&rows[0]), mean_cor(&rows[1]), mean_cor(&rows[2]));
    println!(
        "  Cond3 highest Cor ({c3:.4} vs {c1:.4}/{c2:.4}) : {}",
        if c3 >= c1 && c3 >= c2 {
            "yes (matches paper)"
        } else {
            "NO (feature-choice dependent)"
        }
    );
    println!(
        "  Cond2 lowest Cor                     : {}",
        if c2 <= c1 && c2 <= c3 {
            "yes (matches paper)"
        } else {
            "NO (feature-choice dependent)"
        }
    );

    gansec_bench::save_json("table1_likelihoods", &rows);
}
