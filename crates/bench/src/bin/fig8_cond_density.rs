//! Figure 8: conditional probability distributions of the acoustic
//! feature, estimated by the trained generator (Parzen `h = 0.2`).
//!
//! For each condition (X/Y/Z motor), the generator is sampled and a
//! Gaussian Parzen window fitted to the top feature; the density is
//! printed over the `[0, 1]` magnitude grid. The paper's figure shows
//! per-condition densities with distinct modes — the separation between
//! the three curves is the leaked information.

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec_amsim::ConditionEncoding;
use gansec_bench::{sparkline, CaseStudy, Scale};
use gansec_stats::ParzenWindow;

const H: f64 = 0.2;
const GRID: usize = 41;

fn main() {
    let scale = Scale::from_env();
    println!("== Figure 8: conditional density of the acoustic feature (h = {H}) ==\n");

    let study = CaseStudy::build(scale, 42);
    let model = study.train_model(8);
    let mut rng = StdRng::seed_from_u64(88);

    let ft = study.train.top_feature_indices(1)[0];
    println!(
        "feature: bin {ft} (center {:.0} Hz), grid of {GRID} points over [0, 1]\n",
        study.train.bins().centers()[ft]
    );

    let mut series = Vec::new();
    for (ci, cond) in ConditionEncoding::Simple3
        .all_conditions()
        .into_iter()
        .enumerate()
    {
        let motor = ConditionEncoding::Simple3
            .decode(&cond)
            .expect("valid one-hot");
        let generated = model
            .generate_for_condition(&cond, scale.gsize(), &mut rng)
            .expect("width fixed by encoding");
        let kde = ParzenWindow::fit(&generated.col(ft), H).expect("nonempty generation");
        let density: Vec<f64> = (0..GRID)
            .map(|i| {
                let x = i as f64 / (GRID - 1) as f64;
                // The paper scales the plotted probability by h.
                kde.windowed_likelihood(x)
            })
            .collect();
        let peak_at = density
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0.0, |(i, _)| i as f64 / (GRID - 1) as f64);
        println!(
            "Cond{} ({motor}): {}  peak at magnitude {:.2}",
            ci + 1,
            sparkline(&density),
            peak_at
        );
        series.push((format!("Cond{} ({motor})", ci + 1), density));
    }

    println!("\nnumeric densities (Pr * h, rows = magnitude grid):");
    print!("{:>6}", "x");
    for (name, _) in &series {
        print!("{name:>14}");
    }
    println!();
    for i in 0..GRID {
        let x = i as f64 / (GRID - 1) as f64;
        print!("{x:>6.3}");
        for (_, d) in &series {
            print!("{:>14.5}", d[i]);
        }
        println!();
    }

    gansec_bench::save_json(
        "fig8_cond_density",
        &serde_json::json!({
            "h": H,
            "feature_bin": ft,
            "series": series,
        }),
    );
}
