//! Figure 7: CGAN training dynamics under the paper's growing-data
//! regime.
//!
//! "On the X-axis, the iteration number is increasing. With the
//! increasing iteration, however, the more signal and energy pair data
//! are also incorporated. We can observe that initially, G's loss is
//! high, whereas D's loss is low. However, over more iterations and
//! data, the G's loss decreases, making it difficult for D to know
//! whether the data generated is real or fake, and hence increasing the
//! loss of D."
//!
//! Expected shape: G loss trends down, D loss trends up, both toward the
//! `ln 4 ~ 1.386` / `ln 2 ~ 0.693` equilibrium region.

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec::SecurityModel;
use gansec_bench::{sparkline, CaseStudy, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("== Figure 7: CGAN training losses (scale: {scale:?}) ==\n");

    let study = CaseStudy::build(scale, 42);
    let mut rng = StdRng::seed_from_u64(7);
    let mut model = SecurityModel::for_dataset(&study.train, &mut rng);

    // Growing-data regime: start with 20% of the pair data, unlock the
    // rest in equal tranches as iterations proceed.
    let total_iters = scale.train_iterations();
    let phases = 5;
    let iters_per_phase = total_iters / phases;
    for phase in 1..=phases {
        let budget = study.train.len() * phase / phases;
        let visible = study.train.truncated(budget.max(1));
        model
            .train(&visible, iters_per_phase, &mut rng)
            .expect("training is stable at bench scales");
    }

    let history = model.history();
    let points = history.downsample(24);
    println!("{:>9}  {:>8}  {:>8}", "iteration", "D loss", "G loss");
    for r in &points {
        println!("{:>9}  {:>8.4}  {:>8.4}", r.iteration, r.d_loss, r.g_loss);
    }

    let d: Vec<f64> = points.iter().map(|r| r.d_loss).collect();
    let g: Vec<f64> = points.iter().map(|r| r.g_loss).collect();
    println!("\n  D loss {}", sparkline(&d));
    println!("  G loss {}", sparkline(&g));

    let early_g: f64 = history.records()[..total_iters / 10]
        .iter()
        .map(|r| r.g_loss)
        .sum::<f64>()
        / (total_iters / 10) as f64;
    let late_g = history.final_g_loss(total_iters / 10);
    let early_d: f64 = history.records()[..total_iters / 10]
        .iter()
        .map(|r| r.d_loss)
        .sum::<f64>()
        / (total_iters / 10) as f64;
    let late_d = history.final_d_loss(total_iters / 10);
    println!("\npaper-shape check:");
    println!(
        "  G loss early {early_g:.3} -> late {late_g:.3}  ({})",
        if late_g < early_g {
            "falls, as in the paper"
        } else {
            "WARNING: did not fall"
        }
    );
    println!(
        "  D loss early {early_d:.3} -> late {late_d:.3}  ({})",
        if late_d > early_d {
            "rises, as in the paper"
        } else {
            "WARNING: did not rise"
        }
    );

    gansec_bench::save_json(
        "fig7_training",
        &serde_json::json!({
            "records": points,
            "early_g": early_g, "late_g": late_g,
            "early_d": early_d, "late_d": late_d,
        }),
    );
}
