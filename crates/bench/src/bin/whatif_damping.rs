//! Extension: design-time what-if study — the workflow §II promises
//! ("a system-level methodology for the design and analysis of CPPS").
//!
//! A designer worried about the acoustic side-channel adds mechanical
//! damping (reducing resonance gains) and/or a noisier enclosure, then
//! re-runs the GAN-Sec analysis to see how much leakage remains. This
//! binary sweeps damping levels and reports the attacker's
//! reconstruction accuracy and the Algorithm 3 margin at each design
//! point — the quantified design loop the paper motivates.

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec::{GCodeEstimator, LikelihoodAnalysis, SecurityModel, SideChannelDataset};
use gansec_amsim::{
    calibration_pattern, AcousticModel, Axis, ConditionEncoding, GCodeCommand, GCodeProgram,
    GCodeWord, Kinematics, Microphone, PrinterSim,
};
use gansec_bench::{Scale, FRAME_LEN, HOP};

/// Builds a printer whose resonance gains are scaled by `damping` (1.0 =
/// stock machine, 0.0 = perfectly damped) and whose enclosure noise floor
/// is `noise_std`.
fn damped_printer(damping: f64, noise_std: f64) -> PrinterSim {
    let mut acoustics = AcousticModel::printrbot_class();
    for axis in Axis::ALL {
        let profile = acoustics.axis_mut(axis);
        for (_, gain) in &mut profile.resonances {
            *gain *= damping;
        }
        // Damping pads also absorb harmonic energy above the fundamental.
        for amp in profile.harmonic_amps.iter_mut().skip(1) {
            *amp *= damping;
        }
    }
    PrinterSim::new(
        Kinematics::printrbot_class(),
        acoustics,
        Microphone::new(12_000.0, noise_std, 1.0),
    )
}

/// A firmware mitigation: drive every axis at the *same step frequency*
/// (1600 Hz: X/Y at 20 mm/s x 80 steps/mm, Z at 4 mm/s x 400 steps/mm),
/// removing the kinematic comb as a distinguishing feature.
fn rate_matched_workload(moves_per_axis: usize) -> GCodeProgram {
    let mut prog = GCodeProgram::default();
    let feeds = [1200.0, 1200.0, 240.0];
    let distances = [20.0, 20.0, 4.0];
    let axes = [Axis::X, Axis::Y, Axis::Z];
    for round in 0..moves_per_axis {
        for (i, axis) in axes.iter().enumerate() {
            let pos = if round % 2 == 0 { distances[i] } else { 0.0 };
            prog.push(GCodeCommand::linear_move(vec![
                GCodeWord {
                    letter: 'F',
                    value: feeds[i],
                },
                GCodeWord {
                    letter: axis.letter(),
                    value: pos,
                },
            ]));
        }
    }
    prog
}

fn main() {
    let scale = Scale::from_env();
    println!("== What-if: mechanical damping vs residual leakage ==\n");
    println!(
        "{:>9}{:>11}{:>14}{:>12}{:>14}{:>14}",
        "damping", "noise", "rate-matched", "frames", "margin", "attacker acc"
    );

    let mut rows = Vec::new();
    for &(damping, noise, rate_matched) in &[
        (1.0, 0.02, false), // stock machine, anechoic chamber
        (0.6, 0.02, false), // damping pads
        (0.3, 0.05, false), // pads + loose enclosure
        (0.1, 0.10, false), // aggressive damping + noisy shop floor
        (1.0, 0.02, true),  // firmware rate-matching only
        (0.1, 0.10, true),  // rate-matching + damping + noise
    ] {
        let sim = damped_printer(damping, noise);
        let mut rng = StdRng::seed_from_u64(42);
        let workload = if rate_matched {
            rate_matched_workload(scale.moves_per_axis())
        } else {
            calibration_pattern(scale.moves_per_axis())
        };
        let trace = sim.run(&workload, &mut rng);
        let dataset = SideChannelDataset::from_trace(
            &trace,
            scale.bins(),
            FRAME_LEN,
            HOP,
            ConditionEncoding::Simple3,
        )
        .expect("calibration frames");
        let (train, test) = dataset.split_even_odd();
        let mut model = SecurityModel::for_dataset(&train, &mut rng);
        model
            .train(&train, scale.train_iterations(), &mut rng)
            .expect("training stable");
        let features = train.per_condition_top_features(2);
        let report = LikelihoodAnalysis::new(0.2, scale.gsize(), features.clone())
            .analyze(&model, &test, &mut rng);
        let margin = report.mean_cor() - report.mean_inc();
        let estimator = GCodeEstimator::fit(&model, 0.2, scale.gsize(), features, &mut rng);
        let acc = estimator.evaluate(&test).accuracy();
        println!(
            "{damping:>9.1}{noise:>11.2}{:>14}{:>12}{margin:>14.4}{acc:>14.3}",
            if rate_matched { "yes" } else { "no" },
            dataset.len()
        );
        rows.push(serde_json::json!({
            "damping": damping,
            "noise_std": noise,
            "rate_matched": rate_matched,
            "margin": margin,
            "attacker_accuracy": acc,
        }));
    }

    println!(
        "\nreading: the same CGAN analysis that exposed the leak quantifies\n\
         each candidate mitigation before any hardware is changed — the\n\
         design-time loop of the paper's Figure 4."
    );
    gansec_bench::save_json("whatif_damping", &rows);
}
