//! Runs every figure/table/ablation experiment in sequence by spawning
//! the sibling binaries, so one command regenerates the full
//! `EXPERIMENTS.md` evidence set (and `bench_results/*.json`).
//!
//! ```sh
//! cargo run --release -p gansec-bench --bin run_all
//! GANSEC_SCALE=paper cargo run --release -p gansec-bench --bin run_all
//! ```

use std::process::Command;
use std::time::Instant;

const EXPERIMENTS: [&str; 14] = [
    "fig6_graph",
    "fig7_training",
    "fig8_cond_density",
    "fig9_likelihood_iters",
    "table1_likelihoods",
    "ablation_encoding",
    "ablation_genloss",
    "ablation_databudget",
    "baseline_kde",
    "detect_attacks",
    "attack_reconstruction",
    "whatif_damping",
    "ablation_features",
    "multi_emission",
];

fn main() {
    // Sibling binaries live next to this one.
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir").to_path_buf();

    let mut failures = Vec::new();
    let total_start = Instant::now();
    for (i, name) in EXPERIMENTS.iter().enumerate() {
        let path = bin_dir.join(name);
        println!("\n=== [{}/{}] {name} ===", i + 1, EXPERIMENTS.len());
        let start = Instant::now();
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {
                println!("--- {name} ok in {:.1}s", start.elapsed().as_secs_f64());
            }
            Ok(s) => {
                eprintln!("--- {name} FAILED with {s}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!(
                    "--- {name} could not start ({e}); build all bins first:\n    cargo build --release -p gansec-bench --bins"
                );
                failures.push(*name);
            }
        }
    }
    println!(
        "\n{} experiments in {:.1}s; {} failed{}",
        EXPERIMENTS.len(),
        total_start.elapsed().as_secs_f64(),
        failures.len(),
        if failures.is_empty() {
            String::new()
        } else {
            format!(": {failures:?}")
        }
    );
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
