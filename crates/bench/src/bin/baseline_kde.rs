//! Ablation A4: is the GAN needed? CGAN-estimated conditional densities
//! vs a Parzen window fitted directly on the real training data.
//!
//! §I motivates the GAN: the generator "never sees the real data \[and\]
//! estimates the distribution without overfitting on the currently
//! limited data". The comparison here scores both estimators on the same
//! held-out frames, at full data and at a starved 10% budget.

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec::{KdeBaseline, LikelihoodAnalysis, SecurityModel};
use gansec_bench::{CaseStudy, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("== Ablation A4: CGAN vs direct-KDE estimator ==\n");

    let study = CaseStudy::build(scale, 42);
    let mut results = Vec::new();
    for (regime, train) in [
        ("full data", study.train.clone()),
        ("10% budget", study.train.truncated(study.train.len() / 10)),
    ] {
        let top = train.top_feature_indices(3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = SecurityModel::for_dataset(&train, &mut rng);
        model
            .train(&train, scale.train_iterations(), &mut rng)
            .expect("training is stable at bench scales");
        let cgan = LikelihoodAnalysis::new(0.2, scale.gsize(), top.clone()).analyze(
            &model,
            &study.test,
            &mut rng,
        );
        let kde = KdeBaseline::new(0.2, top).analyze(&train, &study.test);

        println!("{regime} ({} frames):", train.len());
        println!(
            "{:>10}{:>12}{:>12}{:>12}",
            "", "mean Cor", "mean Inc", "margin"
        );
        println!(
            "{:>10}{:>12.4}{:>12.4}{:>12.4}",
            "CGAN",
            cgan.mean_cor(),
            cgan.mean_inc(),
            cgan.mean_cor() - cgan.mean_inc()
        );
        println!(
            "{:>10}{:>12.4}{:>12.4}{:>12.4}\n",
            "KDE",
            kde.mean_cor(),
            kde.mean_inc(),
            kde.mean_cor() - kde.mean_inc()
        );
        results.push(serde_json::json!({
            "regime": regime,
            "frames": train.len(),
            "cgan": { "cor": cgan.mean_cor(), "inc": cgan.mean_inc() },
            "kde": { "cor": kde.mean_cor(), "inc": kde.mean_inc() },
        }));
    }

    println!(
        "reading: with abundant data the estimators agree; the interesting\n\
         regime is the starved one, where the CGAN's smoothing either helps\n\
         (paper's claim) or the direct KDE's fidelity wins — the table above\n\
         quantifies it for this testbed."
    );
    gansec_bench::save_json("baseline_kde", &results);
}
