//! Figure 9: average correct and incorrect likelihood for
//! `Cond = [1, 0, 0]` (the X motor) over training iterations.
//!
//! "As it can be seen, over increasing iterations, the positive
//! likelihood averages improve. This shows that the generator is able to
//! accurately learn the conditional distribution of the acoustic
//! emissions according to the signal flows."

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec::{LikelihoodAnalysis, SecurityModel};
use gansec_bench::{sparkline, CaseStudy, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("== Figure 9: likelihoods vs training iterations, Cond=[1,0,0] ==\n");

    let study = CaseStudy::build(scale, 42);
    let mut rng = StdRng::seed_from_u64(9);
    let mut model = SecurityModel::for_dataset(&study.train, &mut rng);
    let top = study.train.top_feature_indices(1);
    let analysis = LikelihoodAnalysis::new(0.2, scale.gsize() / 2, top);

    let checkpoints = 12;
    let iters_per = (scale.train_iterations() / checkpoints).max(1);
    let trajectory = analysis
        .trajectory(
            &mut model,
            &study.train,
            &study.test,
            checkpoints,
            iters_per,
            &mut rng,
        )
        .expect("training is stable at bench scales");

    println!(
        "{:>9}  {:>12}  {:>12}",
        "iteration", "AvgCorLike", "AvgIncLike"
    );
    let mut cor_series = Vec::new();
    let mut inc_series = Vec::new();
    let mut rows = Vec::new();
    for (iters, report) in &trajectory {
        let c = &report.conditions[0]; // Cond1 = [1,0,0]
        println!(
            "{:>9}  {:>12.4}  {:>12.4}",
            iters,
            c.mean_cor(),
            c.mean_inc()
        );
        cor_series.push(c.mean_cor());
        inc_series.push(c.mean_inc());
        rows.push((iters, c.mean_cor(), c.mean_inc()));
    }
    println!("\n  Cor {}", sparkline(&cor_series));
    println!("  Inc {}", sparkline(&inc_series));

    let first = cor_series.first().copied().unwrap_or(0.0);
    let last = cor_series.last().copied().unwrap_or(0.0);
    let final_gap = last - inc_series.last().copied().unwrap_or(0.0);
    println!("\npaper-shape check:");
    println!(
        "  correct likelihood {first:.4} -> {last:.4} ({})",
        if last > first {
            "improves with iterations, as in the paper"
        } else {
            "WARNING: did not improve"
        }
    );
    println!(
        "  final Cor-Inc separation {final_gap:+.4} ({})",
        if final_gap > 0.0 {
            "correct beats incorrect"
        } else {
            "WARNING: no separation"
        }
    );

    gansec_bench::save_json(
        "fig9_likelihood_iters",
        &serde_json::json!({ "condition": [1.0, 0.0, 0.0], "rows": rows }),
    );
}
