//! Ablation A5: integrity/availability attack detection ROC (§IV-D).
//!
//! Trains the CGAN on benign executions, then scores attacked executions
//! where the cyber domain still claims the benign G/M-code: axis swap and
//! geometry scaling (integrity), axis stall and feed slowdown
//! (availability). Reports AUC, recall and false-positive rate at the
//! calibrated 5%-false-alarm threshold, per attack.

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec::{AttackDetector, SideChannelDataset};
use gansec_amsim::{
    calibration_pattern, AttackInjector, AttackKind, Axis, ConditionEncoding, GCodeProgram,
    MotorSet, PrinterSim,
};
use gansec_bench::{CaseStudy, Scale, FRAME_LEN, HOP};
use gansec_dsp::{FeatureExtractor, FeatureMatrix, ScalingKind};
use gansec_tensor::Matrix;

fn attacked_frames(
    sim: &PrinterSim,
    benign: &GCodeProgram,
    kind: AttackKind,
    reference: &SideChannelDataset,
    scale: Scale,
    rng: &mut StdRng,
) -> (Matrix, Matrix, Vec<bool>) {
    let attack = AttackInjector::new().inject(benign, kind);
    let trace = sim.run(&attack.tampered, rng);
    let benign_plan = sim.kinematics().plan(benign);
    let extractor = FeatureExtractor::new(scale.bins(), FRAME_LEN, HOP, ScalingKind::None);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut conds: Vec<Vec<f64>> = Vec::new();
    let mut tampered_frame: Vec<bool> = Vec::new();
    for (i, rec) in trace.segments.iter().enumerate() {
        let claimed = benign_plan
            .iter()
            .find(|s| s.command_index == rec.segment.command_index)
            .map_or(rec.motors, MotorSet::from_segment);
        let Some(cond) = ConditionEncoding::Simple3.encode(claimed) else {
            continue;
        };
        let affected = attack
            .affected_commands
            .contains(&rec.segment.command_index);
        let fm = extractor.extract(trace.segment_audio(i), trace.sample_rate);
        for row in fm.rows() {
            rows.push(row.clone());
            conds.push(cond.clone());
            tampered_frame.push(affected);
        }
    }
    // Availability attacks: commands the benign plan expected to actuate
    // but the attacked execution never produced. A monitor synchronized
    // to the command stream hears only the noise floor where the motor
    // should have run — score those windows under the claimed condition.
    let executed: std::collections::HashSet<usize> = trace
        .segments
        .iter()
        .map(|r| r.segment.command_index)
        .collect();
    for seg in &benign_plan {
        if executed.contains(&seg.command_index) {
            continue;
        }
        let claimed = MotorSet::from_segment(seg);
        let Some(cond) = ConditionEncoding::Simple3.encode(claimed) else {
            continue;
        };
        let n = (seg.duration_s * trace.sample_rate) as usize;
        let mut silence = vec![0.0; n];
        sim.microphone().capture(&mut silence, rng);
        let fm = extractor.extract(&silence, trace.sample_rate);
        for row in fm.rows() {
            rows.push(row.clone());
            conds.push(cond.clone());
            tampered_frame.push(true);
        }
    }
    if rows.is_empty() {
        return (
            Matrix::zeros(0, reference.n_features()),
            Matrix::zeros(0, 3),
            Vec::new(),
        );
    }
    let mut fm = FeatureMatrix::from_rows(rows);
    reference.apply_scale(&mut fm);
    let n = fm.n_rows();
    let d = fm.n_features();
    let features = Matrix::from_vec(n, d, fm.into_rows().into_iter().flatten().collect())
        .expect("rectangular rows");
    let conds =
        Matrix::from_vec(n, 3, conds.into_iter().flatten().collect()).expect("rectangular conds");
    (features, conds, tampered_frame)
}

fn main() {
    let scale = Scale::from_env();
    println!("== A5: attack detection through the acoustic side-channel ==\n");

    let study = CaseStudy::build(scale, 42);
    let model = study.train_model(5);
    let mut rng = StdRng::seed_from_u64(55);
    let top = study.train.top_feature_indices(6);
    let detector = AttackDetector::fit(
        &model,
        &study.train,
        0.2,
        scale.gsize(),
        top,
        0.05,
        &mut rng,
    );
    println!(
        "alarm threshold {:.5} (5% target false alarms)\n",
        detector.threshold()
    );

    let sim = PrinterSim::printrbot_class();
    let benign_prog = calibration_pattern(scale.moves_per_axis());
    let attacks: Vec<(&str, AttackKind)> = vec![
        (
            "swap X/Y (integrity)",
            AttackKind::SwapAxes {
                a: Axis::X,
                b: Axis::Y,
            },
        ),
        (
            "swap X/Z (integrity)",
            AttackKind::SwapAxes {
                a: Axis::X,
                b: Axis::Z,
            },
        ),
        (
            "scale X by 1.8 (integrity)",
            AttackKind::ScaleAxis {
                axis: Axis::X,
                factor: 1.8,
            },
        ),
        (
            "stall Z (availability)",
            AttackKind::StallAxis { axis: Axis::Z },
        ),
        (
            "slow feeds to 40% (availability)",
            AttackKind::SlowFeed { factor: 0.4 },
        ),
    ];

    println!(
        "{:<34}{:>8}{:>9}{:>9}{:>9}{:>9}",
        "attack", "frames", "AUC", "recall", "prec", "FPR"
    );
    let mut results = Vec::new();
    for (name, kind) in attacks {
        let (atk_features, atk_conds, atk_labels) =
            attacked_frames(&sim, &benign_prog, kind, &study.train, scale, &mut rng);
        if atk_features.rows() == 0 {
            println!("{name:<34}{:>8}", 0);
            continue;
        }
        let features = study
            .test
            .features()
            .vstack(&atk_features)
            .expect("same width");
        let conds = study.test.conds().vstack(&atk_conds).expect("same width");
        // Frame-level ground truth: only frames whose emission is
        // actually inconsistent with the claim count as attack frames.
        let mut labels = vec![false; study.test.len()];
        labels.extend(atk_labels);
        let outcome = detector.evaluate(&features, &conds, &labels);
        println!(
            "{name:<34}{:>8}{:>9.3}{:>9.3}{:>9.3}{:>9.3}",
            atk_features.rows(),
            outcome.auc,
            outcome.confusion.recall(),
            outcome.confusion.precision(),
            outcome.confusion.false_positive_rate()
        );
        results.push(serde_json::json!({
            "attack": name,
            "frames": atk_features.rows(),
            "auc": outcome.auc,
            "recall": outcome.confusion.recall(),
            "precision": outcome.confusion.precision(),
            "fpr": outcome.confusion.false_positive_rate(),
        }));
    }

    println!(
        "\nreading: axis swaps and stalls displace spectral energy and are\n\
         caught; constant-feed geometry scaling preserves per-frame spectra\n\
         and needs duration-level features — an honest limit of frame-wise\n\
         likelihood detection."
    );
    gansec_bench::save_json("detect_attacks", &results);
}
