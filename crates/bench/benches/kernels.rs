//! Criterion micro-benchmarks for the computational kernels behind the
//! experiments: FFT, CWT feature extraction, G-code parsing, Algorithm 1
//! graph generation, one CGAN training step, and Parzen scoring.

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec::{GanSecPipeline, PipelineConfig, ScoreScratch};
use gansec_amsim::{calibration_pattern, printer_architecture, Kinematics, PrinterSim};
use gansec_dsp::{
    fft_real, CwtPlan, FeatureExtractor, FrequencyBins, MorletCwt, RealFftPlan, ScalingKind,
};
use gansec_engine::ScoringEngine;
use gansec_gan::{Cgan, CganConfig, PairedData};
use gansec_stats::ParzenWindow;
use gansec_tensor::{Matrix, MatrixF32};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [1024usize, 4096, 16384] {
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        group.bench_function(format!("radix2_{n}"), |b| {
            b.iter(|| black_box(fft_real(black_box(&signal))))
        });
        // Same transform through a pre-built plan: cached twiddles and
        // the packed real-input split, amortized across iterations.
        let plan = RealFftPlan::new(n);
        group.bench_function(format!("planned_real_{n}"), |b| {
            b.iter(|| black_box(plan.forward(black_box(&signal))))
        });
    }
    // Non-power-of-two exercises the Bluestein path.
    let signal: Vec<f64> = (0..3000).map(|i| (i as f64 * 0.37).sin()).collect();
    group.bench_function("bluestein_3000", |b| {
        b.iter(|| black_box(fft_real(black_box(&signal))))
    });
    let plan = RealFftPlan::new(3000);
    group.bench_function("planned_real_3000", |b| {
        b.iter(|| black_box(plan.forward(black_box(&signal))))
    });
    group.finish();
}

/// Planned vs. unplanned CWT over a one-second trace: the unplanned
/// path re-derives daughter-wavelet spectra and twiddles per call, the
/// plan precomputes both and runs allocation-free in steady state.
fn bench_cwt_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("cwt_plan");
    group.sample_size(10);
    let fs = 12_000.0;
    let signal: Vec<f64> = (0..(fs as usize))
        .map(|i| (std::f64::consts::TAU * 1600.0 * i as f64 / fs).sin())
        .collect();
    for n_bins in [48usize, 100] {
        let freqs = FrequencyBins::log_spaced(n_bins, 50.0, 5000.0).centers();
        let cwt = MorletCwt::standard(freqs);
        group.bench_function(format!("unplanned_{n_bins}_bins"), |b| {
            b.iter(|| black_box(cwt.transform(black_box(&signal), fs)))
        });
        let plan = CwtPlan::new(&cwt, signal.len(), fs);
        group.bench_function(format!("planned_{n_bins}_bins"), |b| {
            b.iter(|| black_box(plan.transform(black_box(&signal))))
        });
    }
    group.finish();
}

fn bench_cwt_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("cwt_features");
    group.sample_size(10);
    let fs = 12_000.0;
    let signal: Vec<f64> = (0..(fs as usize))
        .map(|i| (std::f64::consts::TAU * 1600.0 * i as f64 / fs).sin())
        .collect();
    for n_bins in [48usize, 100] {
        let extractor = FeatureExtractor::new(
            FrequencyBins::log_spaced(n_bins, 50.0, 5000.0),
            1024,
            512,
            ScalingKind::MinMax,
        );
        group.bench_function(format!("1s_audio_{n_bins}_bins"), |b| {
            b.iter(|| black_box(extractor.extract(black_box(&signal), fs)))
        });
    }
    group.finish();
}

fn bench_gcode(c: &mut Criterion) {
    let mut group = c.benchmark_group("gcode");
    let program = calibration_pattern(200);
    let source = program.to_source();
    group.bench_function("parse_600_commands", |b| {
        b.iter(|| gansec_amsim::GCodeProgram::parse(black_box(&source)).expect("valid"))
    });
    let kin = Kinematics::printrbot_class();
    group.bench_function("plan_600_commands", |b| {
        b.iter(|| black_box(kin.plan(black_box(&program))))
    });
    group.finish();
}

fn bench_algorithm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1");
    let pa = printer_architecture();
    group.bench_function("graph_generation", |b| {
        b.iter(|| black_box(pa.arch.build_graph()))
    });
    let graph = pa.arch.build_graph();
    group.bench_function("flow_pair_enumeration", |b| {
        b.iter(|| black_box(graph.candidate_flow_pairs()))
    });
    group.finish();
}

fn bench_cgan_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("cgan");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(1);
    let n = 256;
    let data = Matrix::from_fn(n, 100, |r, c| ((r * 7 + c) as f64 * 0.01).sin().abs());
    let conds = Matrix::from_fn(n, 3, |r, c| if r % 3 == c { 1.0 } else { 0.0 });
    let dataset = PairedData::new(data, conds).expect("aligned");
    let config = CganConfig::paper_case_study();
    group.bench_function("train_step_100bins", |b| {
        b.iter_batched(
            || {
                (
                    Cgan::new(config.clone(), &mut rng),
                    StdRng::seed_from_u64(2),
                )
            },
            |(mut cgan, mut step_rng)| {
                black_box(
                    cgan.train_step(&dataset, &mut step_rng)
                        .expect("healthy step"),
                );
            },
            BatchSize::SmallInput,
        )
    });
    let cgan = Cgan::new(config, &mut rng);
    let gen_conds = Matrix::from_fn(100, 3, |_, c| if c == 0 { 1.0 } else { 0.0 });
    group.bench_function("generate_100_samples", |b| {
        b.iter(|| black_box(cgan.generate(black_box(&gen_conds), &mut rng)))
    });
    group.finish();
}

/// The dense/backprop matrix products at CGAN layer sizes (batch 32,
/// 103-wide conditioned input, 128-wide hidden layer): the blocked
/// kernel, the explicit transpose round-trip it replaced, and the fused
/// variants `nn::dense` now uses.
fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let (m, k, n) = (32usize, 103usize, 128usize);
    let x = Matrix::from_fn(m, k, |r, cc| ((r * k + cc) as f64 * 0.618).sin());
    let w = Matrix::from_fn(k, n, |r, cc| ((r * n + cc) as f64 * 0.414).cos());
    let g = Matrix::from_fn(m, n, |r, cc| ((r * n + cc) as f64 * 0.27).sin());

    group.bench_function("blocked_32x103x128", |b| {
        b.iter(|| black_box(black_box(&x).matmul(black_box(&w)).expect("shapes")))
    });
    group.bench_function("transpose_then_matmul", |b| {
        b.iter(|| {
            black_box(
                black_box(&x)
                    .transpose()
                    .matmul(black_box(&g))
                    .expect("shapes"),
            )
        })
    });
    group.bench_function("fused_transpose_a", |b| {
        b.iter(|| {
            black_box(
                black_box(&x)
                    .matmul_transpose_a(black_box(&g))
                    .expect("shapes"),
            )
        })
    });
    group.bench_function("fused_transpose_b", |b| {
        b.iter(|| {
            black_box(
                black_box(&g)
                    .matmul_transpose_b(black_box(&w))
                    .expect("shapes"),
            )
        })
    });
    // The narrowed mirror at the same shape: half the memory traffic
    // per element, the width-generic groundwork for the f32 fast path.
    let xf = MatrixF32::from_matrix(&x);
    let wf = MatrixF32::from_matrix(&w);
    group.bench_function("f32_blocked_32x103x128", |b| {
        b.iter(|| black_box(black_box(&xf).matmul(black_box(&wf)).expect("shapes")))
    });
    group.finish();
}

fn bench_parzen(c: &mut Criterion) {
    let mut group = c.benchmark_group("parzen");
    let samples: Vec<f64> = (0..500).map(|i| (i as f64 * 0.171).sin().abs()).collect();
    let kde = ParzenWindow::fit(&samples, 0.2).expect("nonempty");
    group.bench_function("score_500_support", |b| {
        b.iter(|| black_box(kde.log_density(black_box(0.42))))
    });
    // Batched scoring of a full held-out feature column (Algorithm 3's
    // access pattern) through the allocation-free batch entry point.
    let queries: Vec<f64> = (0..600).map(|i| (i as f64 * 0.093).cos().abs()).collect();
    group.bench_function("batched_600_queries", |b| {
        b.iter(|| black_box(kde.log_densities(black_box(&queries))))
    });
    group.bench_function("scalar_600_queries", |b| {
        b.iter(|| {
            let v: Vec<f64> = queries.iter().map(|&q| kde.log_density(q)).collect();
            black_box(v)
        })
    });
    group.finish();
}

/// Thread-count scaling of the parallel sections (CWT feature
/// extraction). Thread counts are forced through the override so the
/// comparison is meaningful even where `available_parallelism` is 1.
fn bench_parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    let fs = 12_000.0;
    let signal: Vec<f64> = (0..(2 * fs as usize))
        .map(|i| (std::f64::consts::TAU * 900.0 * i as f64 / fs).sin())
        .collect();
    let extractor = FeatureExtractor::new(
        FrequencyBins::log_spaced(48, 50.0, 5000.0),
        1024,
        512,
        ScalingKind::MinMax,
    );
    for threads in [1usize, 2, 4] {
        gansec_parallel::set_threads(threads);
        group.bench_function(format!("cwt_features_{threads}_threads"), |b| {
            b.iter(|| black_box(extractor.extract(black_box(&signal), fs)))
        });
    }
    gansec_parallel::set_threads(0);
    group.finish();
}

/// Serve-layer scoring over a sealed smoke bundle: the per-frame scalar
/// entry point, the engine's batched path drawing warm scratch from its
/// buffer pool, and the raw detector batch kernel with a caller-held
/// scratch — the zero-allocations-per-frame steady state the pool
/// amortizes the whole batch down to.
fn bench_engine_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(20);
    let pipeline = GanSecPipeline::new(PipelineConfig::smoke_test());
    let stage = pipeline.train_stage(3).expect("train");
    let (_, test) = pipeline.datasets(3).expect("datasets");
    let engine = ScoringEngine::from_bundle(stage.to_bundle());
    let features = test.features();
    let conds = test.conds();

    group.bench_function("engine_score_frame", |b| {
        b.iter(|| {
            black_box(engine.score_frame(black_box(features.row(0)), black_box(conds.row(0))))
        })
    });
    group.bench_function(format!("engine_score_frames_{}", features.rows()), |b| {
        b.iter(|| black_box(engine.score_frames_unchecked(black_box(features), black_box(conds))))
    });
    let detector = engine.detector();
    let mut scratch = ScoreScratch::default();
    let mut out = Vec::new();
    detector.score_frames_into(features, conds, &mut scratch, &mut out);
    group.bench_function("detector_batch_warm_scratch", |b| {
        b.iter(|| {
            detector.score_frames_into(
                black_box(features),
                black_box(conds),
                &mut scratch,
                &mut out,
            );
            black_box(out[0])
        })
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    let sim = PrinterSim::printrbot_class();
    let program = calibration_pattern(2);
    group.bench_function("printer_6s_trace", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(3),
            |mut rng| black_box(sim.run(&program, &mut rng)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fft,
    bench_cwt_features,
    bench_cwt_plan,
    bench_gcode,
    bench_algorithm1,
    bench_cgan_step,
    bench_matmul,
    bench_parzen,
    bench_parallel_scaling,
    bench_engine_scoring,
    bench_simulation
);
criterion_main!(benches);
