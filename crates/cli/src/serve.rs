//! The bundle-facing subcommands: `gansec train` seals a trained
//! pipeline into a versioned [`ModelBundle`]; `gansec score` and
//! `gansec detect --bundle` reload it through the immutable
//! [`ScoringEngine`] so detection runs without retraining; `gansec
//! serve` puts that engine behind a socket for online detection.
//!
//! Every bundle consumer goes through [`check::load_bundle_gated`], so
//! the artifact is parsed exactly once and the same in-memory value
//! feeds both the pre-flight lint gate and the engine.

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec::{GanSecPipeline, PipelineConfig, SideChannelDataset};
use gansec_amsim::{GCodeProgram, MotorSet, PrinterSim};
use gansec_dsp::{FeatureExtractor, FrequencyBins, ScalingKind};
use gansec_engine::{EvidenceKind, Precision, ScoringEngine};
use gansec_serve::{ServeConfig, Server};
use gansec_tensor::Matrix;

use crate::check::{self, GatedBundle};
use crate::commands::load_program;
use crate::{ExitCode, ParsedArgs};

/// Resolves `--precision <f64|f32>` into an engine precision.
#[cfg(feature = "f32")]
pub(crate) fn resolve_precision(args: &ParsedArgs) -> Result<Precision, String> {
    match args.get("precision") {
        None | Some("f64") => Ok(Precision::F64),
        Some("f32") => Ok(Precision::F32),
        Some(other) => Err(format!(
            "unknown --precision {other:?} (expected f64 or f32)"
        )),
    }
}

/// Without the `f32` feature a requested fast path is a hard error —
/// the lint gate (GS0601) says the same thing, but `--no-check` must
/// not turn a precision request into a silent f64 fallback.
#[cfg(not(feature = "f32"))]
pub(crate) fn resolve_precision(args: &ParsedArgs) -> Result<Precision, String> {
    match args.get("precision") {
        None | Some("f64") => Ok(Precision::F64),
        Some("f32") => {
            Err("--precision f32 requires a gansec binary built with the `f32` feature".to_string())
        }
        Some(other) => Err(format!(
            "unknown --precision {other:?} (expected f64 or f32)"
        )),
    }
}

/// The pipeline configuration the training flags describe: `--smoke`
/// for the tiny CI-sized workload, otherwise paper scale; the standard
/// knobs override whichever base was picked.
fn train_config(args: &ParsedArgs) -> Result<PipelineConfig, String> {
    let mut cfg = if args.has_switch("smoke") {
        PipelineConfig::smoke_test()
    } else {
        PipelineConfig::paper_scale()
    };
    cfg.n_bins = args
        .get_parsed("bins", cfg.n_bins)
        .map_err(|e| e.to_string())?;
    cfg.train_iterations = args
        .get_parsed("iters", cfg.train_iterations)
        .map_err(|e| e.to_string())?;
    cfg.moves_per_axis = args
        .get_parsed("moves", cfg.moves_per_axis)
        .map_err(|e| e.to_string())?;
    cfg.h = args.get_parsed("h", cfg.h).map_err(|e| e.to_string())?;
    cfg.gsize = args
        .get_parsed("gsize", cfg.gsize)
        .map_err(|e| e.to_string())?;
    cfg.batch_size = args
        .get_parsed("batch-size", cfg.batch_size)
        .map_err(|e| e.to_string())?;
    Ok(cfg)
}

/// `gansec train [--smoke] --out <file>`: run the train stage once and
/// seal the generator, fitted scorers, and calibrated threshold into a
/// bundle that `score`/`detect --bundle` reload without retraining.
pub fn train(args: &ParsedArgs) -> Result<ExitCode, String> {
    let out = args.require("out").map_err(|e| e.to_string())?;
    let seed = args.get_parsed("seed", 42u64).map_err(|e| e.to_string())?;
    let cfg = train_config(args)?;
    let pipeline = GanSecPipeline::new(cfg);
    let stage = pipeline.train_stage(seed).map_err(|e| e.to_string())?;
    let bundle = stage.to_bundle();
    bundle.save(out).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "sealed bundle {out}: schema v{}, seed {}, config fingerprint {:016x}",
        bundle.schema_version, bundle.seed, bundle.config_fingerprint
    );
    println!(
        "  {} train / {} held-out frames; {} analyzed features; alarm threshold {:.6}",
        stage.train().len(),
        stage.test().len(),
        bundle.feature_indices.len(),
        bundle.detector.threshold()
    );
    Ok(ExitCode::Ok)
}

/// `gansec score --bundle <file> [--input <gcode>]`: reload a sealed
/// bundle and print per-frame consistency scores. Without `--input`
/// the bundle's own deterministic held-out split is rebuilt from its
/// `(seed, config)` and scored — the serving-side replay of the
/// monolithic run's detection stage.
pub fn score(args: &ParsedArgs) -> Result<ExitCode, String> {
    let path = args.require("bundle").map_err(|e| e.to_string())?;
    let precision = resolve_precision(args)?;
    let bundle = match check::load_bundle_gated(args, path, None)? {
        GatedBundle::Ready(bundle) => bundle,
        GatedBundle::Refused(code) => return Ok(code),
    };
    let mut engine = ScoringEngine::from_bundle(bundle);
    engine.set_precision(precision);
    let pipeline = GanSecPipeline::new(engine.config().clone());
    let (train, test) = pipeline
        .datasets(engine.seed())
        .map_err(|e| e.to_string())?;

    let (features, conds, source) = match args.get("input") {
        None => (
            test.features().clone(),
            test.conds().clone(),
            "the bundle's held-out split".to_string(),
        ),
        Some(gcode) => {
            let seed = args
                .get_parsed("seed", engine.seed())
                .map_err(|e| e.to_string())?;
            let program = load_program(gcode)?;
            let (f, c) = claimed_frames(&program, None, engine.config(), &train, seed)?;
            (f, c, gcode.to_string())
        }
    };
    if features.rows() == 0 {
        return Err("no analyzable frames to score".into());
    }

    let summary = engine
        .detect_frames(&features, &conds)
        .map_err(|e| e.to_string())?;
    println!(
        "# bundle {path}: schema v{}, seed {}, config fingerprint {:016x}, {} scoring",
        engine.schema_version(),
        engine.seed(),
        engine.config_fingerprint(),
        engine.precision()
    );
    println!(
        "# scoring {} frames from {source}; alarm threshold {:.6}",
        features.rows(),
        summary.threshold
    );
    println!("{:>6}  {:>14}  {:>7}", "frame", "score", "verdict");
    for (i, (&s, &bad)) in summary.scores.iter().zip(&summary.verdicts).enumerate() {
        println!(
            "{i:>6}  {s:>14.6}  {:>7}",
            if bad { "ATTACK" } else { "ok" }
        );
    }
    let rate = summary.flagged as f64 / features.rows() as f64;
    println!(
        "\n{} of {} frames flagged ({:.1}%)",
        summary.flagged,
        features.rows(),
        rate * 100.0
    );
    Ok(ExitCode::Ok)
}

/// The `--bundle` mode of `gansec detect`: identical verdict policy to
/// the monolithic path, but the model comes from a sealed bundle and
/// scoring runs through the engine's batched, buffer-pooled path.
///
/// `--evidence kde,disc,recon [--evidence-weights 0.5,0.3,0.2]` routes
/// the verdicts through a multi-evidence stack instead of the default
/// KDE-only passthrough, printing the per-channel breakdown; without
/// the flag the output and verdicts are bit-identical to the
/// pre-evidence path.
pub fn detect_bundle(args: &ParsedArgs, bundle_path: &str) -> Result<ExitCode, String> {
    let precision = resolve_precision(args)?;
    let evidence = check::evidence_flags(args)?;
    let bundle = match check::load_bundle_gated(args, bundle_path, None)? {
        GatedBundle::Ready(bundle) => bundle,
        GatedBundle::Refused(code) => return Ok(code),
    };
    let mut engine = ScoringEngine::from_bundle(bundle);
    engine.set_precision(precision);
    let benign = load_program(args.require("benign").map_err(|e| e.to_string())?)?;
    let suspect = load_program(args.require("suspect").map_err(|e| e.to_string())?)?;
    let seed = args.get_parsed("seed", 42u64).map_err(|e| e.to_string())?;

    let pipeline = GanSecPipeline::new(engine.config().clone());
    let (train, _) = pipeline
        .datasets(engine.seed())
        .map_err(|e| e.to_string())?;
    let (features, conds) = claimed_frames(&suspect, Some(&benign), engine.config(), &train, seed)?;
    let checked = features.rows();
    if checked == 0 {
        return Err("suspect program produced no analyzable frames".into());
    }

    let flagged = match evidence {
        None => {
            engine
                .detect_frames(&features, &conds)
                .map_err(|e| e.to_string())?
                .flagged
        }
        Some((kinds, weights)) => {
            let kinds = kinds
                .iter()
                .map(|k| k.parse::<EvidenceKind>())
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| e.to_string())?;
            let build = engine
                .build_evidence(&kinds, &weights)
                .map_err(|e| e.to_string())?;
            for warning in &build.warnings {
                eprintln!("# {warning}");
            }
            let detail = engine
                .detect_frames_detailed(&features, &conds, &build.stack)
                .map_err(|e| e.to_string())?;
            println!(
                "evidence stack over {checked} frames (combined threshold {:.6}):",
                detail.threshold
            );
            let channel_weights = build.stack.weights();
            for (i, kind) in detail.kinds.iter().enumerate() {
                let below = detail.per_evidence[i]
                    .iter()
                    .filter(|&&s| s < detail.evidence_thresholds[i])
                    .count();
                println!(
                    "  {kind:<5} weight {:.3}  threshold {:+.6}  {below} frame(s) below",
                    channel_weights[i], detail.evidence_thresholds[i],
                );
            }
            detail.flagged
        }
    };
    let rate = flagged as f64 / checked as f64;
    println!(
        "checked {checked} emission frames against the benign claims; {flagged} flagged ({:.1}%)",
        rate * 100.0
    );
    // Calibrated to ~5% false alarms; 3x that is a confident detection.
    if rate > 0.15 {
        println!("result: TAMPERING LIKELY — emission inconsistent with claimed program.");
        Ok(ExitCode::Flagged)
    } else {
        println!("result: emission consistent with the claimed program.");
        Ok(ExitCode::Ok)
    }
}

/// The server configuration the serve flags describe, over the crate's
/// defaults.
fn serve_config(args: &ParsedArgs) -> Result<ServeConfig, String> {
    let mut config = ServeConfig::default();
    if let Some(addr) = args.get("addr") {
        config.addr = addr.to_string();
    }
    config.workers = args
        .get_parsed("workers", config.workers)
        .map_err(|e| e.to_string())?;
    config.max_batch = args
        .get_parsed("max-batch", config.max_batch)
        .map_err(|e| e.to_string())?;
    config.batch_linger_ms = args
        .get_parsed("batch-linger-ms", config.batch_linger_ms)
        .map_err(|e| e.to_string())?;
    config.queue_frames = args
        .get_parsed("queue-frames", config.queue_frames)
        .map_err(|e| e.to_string())?;
    config.max_conns = args
        .get_parsed("max-conns", config.max_conns)
        .map_err(|e| e.to_string())?;
    config.read_timeout_ms = args
        .get_parsed("read-timeout-ms", config.read_timeout_ms)
        .map_err(|e| e.to_string())?;
    config.write_timeout_ms = args
        .get_parsed("write-timeout-ms", config.write_timeout_ms)
        .map_err(|e| e.to_string())?;
    config.heartbeat_ms = args
        .get_parsed("heartbeat-ms", config.heartbeat_ms)
        .map_err(|e| e.to_string())?;
    config.scorer_stall_ms = args
        .get_parsed("stall-ms", config.scorer_stall_ms)
        .map_err(|e| e.to_string())?;
    config.restart_attempts = args
        .get_parsed("restart-attempts", config.restart_attempts)
        .map_err(|e| e.to_string())?;
    config.restart_backoff_ms = args
        .get_parsed("restart-backoff-ms", config.restart_backoff_ms)
        .map_err(|e| e.to_string())?;
    config.breaker_threshold = args
        .get_parsed("breaker-threshold", config.breaker_threshold)
        .map_err(|e| e.to_string())?;
    config.breaker_cooldown_ms = args
        .get_parsed("breaker-cooldown-ms", config.breaker_cooldown_ms)
        .map_err(|e| e.to_string())?;
    check::apply_stream_flags(args, &mut config)?;
    Ok(config)
}

/// Starts the server, injecting the `--chaos-plan` faults when the
/// binary was built with the `chaos` feature.
#[cfg(feature = "chaos")]
fn start_server(
    config: ServeConfig,
    engine: ScoringEngine,
    path: &str,
    chaos_plan: Option<&str>,
) -> Result<Server, String> {
    match chaos_plan {
        Some(plan_path) => {
            let plan = gansec_chaos::ChaosPlan::load(plan_path)?;
            println!(
                "CHAOS: injecting {} fault(s) from {plan_path} (seed {})",
                plan.faults.len(),
                plan.seed
            );
            let state = std::sync::Arc::new(plan.into_state());
            Server::start_with_chaos(config, engine, path, state)
        }
        None => Server::start(config, engine, path),
    }
}

/// Without the `chaos` feature a requested plan is a hard error — the
/// lint gate (GS0512) says the same thing, but `--no-check` must not
/// turn fault injection into a silent no-op.
#[cfg(not(feature = "chaos"))]
fn start_server(
    config: ServeConfig,
    engine: ScoringEngine,
    path: &str,
    chaos_plan: Option<&str>,
) -> Result<Server, String> {
    if chaos_plan.is_some() {
        return Err(
            "--chaos-plan requires a gansec binary built with the `chaos` feature".to_string(),
        );
    }
    Server::start(config, engine, path)
}

/// `gansec serve --bundle <file> [--addr] [--workers] [--max-batch]
/// [--batch-linger-ms] [--max-conns] ...`: load a sealed bundle into a
/// [`ScoringEngine`] and serve it over HTTP until `POST /admin/shutdown`
/// drains the server. The pre-flight gate lints the bundle *and* the
/// server configuration (GS04xx + GS05xx) off one bundle parse before
/// the socket binds; `--no-check` bypasses it.
pub fn serve(args: &ParsedArgs) -> Result<ExitCode, String> {
    let path = args.require("bundle").map_err(|e| e.to_string())?;
    let config = serve_config(args)?;
    let precision = resolve_precision(args)?;
    let chaos_plan = args.get("chaos-plan");
    let mut spec = config.lint_spec();
    spec.chaos_plan = chaos_plan.is_some();
    let bundle = match check::load_bundle_gated(args, path, Some(spec))? {
        GatedBundle::Ready(bundle) => bundle,
        GatedBundle::Refused(code) => return Ok(code),
    };
    let mut engine = ScoringEngine::from_bundle(bundle);
    engine.set_precision(precision);
    println!(
        "serving bundle {path}: schema v{}, seed {}, config fingerprint {:016x} ({} scoring)",
        engine.schema_version(),
        engine.seed(),
        engine.config_fingerprint(),
        engine.precision()
    );
    let server =
        start_server(config, engine, path, chaos_plan).map_err(|e| format!("{path}: {e}"))?;
    println!("listening on http://{}", server.addr());
    println!(
        "  POST /v1/score /v1/detect /v1/classify; GET /healthz /metrics; \
         POST /admin/reload /admin/shutdown"
    );
    println!(
        "  streaming: POST /v1/stream/{{id}}/samples /v1/stream/{{id}}/close; \
         GET /v1/stream/{{id}}/stats"
    );
    server.join();
    println!("drained and shut down cleanly");
    Ok(ExitCode::Ok)
}

/// Simulates `program` and extracts `(features, claimed-condition)` row
/// pairs under the bundle's framing config, scaled exactly as the
/// training dataset was. `claims` supplies the program whose plan the
/// frames are checked against (detect); `None` means the program's own
/// motors are the claim (honest scoring).
fn claimed_frames(
    program: &GCodeProgram,
    claims: Option<&GCodeProgram>,
    cfg: &PipelineConfig,
    train: &SideChannelDataset,
    seed: u64,
) -> Result<(Matrix, Matrix), String> {
    let sim = PrinterSim::printrbot_class();
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = sim.run(program, &mut rng);
    let claimed_plan = claims.map(|p| sim.kinematics().plan(p));
    let bins = FrequencyBins::log_spaced(cfg.n_bins, cfg.fmin_hz, cfg.fmax_hz);
    let extractor = FeatureExtractor::new(bins, cfg.frame_len, cfg.hop, ScalingKind::None);

    let mut feat_rows: Vec<Vec<f64>> = Vec::new();
    let mut cond_rows: Vec<Vec<f64>> = Vec::new();
    for (i, rec) in trace.segments.iter().enumerate() {
        let claimed = claimed_plan.as_ref().map_or(rec.motors, |plan| {
            plan.iter()
                .find(|s| s.command_index == rec.segment.command_index)
                .map_or(rec.motors, MotorSet::from_segment)
        });
        let Some(cond) = cfg.encoding.encode(claimed) else {
            continue;
        };
        let mut fm = extractor.extract(trace.segment_audio(i), trace.sample_rate);
        train.apply_scale(&mut fm);
        for row in fm.rows() {
            feat_rows.push(row.clone());
            cond_rows.push(cond.clone());
        }
    }
    let n = feat_rows.len();
    let features = Matrix::from_fn(n, cfg.n_bins, |r, c| feat_rows[r][c]);
    let conds = Matrix::from_fn(n, cfg.encoding.dim(), |r, c| cond_rows[r][c]);
    Ok((features, conds))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(flags: &[&str]) -> ParsedArgs {
        ParsedArgs::parse_with_switches(
            flags.iter().map(|s| s.to_string()),
            &["smoke", "no-check", "strict"],
        )
        .expect("parse")
    }

    #[test]
    fn smoke_flag_selects_the_smoke_config() {
        let cfg = train_config(&parsed(&["--smoke"])).expect("config");
        assert_eq!(cfg, PipelineConfig::smoke_test());
    }

    #[test]
    fn knobs_override_either_base_config() {
        let cfg = train_config(&parsed(&["--smoke", "--bins", "24"])).expect("config");
        assert_eq!(cfg.n_bins, 24);
        assert_eq!(
            cfg.train_iterations,
            PipelineConfig::smoke_test().train_iterations
        );
        let cfg = train_config(&parsed(&["--iters", "9"])).expect("config");
        assert_eq!(cfg.train_iterations, 9);
        assert_eq!(cfg.n_bins, PipelineConfig::paper_scale().n_bins);
    }

    #[test]
    fn serve_flags_override_the_defaults() {
        let cfg = serve_config(&parsed(&[
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--max-batch",
            "8",
            "--batch-linger-ms",
            "40",
            "--queue-frames",
            "32",
            "--max-conns",
            "5",
        ]))
        .expect("config");
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.max_batch, 8);
        assert_eq!(cfg.batch_linger_ms, 40);
        assert_eq!(cfg.queue_frames, 32);
        assert_eq!(cfg.max_conns, 5);
        assert_eq!(cfg.read_timeout_ms, ServeConfig::default().read_timeout_ms);

        let defaults = serve_config(&parsed(&[])).expect("config");
        assert_eq!(defaults, ServeConfig::default());
    }

    #[test]
    fn stream_flags_override_the_defaults() {
        let cfg = serve_config(&parsed(&[
            "--stream-frame-len",
            "2048",
            "--stream-hop",
            "1024",
            "--stream-max-sessions",
            "8",
            "--stream-max-chunk-samples",
            "4096",
            "--stream-idle-timeout-ms",
            "9000",
            "--stream-reservoir",
            "128",
            "--stream-warmup",
            "16",
            "--stream-drift-alpha",
            "0.1",
        ]))
        .expect("config");
        assert_eq!(cfg.stream_frame_len, 2048);
        assert_eq!(cfg.stream_hop, 1024);
        assert_eq!(cfg.stream_max_sessions, 8);
        assert_eq!(cfg.stream_max_chunk_samples, 4096);
        assert_eq!(cfg.stream_idle_timeout_ms, 9000);
        assert_eq!(cfg.stream_reservoir, 128);
        assert_eq!(cfg.stream_warmup, 16);
        assert_eq!(cfg.stream_drift_alpha, 0.1);
        assert!(!cfg.stream_recalibrate, "report-only by default");
        let cfg = serve_config(
            &ParsedArgs::parse_with_switches(
                ["--stream-recalibrate"].iter().map(|s| s.to_string()),
                &["stream-recalibrate"],
            )
            .expect("parse"),
        )
        .expect("config");
        assert!(cfg.stream_recalibrate);
    }

    #[test]
    fn resilience_flags_override_the_defaults() {
        let cfg = serve_config(&parsed(&[
            "--heartbeat-ms",
            "20",
            "--stall-ms",
            "2000",
            "--restart-attempts",
            "9",
            "--restart-backoff-ms",
            "10",
            "--breaker-threshold",
            "3",
            "--breaker-cooldown-ms",
            "250",
        ]))
        .expect("config");
        assert_eq!(cfg.heartbeat_ms, 20);
        assert_eq!(cfg.scorer_stall_ms, 2000);
        assert_eq!(cfg.restart_attempts, 9);
        assert_eq!(cfg.restart_backoff_ms, 10);
        assert_eq!(cfg.breaker_threshold, 3);
        assert_eq!(cfg.breaker_cooldown_ms, 250);
    }

    #[cfg(not(feature = "chaos"))]
    #[test]
    fn chaos_plan_without_the_feature_is_a_hard_error() {
        let result = start_server(
            ServeConfig {
                addr: "127.0.0.1:0".into(),
                ..ServeConfig::default()
            },
            ScoringEngine::from_bundle(
                GanSecPipeline::new(PipelineConfig::smoke_test())
                    .train_stage(7)
                    .expect("train")
                    .to_bundle(),
            ),
            "unused",
            Some("plan.json"),
        );
        match result {
            Err(err) => assert!(err.contains("chaos"), "{err}"),
            Ok(server) => {
                server.shutdown();
                panic!("must refuse silent fault injection");
            }
        }
    }

    #[test]
    fn precision_flag_parses_and_rejects_junk() {
        assert_eq!(
            resolve_precision(&parsed(&[])).expect("default"),
            Precision::F64
        );
        assert_eq!(
            resolve_precision(&parsed(&["--precision", "f64"])).expect("f64"),
            Precision::F64
        );
        let err = resolve_precision(&parsed(&["--precision", "f16"])).expect_err("junk");
        assert!(err.contains("f16"), "{err}");
    }

    #[cfg(not(feature = "f32"))]
    #[test]
    fn f32_precision_without_the_feature_is_a_hard_error() {
        let err = resolve_precision(&parsed(&["--precision", "f32"])).expect_err("must refuse");
        assert!(err.contains("f32"), "{err}");
    }

    #[cfg(feature = "f32")]
    #[test]
    fn f32_precision_with_the_feature_resolves() {
        assert_eq!(
            resolve_precision(&parsed(&["--precision", "f32"])).expect("f32"),
            Precision::F32
        );
    }

    #[test]
    fn serve_requires_a_bundle_path() {
        let err = serve(&parsed(&[])).expect_err("must demand --bundle");
        assert!(err.contains("bundle"), "{err}");
    }

    #[test]
    fn train_requires_an_output_path() {
        let err = train(&parsed(&["--smoke"])).expect_err("must demand --out");
        assert!(err.contains("out"), "{err}");
    }

    #[test]
    fn score_requires_a_bundle_path() {
        let err = score(&parsed(&[])).expect_err("must demand --bundle");
        assert!(err.contains("bundle"), "{err}");
    }

    #[test]
    fn detect_bundle_routes_an_evidence_stack() {
        // Offline stub builds ship a serde_json that cannot round-trip
        // the bundle file this test pivots on.
        if serde_json::from_str::<serde_json::Value>("null").is_err() {
            return;
        }
        let dir = std::env::temp_dir().join("gansec-cli-detect-evidence-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let bundle = dir.join("bundle.json");
        let bundle_str = bundle.to_str().expect("utf8 path");
        let gcode = dir.join("benign.gcode");
        std::fs::write(&gcode, "G1 F1200 X10\nG1 F1200 X0\nG1 F1200 X10\n").expect("write gcode");
        let gcode_str = gcode.to_str().expect("utf8 path");

        let code = train(&parsed(&["--smoke", "--seed", "3", "--out", bundle_str]))
            .expect("train succeeds");
        assert_eq!(code, ExitCode::Ok);

        // An honest program through the full three-channel stack: runs,
        // and exits through the same rate policy as the default path.
        let code = detect_bundle(
            &parsed(&[
                "--benign",
                gcode_str,
                "--suspect",
                gcode_str,
                "--evidence",
                "kde,disc,recon",
                "--evidence-weights",
                "0.5,0.3,0.2",
            ]),
            bundle_str,
        )
        .expect("evidence detect runs");
        assert!(matches!(code, ExitCode::Ok | ExitCode::Flagged));

        // Same rows, default path: still works bit-identically (the
        // golden parity tests pin the scores; here we pin the wiring).
        let code = detect_bundle(
            &parsed(&["--benign", gcode_str, "--suspect", gcode_str]),
            bundle_str,
        )
        .expect("default detect runs");
        assert!(matches!(code, ExitCode::Ok | ExitCode::Flagged));

        // A typo'd kind gates at the lint pass (GS0806); under
        // --no-check the engine-side parse still refuses it hard —
        // never a silent KDE fallback.
        let code = detect_bundle(
            &parsed(&[
                "--benign",
                gcode_str,
                "--suspect",
                gcode_str,
                "--evidence",
                "astrology",
            ]),
            bundle_str,
        )
        .expect("lint gate refuses with an exit code");
        assert_eq!(code, ExitCode::Flagged);
        let err = detect_bundle(
            &parsed(&[
                "--no-check",
                "--benign",
                gcode_str,
                "--suspect",
                gcode_str,
                "--evidence",
                "astrology",
            ]),
            bundle_str,
        )
        .expect_err("unknown kind");
        assert!(err.contains("astrology"), "{err}");

        std::fs::remove_file(&bundle).ok();
        std::fs::remove_file(&gcode).ok();
    }

    #[test]
    fn trained_bundle_scores_round_trip_through_the_cli_path() {
        let dir = std::env::temp_dir().join("gansec-cli-serve-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let out = dir.join("bundle.json");
        let out_str = out.to_str().expect("utf8 path");

        let code =
            train(&parsed(&["--smoke", "--seed", "3", "--out", out_str])).expect("train succeeds");
        assert_eq!(code, ExitCode::Ok);

        // The sealed bundle reloads and reproduces the monolithic
        // detector's per-frame scores on the deterministic split.
        let engine = ScoringEngine::load(out_str).expect("reload");
        let pipeline = GanSecPipeline::new(engine.config().clone());
        let (_, test) = pipeline.datasets(engine.seed()).expect("datasets");
        let batch = engine
            .score_frames(test.features(), test.conds())
            .expect("finite split");
        assert_eq!(batch.len(), test.len());
        for (i, &s) in batch.iter().enumerate() {
            assert_eq!(
                s,
                engine.score_frame(test.features().row(i), test.conds().row(i))
            );
        }

        let code = score(&parsed(&["--bundle", out_str])).expect("score succeeds");
        assert_eq!(code, ExitCode::Ok);
        std::fs::remove_file(&out).ok();
    }
}
