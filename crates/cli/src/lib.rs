//! Library backing the `gansec` command-line tool.
//!
//! The CLI wraps the GAN-Sec pipeline for practitioners: point it at a
//! G-code file and get graph exports, simulated side-channel summaries,
//! confidentiality audits, tamper checks, and attacker simulations —
//! without writing any Rust. All heavy lifting lives in the workspace
//! crates; this crate owns argument parsing and human-readable output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod args;
pub mod bench;
pub mod check;
pub mod commands;
pub mod serve;
pub mod stream;

pub use args::{ArgError, ParsedArgs};

/// Exit codes used by the binary: 0 success, 1 usage error, 2 analysis
/// found a problem (e.g. tampering detected), 3 runtime failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitCode {
    /// Clean completion.
    Ok,
    /// Bad usage (unknown command, malformed flags).
    Usage,
    /// Analysis completed and flagged a security problem.
    Flagged,
    /// A runtime failure (I/O, parse error, diverged training).
    Failure,
}

impl ExitCode {
    /// The process exit status.
    pub fn status(self) -> i32 {
        match self {
            ExitCode::Ok => 0,
            ExitCode::Usage => 1,
            ExitCode::Flagged => 2,
            ExitCode::Failure => 3,
        }
    }
}

/// Top-level usage text.
pub fn usage() -> &'static str {
    "gansec — GAN-Sec security analysis for additive manufacturing

USAGE:
    gansec <command> [flags]

COMMANDS:
    graph                         print the printer's G_CPPS as Graphviz DOT
    simulate  --gcode <file>      run a program and summarize the emission trace
    audit     [--gcode <file>]    train the CGAN and report per-motor leakage
    detect    --benign <file> --suspect <file> [--bundle <file>]
                                  check a suspect program's emission against
                                  the benign program's claims; with --bundle,
                                  reuse a sealed model instead of retraining;
                                  --evidence kde,disc,recon combines multiple
                                  evidence channels into the verdict (see
                                  EVIDENCE FLAGS)
    reconstruct [--gcode <file>]  simulate an eavesdropper recovering commands
    train     [--smoke] --out <file>
                                  train once and seal the generator, fitted
                                  Parzen scorers, and calibrated threshold
                                  into a versioned model bundle
    score     --bundle <file> [--input <gcode>]
                                  reload a sealed bundle and print per-frame
                                  consistency scores (default input: the
                                  bundle's deterministic held-out split)
    serve     --bundle <file> [serve flags]
                                  serve the bundle's scoring engine over
                                  HTTP: POST /v1/score, /v1/detect,
                                  /v1/classify (JSON), GET /healthz and
                                  /metrics (Prometheus text), POST
                                  /admin/reload (atomic bundle swap) and
                                  /admin/shutdown (graceful drain); plus
                                  sessionful streaming ingest: POST
                                  /v1/stream/{id}/samples and
                                  /v1/stream/{id}/close, GET
                                  /v1/stream/{id}/stats
    stream    --bundle <file> [--input <gcode>] [--chunk <n>]
                                  replay a simulated emission trace against
                                  an in-process streaming server chunk by
                                  chunk (one session per trace segment) and
                                  verify the streamed scores against the
                                  offline reference bit for bit; fails if
                                  any score diverges or the incremental
                                  extractor ran more than one transform
                                  per hop block
    check     [flags]             static analysis of the CPPS graph, the CGAN
                                  shapes, the pipeline configuration, and the
                                  joined deployment dataflow; prints GS-coded
                                  diagnostics (--format json or sarif for
                                  machine-readable output) and exits 2 on
                                  errors (--strict: also on warnings)
    bench     [--smoke] [--out <file>]
                                  pinned-seed macro-benchmark of the hot
                                  kernels and pipeline; writes
                                  BENCH_pipeline.json (--smoke: tiny
                                  workloads for schema validation);
                                  --serve benches the HTTP serving layer
                                  against an in-process server and writes
                                  BENCH_serve.json instead; --detect
                                  benches detection quality (per-attack
                                  ROC/AUC of every evidence channel over
                                  the frame-attack roster) and writes
                                  bench_results/BENCH_detect.json;
                                  --stream benches chunked streaming
                                  ingest latency (p50/p99 per chunk,
                                  transforms per hop block) and writes
                                  bench_results/BENCH_stream.json

COMMON FLAGS:
    --seed <u64>       RNG seed (default 42)
    --iters <n>        CGAN training iterations (default 600)
    --bins <n>         frequency bins (default 48)
    --moves <n>        calibration moves per axis for training (default 5)
    --threads <n>      worker threads for parallel sections (default: all
                       cores; 1 forces serial execution)
    --no-check         skip the pre-flight static analysis that audit,
                       detect, reconstruct, bench, train, score, serve,
                       and stream run before starting
    --precision <f64|f32>
                       scoring arithmetic for score/detect/serve: f64
                       (default, bit-exact reference) or f32 (narrowed
                       fast path; needs a binary built with the `f32`
                       feature, gated by the GS06xx checks)
    --strict           pre-flight/check: treat warnings as errors
    -h, --help         this text

EVIDENCE FLAGS (detect --bundle, check --bundle):
    --evidence <k,k,..>      evidence channels to combine into the verdict:
                             kde (Parzen consistency, the default), disc
                             (discriminator logit), recon (generator-
                             inversion reconstruction error); disc/recon
                             need a schema-v2 bundle with an evidence seal
                             (GS0803), a v1 bundle degrades kde-only with a
                             warning
    --evidence-weights <w,w,..>
                             combination weights, one per channel (default
                             uniform); normalized to sum 1, judged by GS0801

CHECK FLAGS:
    --format <text|json|sarif>
                             diagnostic rendering (default text); sarif
                             emits a SARIF 2.1.0 document for CI upload
    --list-codes             print the published GS diagnostic code table
                             (honors --format text or json) and exit
    --explain <GSxxxx>       print one code's full documentation and exit
    --fix-plan               print a JSON patch of suggested flag changes
                             ({\"fixes\":[..]}) instead of the diagnostic
                             listing; flags are never mutated in place
    --bundle <file>          also lint a sealed model bundle (GS04xx):
                             schema version, fingerprint, dimensions; config
                             drift is reported only when config flags are
                             given to compare against; with the bundle the
                             GS07xx dataflow pass also propagates its fitted
                             feature ranges through the serving chain
    --chaos-plan <file>      also lint a fault-injection plan's declared
                             fault kinds against what this binary can
                             inject (GS0707, chaos builds)
    --h <f>                  Parzen bandwidth to validate (default 0.2)
    --gsize <n>              generated samples per condition (default 500)
    --batch-size <n>         CGAN minibatch size (default 32)
    --disc-steps <k>         discriminator steps per generator step
    --noise-dim <n>          generator noise width (default 16)
    --cond-dim <n>           condition one-hot width (default 3)
    --gen-hidden <w,w,..>    generator hidden widths (default 64,64)
    --disc-hidden <w,w,..>   discriminator hidden widths (default 64,32)
    --arch <file>            check a user-supplied CPPS architecture (JSON)
                             instead of the built-in printer graph

SERVE FLAGS:
    --addr <host:port>       bind address (default 127.0.0.1:7878)
    --workers <n>            connection worker threads (default 4)
    --max-batch <n>          frames per scoring micro-batch (default 64)
    --batch-linger-ms <ms>   micro-batch collection window (default 2)
    --queue-frames <n>       scoring queue capacity in frames; a full
                             queue answers 503 + Retry-After (default 1024)
    --max-conns <n>          simultaneous connection cap (default 64)
    --read-timeout-ms <ms>   per-connection read timeout, 0 = unlimited
                             (default 5000)
    --write-timeout-ms <ms>  per-connection write timeout, 0 = unlimited
                             (default 5000)
    --heartbeat-ms <ms>      watchdog poll interval over the scorer
                             thread (default 100)
    --stall-ms <ms>          in-flight batch age before the watchdog
                             calls the scorer hung, 0 = never
                             (default 10000)
    --restart-attempts <n>   scorer restarts before serving degraded
                             forever; attempts reset on progress
                             (default 5)
    --restart-backoff-ms <ms> base restart delay, doubling per attempt
                             up to 5 s (default 50)
    --breaker-threshold <n>  consecutive scoring failures that trip the
                             circuit breaker (default 5)
    --breaker-cooldown-ms <ms> open-breaker load-shed window before a
                             half-open probe (default 1000)
    --chaos-plan <file>      inject a seeded fault plan (JSON); needs a
                             binary built with the `chaos` feature

STREAM FLAGS (serve, stream; linted by the GS09xx checks):
    --stream-frame-len <n>   samples per scored frame (default 1024)
    --stream-hop <n>         samples per hop block; one incremental
                             transform is run per completed hop
                             (default 512)
    --stream-max-sessions <n> concurrent session cap; at the cap new
                             sessions are shed with 503 + Retry-After
                             (default 64)
    --stream-max-chunk-samples <n>
                             largest single ingest chunk accepted before
                             backpressure answers 422 (default 65536)
    --stream-idle-timeout-ms <ms>
                             idle age before the supervisor heartbeat
                             evicts a session (default 30000)
    --stream-reservoir <n>   score reservoir per session for drift
                             tracking (default 512)
    --stream-warmup <n>      scores observed before drift verdicts are
                             issued (default 64)
    --stream-drift-alpha <f> EWMA smoothing for the drift z-score, in
                             (0, 1] (default 0.05)
    --stream-recalibrate     report-only live recalibration: drifting
                             sessions also report the threshold the
                             reservoir would re-fit (never applied)
    --chunk <n>              stream replay: samples per HTTP chunk
                             (default 2048)

FAULT TOLERANCE (audit):
    --checkpoint <file>      write a training checkpoint every interval
    --checkpoint-every <n>   snapshot cadence in iterations (default 100)
    --resume <file>          continue training from a checkpoint file
    --max-retries <n>        divergence rollbacks before giving up (default 3)
    --lr-backoff <f>         learning-rate damping per retry, in (0, 1]
                             (default 0.5)
"
}
