//! `gansec stream`: replay a simulated emission trace against an
//! in-process streaming server, chunk by chunk, and verify the chunked
//! scores against the offline reference bit for bit.
//!
//! Each trace segment becomes one streaming session (its claimed motor
//! condition rides along), driven over HTTP exactly as a live sensor
//! gateway would drive `gansec serve`. The same trace is also pushed
//! through a locally-built [`SessionManager`] in a single chunk — the
//! offline reference — and the command fails hard if any score differs,
//! so the replay doubles as an end-to-end parity check of the whole
//! ingest → frame → scale → score → drift chain.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec::GanSecPipeline;
use gansec_amsim::{GCodeProgram, PrinterSim};
use gansec_engine::ScoringEngine;
use gansec_serve::api::{
    StreamCloseResponse, StreamIngestRequest, StreamIngestResponse, StreamStatsResponse,
};
use gansec_serve::{client, ServeConfig, Server};
use gansec_stream::{Baseline, SessionManager};

use crate::check::{self, GatedBundle};
use crate::commands::load_program;
use crate::serve::resolve_precision;
use crate::{ExitCode, ParsedArgs};

/// The default replay workload when no `--input` program is given: a
/// short single-axis calibration sweep whose segments all encode
/// cleanly under the standard condition encodings.
const CALIBRATION_SWEEP: &str =
    "G1 F1200 X10\nG1 F1200 Y10\nG1 F1200 Z2\nG1 F1200 X0\nG1 F1200 Y0\n";

/// `gansec stream --bundle <file> [--input <gcode>] [--chunk <n>]
/// [--stream-* flags]`: chunked streaming replay with offline parity
/// verification.
///
/// # Errors
///
/// Returns a message when the bundle cannot be loaded, the server
/// fails, a request is rejected, the streamed scores diverge from the
/// offline reference, or the incremental extractor ran more than one
/// transform per hop block.
pub fn stream(args: &ParsedArgs) -> Result<ExitCode, String> {
    let path = args.require("bundle").map_err(|e| e.to_string())?;
    let precision = resolve_precision(args)?;
    let chunk = args
        .get_parsed("chunk", 2048usize)
        .map_err(|e| e.to_string())?;
    if chunk == 0 {
        return Err("--chunk must be at least 1".into());
    }
    let seed = args.get_parsed("seed", 42u64).map_err(|e| e.to_string())?;
    let bundle = match check::load_bundle_gated(args, path, None)? {
        GatedBundle::Ready(bundle) => bundle,
        GatedBundle::Refused(code) => return Ok(code),
    };
    let mut engine = ScoringEngine::from_bundle(bundle.clone());
    engine.set_precision(precision);

    let program = match args.get("input") {
        Some(gcode) => load_program(gcode)?,
        None => GCodeProgram::parse(CALIBRATION_SWEEP)
            .map_err(|e| format!("built-in calibration sweep: {e}"))?,
    };
    let sim = PrinterSim::printrbot_class();
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = sim.run(&program, &mut rng);

    let mut config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    };
    check::apply_stream_flags(args, &mut config)?;
    let hop = config.stream_hop.max(1);

    // The offline reference manager is built with the same provenance
    // the server builds its own from: the seal's KDE calibration as the
    // drift baseline and the training dataset's fitted min-max range.
    let baseline = engine.evidence_seal().map(|seal| Baseline {
        mean: seal.kde.mean,
        std: seal.kde.std,
        threshold: seal.kde.threshold,
    });
    let scale = GanSecPipeline::new(engine.config().clone())
        .datasets(engine.seed())
        .ok()
        .map(|(train, _)| train.scale());
    let reference = SessionManager::new(
        config.stream_config(engine.seed()),
        engine.config().bins(),
        baseline,
        scale,
    );

    let mut server_engine = ScoringEngine::from_bundle(bundle);
    server_engine.set_precision(precision);
    let server = Server::start(config, server_engine, path).map_err(|e| format!("{path}: {e}"))?;
    let addr = server.addr();
    println!(
        "replaying {} segment(s) against http://{addr} (chunk {chunk}, frame {}/hop {hop}, {} scoring)",
        trace.segments.len(),
        engine.config().frame_len,
        engine.precision(),
    );

    let mut total_frames = 0usize;
    let mut total_flagged = 0usize;
    let mut total_transforms = 0u64;
    let mut total_hops = 0u64;
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut diverged = 0usize;
    for (i, rec) in trace.segments.iter().enumerate() {
        let Some(cond) = engine.config().encoding.encode(rec.motors) else {
            println!("  seg {i}: condition not encodable under this bundle; skipped");
            continue;
        };
        let audio = trace.segment_audio(i);
        let id = format!("seg-{i}");

        // Offline: the whole segment in one chunk, scored directly.
        let mut rows = reference
            .ingest(&id, audio, &cond, trace.sample_rate, 0)
            .map_err(|e| format!("seg {i}: reference ingest: {e}"))?
            .rows;
        rows.extend(
            reference
                .flush(&id, 0)
                .map_err(|e| format!("seg {i}: reference flush: {e}"))?
                .rows,
        );
        reference.remove(&id);
        let expected: Vec<f64> = rows
            .iter()
            .map(|row| engine.score_frame(row, &cond))
            .collect();

        // Streamed: the same segment over HTTP in `chunk`-sized pieces.
        let mut streamed = Vec::new();
        let mut flagged = 0usize;
        let mut drift_state = String::from("stable");
        for piece in audio.chunks(chunk) {
            let body = serde_json::to_vec(&StreamIngestRequest {
                samples: piece.to_vec(),
                cond: cond.clone(),
                sample_rate: trace.sample_rate,
            })
            .map_err(|e| e.to_string())?;
            let started = Instant::now();
            let reply = client::post(addr, &format!("/v1/stream/{id}/samples"), &body)?;
            latencies_ms.push(started.elapsed().as_secs_f64() * 1e3);
            if reply.status != 200 {
                return Err(format!(
                    "seg {i}: ingest rejected with {}: {}",
                    reply.status,
                    String::from_utf8_lossy(&reply.body)
                ));
            }
            let parsed: StreamIngestResponse =
                serde_json::from_slice(&reply.body).map_err(|e| format!("seg {i}: {e}"))?;
            flagged += parsed.flagged;
            drift_state = parsed.drift.state.clone();
            streamed.extend(parsed.scores);
        }

        let stats = client::get(addr, &format!("/v1/stream/{id}/stats"))?;
        if stats.status != 200 {
            return Err(format!("seg {i}: stats rejected with {}", stats.status));
        }
        let stats: StreamStatsResponse =
            serde_json::from_slice(&stats.body).map_err(|e| format!("seg {i}: {e}"))?;
        total_transforms += stats.transforms;
        total_hops += (audio.len() as u64).div_ceil(hop as u64);

        let close = client::post(addr, &format!("/v1/stream/{id}/close"), b"")?;
        if close.status != 200 {
            return Err(format!("seg {i}: close rejected with {}", close.status));
        }
        let close: StreamCloseResponse =
            serde_json::from_slice(&close.body).map_err(|e| format!("seg {i}: {e}"))?;
        flagged += close.flagged;
        streamed.extend(close.scores);

        let parity = streamed == expected;
        if !parity {
            diverged += 1;
        }
        total_frames += streamed.len();
        total_flagged += flagged;
        println!(
            "  seg {i}: {} samples, {} frame(s), {flagged} flagged, drift {drift_state}, parity {}",
            audio.len(),
            streamed.len(),
            if parity { "ok" } else { "DIVERGED" },
        );
    }
    server.shutdown();

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    println!(
        "{total_frames} frame(s) scored, {total_flagged} flagged; {total_transforms} transform(s) \
         over {total_hops} hop block(s); ingest latency p50 {:.2} ms, p99 {:.2} ms",
        percentile(&latencies_ms, 0.50),
        percentile(&latencies_ms, 0.99),
    );
    if total_transforms > total_hops {
        return Err(format!(
            "incremental extractor regressed: {total_transforms} transforms for {total_hops} hop \
             blocks (must be at most one per hop)"
        ));
    }
    if diverged > 0 {
        return Err(format!(
            "{diverged} segment(s) diverged from the offline reference — streamed and offline \
             scores must be bit-identical"
        ));
    }
    println!("parity: streamed scores are bit-identical to the offline reference");
    Ok(ExitCode::Ok)
}

/// Nearest-rank percentile of an ascending-sorted sample; 0 when empty.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    match sorted_ms.len() {
        0 => 0.0,
        n => sorted_ms[(((n - 1) as f64) * p).round() as usize],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::train;

    fn parsed(flags: &[&str]) -> ParsedArgs {
        ParsedArgs::parse_with_switches(
            flags.iter().map(|s| s.to_string()),
            &["smoke", "no-check", "strict", "stream-recalibrate"],
        )
        .expect("parse")
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 0.5), 3.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 0.99), 4.0);
    }

    #[test]
    fn stream_requires_a_bundle_path() {
        let err = stream(&parsed(&[])).expect_err("must demand --bundle");
        assert!(err.contains("bundle"), "{err}");
    }

    #[test]
    fn zero_chunk_is_refused() {
        let err = stream(&parsed(&["--bundle", "x.json", "--chunk", "0"]))
            .expect_err("must refuse a zero chunk");
        assert!(err.contains("chunk"), "{err}");
    }

    #[test]
    fn builtin_sweep_replays_with_bit_exact_parity() {
        // Offline stub builds ship a serde_json that cannot round-trip
        // the request bodies this command lives on.
        if serde_json::from_str::<serde_json::Value>("null").is_err() {
            return;
        }
        let dir = std::env::temp_dir().join("gansec-cli-stream-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let out = dir.join("bundle.json");
        let out_str = out.to_str().expect("utf8 path");
        let code =
            train(&parsed(&["--smoke", "--seed", "3", "--out", out_str])).expect("train succeeds");
        assert_eq!(code, ExitCode::Ok);

        // A ragged chunk size that never aligns with the hop: the replay
        // exits cleanly only when every segment's parity held and the
        // transforms-per-hop invariant survived the trip.
        let code =
            stream(&parsed(&["--bundle", out_str, "--chunk", "997"])).expect("replay succeeds");
        assert_eq!(code, ExitCode::Ok);
        std::fs::remove_file(&out).ok();
    }
}
