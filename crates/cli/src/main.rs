//! The `gansec` command-line entry point.

use gansec_cli::{bench, check, commands, serve, stream, usage, ExitCode, ParsedArgs};

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprint!("{}", usage());
        std::process::exit(ExitCode::Usage.status());
    };
    if command == "-h" || command == "--help" || command == "help" {
        print!("{}", usage());
        std::process::exit(ExitCode::Ok.status());
    }

    let args = match ParsedArgs::parse_with_switches(
        argv,
        &[
            "smoke",
            "no-check",
            "strict",
            "serve",
            "detect",
            "stream",
            "stream-recalibrate",
            "list-codes",
            "fix-plan",
        ],
    ) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", usage());
            std::process::exit(ExitCode::Usage.status());
        }
    };
    if args.wants_help() {
        print!("{}", usage());
        std::process::exit(ExitCode::Ok.status());
    }

    // Global `--threads <n>`: caps the worker pool for every parallel
    // section; `--threads 1` forces fully serial execution.
    match args.get_parsed::<usize>("threads", 0) {
        Ok(n) => gansec_parallel::set_threads(n),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(ExitCode::Usage.status());
        }
    }

    // Pre-flight static analysis: the expensive commands refuse to run a
    // configuration `gansec check` would reject (bypass: --no-check).
    // Bundle artifacts are linted separately inside the commands that
    // consume them (score/serve/detect --bundle), where the file is
    // parsed once and shared with the engine.
    if matches!(
        command.as_str(),
        "audit" | "detect" | "reconstruct" | "bench" | "train" | "score" | "serve" | "stream"
    ) {
        match check::preflight(&args) {
            Ok(None) => {}
            Ok(Some(code)) => std::process::exit(code.status()),
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(ExitCode::Usage.status());
            }
        }
    }

    let result = match command.as_str() {
        "graph" => commands::graph(&args),
        "simulate" => commands::simulate(&args),
        "audit" => commands::audit(&args),
        "detect" => commands::detect(&args),
        "reconstruct" => commands::reconstruct(&args),
        "train" => serve::train(&args),
        "score" => serve::score(&args),
        "serve" => serve::serve(&args),
        "stream" => stream::stream(&args),
        "check" => check::check(&args),
        "bench" => bench::bench(&args),
        other => {
            eprintln!("error: unknown command {other:?}");
            eprint!("{}", usage());
            std::process::exit(ExitCode::Usage.status());
        }
    };

    match result {
        Ok(code) => std::process::exit(code.status()),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(ExitCode::Failure.status());
        }
    }
}
