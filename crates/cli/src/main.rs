//! The `gansec` command-line entry point.

use gansec_cli::{commands, usage, ExitCode, ParsedArgs};

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprint!("{}", usage());
        std::process::exit(ExitCode::Usage.status());
    };
    if command == "-h" || command == "--help" || command == "help" {
        print!("{}", usage());
        std::process::exit(ExitCode::Ok.status());
    }

    let args = match ParsedArgs::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", usage());
            std::process::exit(ExitCode::Usage.status());
        }
    };
    if args.wants_help() {
        print!("{}", usage());
        std::process::exit(ExitCode::Ok.status());
    }

    let result = match command.as_str() {
        "graph" => commands::graph(&args),
        "simulate" => commands::simulate(&args),
        "audit" => commands::audit(&args),
        "detect" => commands::detect(&args),
        "reconstruct" => commands::reconstruct(&args),
        other => {
            eprintln!("error: unknown command {other:?}");
            eprint!("{}", usage());
            std::process::exit(ExitCode::Usage.status());
        }
    };

    match result {
        Ok(code) => std::process::exit(code.status()),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(ExitCode::Failure.status());
        }
    }
}
