//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Argument-parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` had no following value.
    MissingValue(String),
    /// A positional argument appeared where none is accepted.
    UnexpectedPositional(String),
    /// A flag value failed to parse as the requested type.
    InvalidValue {
        /// The flag name.
        flag: String,
        /// The raw value supplied.
        value: String,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "flag {flag} needs a value"),
            ArgError::UnexpectedPositional(arg) => {
                write!(f, "unexpected argument {arg:?}")
            }
            ArgError::InvalidValue { flag, value } => {
                write!(f, "invalid value {value:?} for {flag}")
            }
        }
    }
}

impl Error for ArgError {}

/// Parsed `--flag value` pairs, boolean switches, and the `-h`/`--help`
/// marker.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    flags: HashMap<String, String>,
    switches: Vec<String>,
    help: bool,
}

impl ParsedArgs {
    /// Parses everything after the command word; every `--flag` takes a
    /// value.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for dangling flags or stray positionals.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgError> {
        Self::parse_with_switches(args, &[])
    }

    /// Parses everything after the command word, treating each name in
    /// `switches` as a valueless boolean flag (e.g. `--smoke`) and every
    /// other `--flag` as taking a value.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for dangling flags or stray positionals.
    pub fn parse_with_switches<I: IntoIterator<Item = String>>(
        args: I,
        switches: &[&str],
    ) -> Result<Self, ArgError> {
        let mut flags = HashMap::new();
        let mut seen_switches = Vec::new();
        let mut help = false;
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if arg == "-h" || arg == "--help" {
                help = true;
                continue;
            }
            if let Some(name) = arg.strip_prefix("--") {
                if switches.contains(&name) {
                    seen_switches.push(name.to_string());
                    continue;
                }
                let value = iter
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(arg.clone()))?;
                flags.insert(name.to_string(), value);
            } else {
                return Err(ArgError::UnexpectedPositional(arg));
            }
        }
        Ok(Self {
            flags,
            switches: seen_switches,
            help,
        })
    }

    /// Whether the boolean switch `name` was given (only meaningful for
    /// names passed to [`ParsedArgs::parse_with_switches`]).
    pub fn has_switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Whether `-h`/`--help` was given.
    pub fn wants_help(&self) -> bool {
        self.help
    }

    /// A string flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::MissingValue`] when absent.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name)
            .ok_or_else(|| ArgError::MissingValue(format!("--{name}")))
    }

    /// A parsed numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::InvalidValue`] if present but unparsable.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::InvalidValue {
                flag: format!("--{name}"),
                value: raw.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ParsedArgs, ArgError> {
        ParsedArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flag_pairs() {
        let a = parse(&["--gcode", "part.gcode", "--seed", "7"]).unwrap();
        assert_eq!(a.get("gcode"), Some("part.gcode"));
        assert_eq!(a.get_parsed::<u64>("seed", 42).unwrap(), 7);
        assert_eq!(a.get_parsed::<u64>("iters", 600).unwrap(), 600);
        assert!(!a.wants_help());
    }

    #[test]
    fn help_markers() {
        assert!(parse(&["-h"]).unwrap().wants_help());
        assert!(parse(&["--help"]).unwrap().wants_help());
    }

    #[test]
    fn switches_parse_without_values() {
        let a = ParsedArgs::parse_with_switches(
            ["--smoke", "--out", "x.json"].iter().map(|s| s.to_string()),
            &["smoke"],
        )
        .unwrap();
        assert!(a.has_switch("smoke"));
        assert!(!a.has_switch("out"));
        assert_eq!(a.get("out"), Some("x.json"));
        // A declared switch never consumes the next token.
        let b =
            ParsedArgs::parse_with_switches(["--smoke"].iter().map(|s| s.to_string()), &["smoke"])
                .unwrap();
        assert!(b.has_switch("smoke"));
    }

    #[test]
    fn dangling_flag_is_error() {
        assert_eq!(
            parse(&["--gcode"]),
            Err(ArgError::MissingValue("--gcode".into()))
        );
    }

    #[test]
    fn positional_is_error() {
        assert!(matches!(
            parse(&["stray"]),
            Err(ArgError::UnexpectedPositional(_))
        ));
    }

    #[test]
    fn require_reports_flag_name() {
        let a = parse(&[]).unwrap();
        let err = a.require("benign").unwrap_err();
        assert!(err.to_string().contains("--benign"));
    }

    #[test]
    fn invalid_numeric_value() {
        let a = parse(&["--seed", "abc"]).unwrap();
        assert!(matches!(
            a.get_parsed::<u64>("seed", 0),
            Err(ArgError::InvalidValue { .. })
        ));
    }
}
