//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Argument-parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` had no following value.
    MissingValue(String),
    /// A positional argument appeared where none is accepted.
    UnexpectedPositional(String),
    /// A flag value failed to parse as the requested type.
    InvalidValue {
        /// The flag name.
        flag: String,
        /// The raw value supplied.
        value: String,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "flag {flag} needs a value"),
            ArgError::UnexpectedPositional(arg) => {
                write!(f, "unexpected argument {arg:?}")
            }
            ArgError::InvalidValue { flag, value } => {
                write!(f, "invalid value {value:?} for {flag}")
            }
        }
    }
}

impl Error for ArgError {}

/// Parsed `--flag value` pairs plus the `-h`/`--help` marker.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    flags: HashMap<String, String>,
    help: bool,
}

impl ParsedArgs {
    /// Parses everything after the command word.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for dangling flags or stray positionals.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgError> {
        let mut flags = HashMap::new();
        let mut help = false;
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if arg == "-h" || arg == "--help" {
                help = true;
                continue;
            }
            if let Some(name) = arg.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(arg.clone()))?;
                flags.insert(name.to_string(), value);
            } else {
                return Err(ArgError::UnexpectedPositional(arg));
            }
        }
        Ok(Self { flags, help })
    }

    /// Whether `-h`/`--help` was given.
    pub fn wants_help(&self) -> bool {
        self.help
    }

    /// A string flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::MissingValue`] when absent.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name)
            .ok_or_else(|| ArgError::MissingValue(format!("--{name}")))
    }

    /// A parsed numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::InvalidValue`] if present but unparsable.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::InvalidValue {
                flag: format!("--{name}"),
                value: raw.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ParsedArgs, ArgError> {
        ParsedArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flag_pairs() {
        let a = parse(&["--gcode", "part.gcode", "--seed", "7"]).unwrap();
        assert_eq!(a.get("gcode"), Some("part.gcode"));
        assert_eq!(a.get_parsed::<u64>("seed", 42).unwrap(), 7);
        assert_eq!(a.get_parsed::<u64>("iters", 600).unwrap(), 600);
        assert!(!a.wants_help());
    }

    #[test]
    fn help_markers() {
        assert!(parse(&["-h"]).unwrap().wants_help());
        assert!(parse(&["--help"]).unwrap().wants_help());
    }

    #[test]
    fn dangling_flag_is_error() {
        assert_eq!(
            parse(&["--gcode"]),
            Err(ArgError::MissingValue("--gcode".into()))
        );
    }

    #[test]
    fn positional_is_error() {
        assert!(matches!(
            parse(&["stray"]),
            Err(ArgError::UnexpectedPositional(_))
        ));
    }

    #[test]
    fn require_reports_flag_name() {
        let a = parse(&[]).unwrap();
        let err = a.require("benign").unwrap_err();
        assert!(err.to_string().contains("--benign"));
    }

    #[test]
    fn invalid_numeric_value() {
        let a = parse(&["--seed", "abc"]).unwrap();
        assert!(matches!(
            a.get_parsed::<u64>("seed", 0),
            Err(ArgError::InvalidValue { .. })
        ));
    }
}
