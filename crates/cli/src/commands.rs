//! The CLI subcommands. Each returns an [`ExitCode`] and prints its
//! report to stdout; errors go to stderr via the returned message.

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec::{
    AttackDetector, CheckpointedTrainer, ConfidentialityReport, GCodeEstimator, LikelihoodAnalysis,
    RecoveryPolicy, SecurityModel, SideChannelDataset, TrainingCheckpoint,
};
use gansec_amsim::{
    calibration_pattern, printer_architecture, ConditionEncoding, GCodeProgram, MotorSet,
    PrinterSim,
};
use gansec_dsp::{FeatureExtractor, FrequencyBins, ScalingKind};

use crate::{ExitCode, ParsedArgs};

const FRAME_LEN: usize = 1024;
const HOP: usize = 512;

/// Shared knobs pulled from the flag set.
struct Common {
    seed: u64,
    iters: usize,
    bins: usize,
    moves: usize,
}

impl Common {
    fn from_args(args: &ParsedArgs) -> Result<Self, String> {
        Ok(Self {
            seed: args.get_parsed("seed", 42u64).map_err(|e| e.to_string())?,
            iters: args
                .get_parsed("iters", 600usize)
                .map_err(|e| e.to_string())?,
            bins: args
                .get_parsed("bins", 48usize)
                .map_err(|e| e.to_string())?,
            moves: args
                .get_parsed("moves", 5usize)
                .map_err(|e| e.to_string())?,
        })
    }

    fn bins(&self) -> FrequencyBins {
        FrequencyBins::log_spaced(self.bins, 50.0, 5000.0)
    }
}

/// Fault-tolerance knobs pulled from the flag set: `--checkpoint`,
/// `--checkpoint-every`, `--resume`, `--max-retries`, `--lr-backoff`.
struct FtFlags {
    every: usize,
    checkpoint: Option<String>,
    resume: Option<String>,
    max_retries: usize,
    lr_backoff: f64,
}

impl FtFlags {
    fn from_args(args: &ParsedArgs) -> Result<Self, String> {
        Ok(Self {
            every: args
                .get_parsed("checkpoint-every", 100usize)
                .map_err(|e| e.to_string())?,
            checkpoint: args.get("checkpoint").map(str::to_string),
            resume: args.get("resume").map(str::to_string),
            max_retries: args
                .get_parsed("max-retries", 3usize)
                .map_err(|e| e.to_string())?,
            lr_backoff: args
                .get_parsed("lr-backoff", 0.5f64)
                .map_err(|e| e.to_string())?,
        })
    }

    /// Whether any flag asks for the checkpointed trainer. Recovery
    /// flags alone are enough: rollback works in memory without a
    /// checkpoint file.
    fn enabled(&self, args: &ParsedArgs) -> bool {
        self.checkpoint.is_some()
            || self.resume.is_some()
            || args.get("checkpoint-every").is_some()
            || args.get("max-retries").is_some()
            || args.get("lr-backoff").is_some()
    }

    fn trainer(&self) -> Result<CheckpointedTrainer, String> {
        if self.every == 0 {
            return Err("--checkpoint-every must be positive".into());
        }
        if !(self.lr_backoff > 0.0 && self.lr_backoff <= 1.0) {
            return Err(format!(
                "--lr-backoff must be in (0, 1], got {}",
                self.lr_backoff
            ));
        }
        let policy = RecoveryPolicy {
            max_retries: self.max_retries,
            lr_backoff: self.lr_backoff,
            ..RecoveryPolicy::default()
        };
        let trainer = CheckpointedTrainer::new(self.every).with_policy(policy);
        Ok(match &self.checkpoint {
            Some(path) => trainer.with_path(path),
            None => trainer,
        })
    }
}

pub(crate) fn load_program(path: &str) -> Result<GCodeProgram, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    GCodeProgram::parse(&source).map_err(|e| format!("{path}: {e}"))
}

/// Trains (or resumes) the flow-pair model on `train`, honoring the
/// fault-tolerance flags. Recoveries are reported on stderr.
fn fit_model(
    common: &Common,
    ft: Option<&FtFlags>,
    train: &SideChannelDataset,
    rng: &mut StdRng,
) -> Result<SecurityModel, String> {
    let model = match ft {
        Some(ft) if ft.resume.is_some() => {
            let path = ft.resume.as_deref().expect("checked above");
            let trainer = ft.trainer()?;
            let checkpoint = TrainingCheckpoint::load(std::path::Path::new(path))
                .map_err(|e| format!("{path}: {e}"))?;
            let paired = train.to_paired_data();
            let (cgan, history) = trainer
                .resume(checkpoint, &paired, common.iters, rng)
                .map_err(|e| format!("resume from {path}: {e}"))?;
            if cgan.config().cond_dim != ConditionEncoding::Simple3.dim() {
                return Err(format!(
                    "{path}: checkpointed model has cond_dim {}, expected {}",
                    cgan.config().cond_dim,
                    ConditionEncoding::Simple3.dim()
                ));
            }
            SecurityModel::from_parts(cgan, ConditionEncoding::Simple3, history)
        }
        Some(ft) => {
            let trainer = ft.trainer()?;
            let mut model = SecurityModel::for_dataset(train, rng);
            model
                .train_fault_tolerant(train, common.iters, &trainer, rng)
                .map_err(|e| e.to_string())?;
            model
        }
        None => {
            let mut model = SecurityModel::for_dataset(train, rng);
            model
                .train(train, common.iters, rng)
                .map_err(|e| e.to_string())?;
            model
        }
    };
    for r in model.history().recoveries() {
        eprintln!(
            "# recovered from divergence at iteration {} (retry {}): lr {:.3e}/{:.3e}, clip {:?}",
            r.at_iteration, r.retry, r.gen_lr, r.disc_lr, r.grad_clip
        );
    }
    Ok(model)
}

fn train_on_calibration(
    common: &Common,
    ft: Option<&FtFlags>,
    rng: &mut StdRng,
) -> Result<(SecurityModel, SideChannelDataset, SideChannelDataset), String> {
    let sim = PrinterSim::printrbot_class();
    let trace = sim.run(&calibration_pattern(common.moves), rng);
    let dataset = SideChannelDataset::from_trace(
        &trace,
        common.bins(),
        FRAME_LEN,
        HOP,
        ConditionEncoding::Simple3,
    )
    .map_err(|e| e.to_string())?;
    let (train, test) = dataset.split_even_odd();
    let model = fit_model(common, ft, &train, rng)?;
    Ok((model, train, test))
}

/// `gansec graph`: print the Figure 6 graph as DOT plus pair statistics
/// and the leakage routes of the case-study pairs.
pub fn graph(_args: &ParsedArgs) -> Result<ExitCode, String> {
    let pa = printer_architecture();
    let g = pa.arch.build_graph();
    eprintln!(
        "# components: {}, flows: {}, candidate pairs: {}, cross-domain: {}",
        g.components().len(),
        g.flows().len(),
        g.candidate_flow_pairs().len(),
        g.cross_domain_pairs().len()
    );
    for &acoustic in &pa.acoustic_flows[..3] {
        let pair = gansec_cpps::FlowPair::new(pa.gcode_flow, acoustic);
        if let Some(route) = g.explain_pair(&pair) {
            let names: Vec<&str> = route
                .iter()
                .map(|&f| g.flow(f).map_or("?", |fl| fl.name()))
                .collect();
            eprintln!(
                "# leakage route to {}: {}",
                g.flow(acoustic).map_or("?", |f| f.name()),
                names.join(" => ")
            );
        }
    }
    println!("{}", g.to_dot(&pa.arch));
    Ok(ExitCode::Ok)
}

/// `gansec simulate --gcode <file>`: execute a program and summarize the
/// captured emission trace per command.
pub fn simulate(args: &ParsedArgs) -> Result<ExitCode, String> {
    let common = Common::from_args(args)?;
    let program = load_program(args.require("gcode").map_err(|e| e.to_string())?)?;
    let sim = PrinterSim::printrbot_class();
    let mut rng = StdRng::seed_from_u64(common.seed);
    let trace = sim.run(&program, &mut rng);
    println!(
        "{} commands -> {} motion segments, {:.2} s of audio at {} Hz",
        program.len(),
        trace.segments.len(),
        trace.duration_s(),
        trace.sample_rate
    );
    println!(
        "{:>5}  {:>8}  {:>10}  {:>10}  {:>8}",
        "cmd", "motors", "duration", "samples", "rms"
    );
    for (i, rec) in trace.segments.iter().enumerate() {
        let audio = trace.segment_audio(i);
        let rms = if audio.is_empty() {
            0.0
        } else {
            (audio.iter().map(|s| s * s).sum::<f64>() / audio.len() as f64).sqrt()
        };
        println!(
            "{:>5}  {:>8}  {:>9.3}s  {:>10}  {:>8.4}",
            rec.segment.command_index,
            rec.motors.to_string(),
            rec.segment.duration_s,
            rec.n_samples(),
            rms
        );
    }
    Ok(ExitCode::Ok)
}

/// `gansec audit [--gcode <file>]`: train on the calibration workload (or
/// the given program) and print the confidentiality report.
pub fn audit(args: &ParsedArgs) -> Result<ExitCode, String> {
    let common = Common::from_args(args)?;
    let ft_flags = FtFlags::from_args(args)?;
    let ft = if ft_flags.enabled(args) {
        Some(&ft_flags)
    } else {
        None
    };
    let mut rng = StdRng::seed_from_u64(common.seed);

    let (model, train, test) = match args.get("gcode") {
        None => train_on_calibration(&common, ft, &mut rng)?,
        Some(path) => {
            let program = load_program(path)?;
            let sim = PrinterSim::printrbot_class();
            let trace = sim.run(&program, &mut rng);
            let dataset = SideChannelDataset::from_trace(
                &trace,
                common.bins(),
                FRAME_LEN,
                HOP,
                ConditionEncoding::Simple3,
            )
            .map_err(|e| format!("{path}: {e} (are the moves single-axis and long enough?)"))?;
            let (train, test) = dataset.split_even_odd();
            let model = fit_model(&common, ft, &train, &mut rng)?;
            (model, train, test)
        }
    };

    let features = train.per_condition_top_features(2);
    let report = LikelihoodAnalysis::new(0.2, 300, features).analyze(&model, &test, &mut rng);
    let verdict = ConfidentialityReport::from_likelihoods(&report, 0.02);
    print!("{verdict}");
    if verdict.leaks() {
        println!("\nresult: LEAK — the emission identifies the executing motor.");
        Ok(ExitCode::Flagged)
    } else {
        println!("\nresult: no identifiable leakage at this threshold.");
        Ok(ExitCode::Ok)
    }
}

/// `gansec detect --benign <file> --suspect <file>`: does the suspect
/// program's emission match the benign program's claims? With
/// `--bundle <file>` the model is reloaded from a sealed bundle and
/// scoring runs through the engine — no retraining.
pub fn detect(args: &ParsedArgs) -> Result<ExitCode, String> {
    if let Some(bundle) = args.get("bundle") {
        return crate::serve::detect_bundle(args, bundle);
    }
    let common = Common::from_args(args)?;
    let benign = load_program(args.require("benign").map_err(|e| e.to_string())?)?;
    let suspect = load_program(args.require("suspect").map_err(|e| e.to_string())?)?;
    let mut rng = StdRng::seed_from_u64(common.seed);
    let (model, train, _) = train_on_calibration(&common, None, &mut rng)?;
    let features = train.per_condition_top_features(4);
    let detector = AttackDetector::fit(&model, &train, 0.2, 300, features, 0.05, &mut rng);

    let sim = PrinterSim::printrbot_class();
    let trace = sim.run(&suspect, &mut rng);
    let benign_plan = sim.kinematics().plan(&benign);
    let extractor = FeatureExtractor::new(common.bins(), FRAME_LEN, HOP, ScalingKind::None);

    let mut checked = 0usize;
    let mut flagged = 0usize;
    for (i, rec) in trace.segments.iter().enumerate() {
        let claimed = benign_plan
            .iter()
            .find(|s| s.command_index == rec.segment.command_index)
            .map_or(rec.motors, MotorSet::from_segment);
        let Some(cond) = ConditionEncoding::Simple3.encode(claimed) else {
            continue;
        };
        let mut fm = extractor.extract(trace.segment_audio(i), trace.sample_rate);
        train.apply_scale(&mut fm);
        for row in fm.rows() {
            checked += 1;
            let score = detector.score_frame(row, &cond);
            if detector.is_attack(score) {
                flagged += 1;
            }
        }
    }
    if checked == 0 {
        return Err("suspect program produced no analyzable frames".into());
    }
    let rate = flagged as f64 / checked as f64;
    println!(
        "checked {checked} emission frames against the benign claims; {flagged} flagged ({:.1}%)",
        rate * 100.0
    );
    // Calibrated to ~5% false alarms; 3x that is a confident detection.
    if rate > 0.15 {
        println!("result: TAMPERING LIKELY — emission inconsistent with claimed program.");
        Ok(ExitCode::Flagged)
    } else {
        println!("result: emission consistent with the claimed program.");
        Ok(ExitCode::Ok)
    }
}

/// `gansec reconstruct [--gcode <file>]`: simulate an eavesdropper
/// recovering the command stream from audio alone.
pub fn reconstruct(args: &ParsedArgs) -> Result<ExitCode, String> {
    let common = Common::from_args(args)?;
    let mut rng = StdRng::seed_from_u64(common.seed);
    let (model, train, _) = train_on_calibration(&common, None, &mut rng)?;
    let features = train.per_condition_top_features(3);
    let estimator = GCodeEstimator::fit(&model, 0.2, 300, features, &mut rng);

    let program = match args.get("gcode") {
        Some(path) => load_program(path)?,
        None => calibration_pattern(common.moves),
    };
    let sim = PrinterSim::printrbot_class();
    let trace = sim.run(&program, &mut rng);
    let extractor = FeatureExtractor::new(common.bins(), FRAME_LEN, HOP, ScalingKind::None);

    println!("{:>5}  {:>8}  {:>10}", "cmd", "actual", "recovered");
    let mut correct = 0usize;
    let mut total = 0usize;
    for (i, rec) in trace.segments.iter().enumerate() {
        let Some(truth_cond) = ConditionEncoding::Simple3.encode(rec.motors) else {
            continue;
        };
        let mut fm = extractor.extract(trace.segment_audio(i), trace.sample_rate);
        train.apply_scale(&mut fm);
        if fm.n_rows() == 0 {
            continue;
        }
        let preds: Vec<usize> = fm
            .rows()
            .iter()
            .map(|row| estimator.classify_frame(row))
            .collect();
        let voted = estimator.majority_vote(&preds).expect("nonempty frames");
        let recovered = estimator
            .motor(voted)
            .map_or_else(String::new, |m| m.to_string());
        let truth_idx = truth_cond.iter().position(|&v| v == 1.0).expect("one-hot");
        total += 1;
        if voted == truth_idx {
            correct += 1;
        }
        println!(
            "{:>5}  {:>8}  {:>10}",
            rec.segment.command_index,
            rec.motors.to_string(),
            recovered
        );
    }
    if total == 0 {
        return Err("no single-axis moves to reconstruct".into());
    }
    let acc = correct as f64 / total as f64;
    println!("\nrecovered {correct}/{total} moves ({:.1}%)", acc * 100.0);
    if acc > 0.5 {
        println!("result: LEAK — a microphone recovers the command stream.");
        Ok(ExitCode::Flagged)
    } else {
        Ok(ExitCode::Ok)
    }
}
