//! `gansec check`: static analysis of the CPPS graph, the CGAN
//! architecture, and the pipeline configuration — plus the pre-flight
//! gate the analysis commands run before doing any expensive work.

use gansec::{ModelBundle, PipelineConfig};
use gansec_cpps::CppsArchitecture;
use gansec_lint::{
    render_json, render_text, CheckInput, CheckReport, FastPathSpec, GraphSpec, ServeSpec,
};

use crate::{ExitCode, ParsedArgs};

/// `gansec check [flags]`: run every analysis pass and print the
/// diagnostics, `--format text` (default) or `--format json`.
///
/// Exit codes: [`ExitCode::Ok`] when nothing gates execution,
/// [`ExitCode::Flagged`] on errors (or, with `--strict`, warnings),
/// [`ExitCode::Usage`] on malformed flags.
pub fn check(args: &ParsedArgs) -> Result<ExitCode, String> {
    let input = build_input(args)?;
    let report = gansec_lint::check(&input);
    match args.get("format").unwrap_or("text") {
        "text" => print!("{}", render_text(&report)),
        "json" => println!("{}", render_json(&report)),
        other => {
            return Err(format!(
                "unknown --format {other:?} (expected text or json)"
            ))
        }
    }
    if report.should_fail(args.has_switch("strict")) {
        Ok(ExitCode::Flagged)
    } else {
        Ok(ExitCode::Ok)
    }
}

/// The pre-flight gate: `audit`, `detect`, `reconstruct`, and `bench`
/// call this before touching the simulator or the trainer. Runs the
/// same passes as `gansec check` over the flags the command will use,
/// printing any findings to stderr.
///
/// Returns `Some(ExitCode::Flagged)` when the run should abort (any
/// error, or any warning under `--strict`), `None` to proceed. The
/// `--no-check` switch skips the gate entirely.
pub fn preflight(args: &ParsedArgs) -> Result<Option<ExitCode>, String> {
    if args.has_switch("no-check") {
        return Ok(None);
    }
    // Bundle lint runs inside `load_bundle_gated` for the commands that
    // consume one — the file is parsed exactly once there, so the gate
    // here covers everything but the `--bundle` flag.
    let report = gansec_lint::check(&build_input_inner(args, false)?);
    if report.should_fail(args.has_switch("strict")) {
        eprint!("{}", render_text(&report));
        eprintln!("pre-flight check failed; fix the flags above or rerun with --no-check");
        return Ok(Some(ExitCode::Flagged));
    }
    // Warnings still surface, they just don't gate.
    for d in report.diagnostics() {
        eprintln!("# {d}");
    }
    Ok(None)
}

/// What [`load_bundle_gated`] decided.
pub enum GatedBundle {
    /// The bundle parsed, passed the lint gate, and validated strictly.
    Ready(ModelBundle),
    /// The lint gate refused the run; diagnostics already went to
    /// stderr, so the caller just exits with the code.
    Refused(ExitCode),
}

/// The bundle-command pre-flight: parses the bundle JSON **once**, runs
/// the lint gate over that same parsed value, then strictly validates it
/// — `score`, `serve`, and `detect --bundle` share the artifact with
/// their engine instead of re-reading the file after the check pass.
///
/// `serve` carries the server-config spec when the caller is about to
/// bind a socket, so GS05xx findings gate alongside the GS04xx ones.
/// `--no-check` skips the lint gate (strict validation still runs:
/// an unusable bundle can never become an engine); `--strict` promotes
/// warnings to gating errors. Config drift (GS0408) is diagnosed only
/// when config flags pin a config to compare against.
///
/// # Errors
///
/// Returns a message when the file cannot be read/parsed or fails
/// strict validation.
pub fn load_bundle_gated(
    args: &ParsedArgs,
    path: &str,
    serve: Option<ServeSpec>,
) -> Result<GatedBundle, String> {
    let bundle = ModelBundle::load_unchecked(path).map_err(|e| format!("{path}: {e}"))?;
    if !args.has_switch("no-check") {
        let cfg = config_from_args(args)?;
        let pinned = ["bins", "iters", "h", "gsize", "batch-size"]
            .iter()
            .any(|flag| args.get(flag).is_some());
        let mut input = CheckInput::new()
            .with_bundle(bundle.lint_spec(pinned.then_some(&cfg)))
            .with_fastpath(fastpath_spec(args));
        if let Some(spec) = serve {
            input = input.with_serve(spec);
        }
        let report = gansec_lint::check(&input);
        if report.should_fail(args.has_switch("strict")) {
            eprint!("{}", render_text(&report));
            eprintln!("pre-flight check failed; fix the bundle above or rerun with --no-check");
            return Ok(GatedBundle::Refused(ExitCode::Flagged));
        }
        for d in report.diagnostics() {
            eprintln!("# {d}");
        }
    }
    bundle.validate().map_err(|e| format!("{path}: {e}"))?;
    Ok(GatedBundle::Ready(bundle))
}

/// Assembles the [`CheckInput`] the flags describe: the built-in
/// printer graph (or `--arch <file>`), the CGAN shape spec with any
/// width overrides applied, the pipeline numbers, and (for the `check`
/// command itself) any `--bundle` artifact.
fn build_input(args: &ParsedArgs) -> Result<CheckInput, String> {
    build_input_inner(args, true)
}

fn build_input_inner(args: &ParsedArgs, include_bundle: bool) -> Result<CheckInput, String> {
    let cfg = config_from_args(args)?;
    let mut input = cfg.lint_input();

    // Model overrides ride on the config's CGAN spec, so data_dim stays
    // tied to --bins exactly as in the real pipeline. The unchecked
    // constructor matters: describing a broken config is the job here.
    let mut cgan = cfg.cgan_config_unchecked();
    cgan.noise_dim = args
        .get_parsed("noise-dim", cgan.noise_dim)
        .map_err(|e| e.to_string())?;
    cgan.cond_dim = args
        .get_parsed("cond-dim", cgan.cond_dim)
        .map_err(|e| e.to_string())?;
    cgan.disc_steps = args
        .get_parsed("disc-steps", cgan.disc_steps)
        .map_err(|e| e.to_string())?;
    if let Some(raw) = args.get("gen-hidden") {
        cgan.gen_hidden = parse_widths("--gen-hidden", raw)?;
    }
    if let Some(raw) = args.get("disc-hidden") {
        cgan.disc_hidden = parse_widths("--disc-hidden", raw)?;
    }
    input.model = Some(cgan.lint_spec().with_label_cardinality(cfg.encoding.dim()));

    if let Some(pipeline) = input.pipeline.as_mut() {
        pipeline.disc_steps = cgan.disc_steps;
        match args
            .get_parsed::<usize>("threads", 0)
            .map_err(|e| e.to_string())?
        {
            0 => {}
            n => pipeline.threads = Some(n),
        }
        if let Some(path) = args.get("checkpoint") {
            pipeline.checkpoint_paths = vec![path.to_string()];
        }
    }

    // A user-supplied architecture replaces the built-in printer graph
    // and gets the stricter design-time treatment (feedback = error).
    if let Some(path) = args.get("arch") {
        let arch = load_architecture(path)?;
        input.graph = Some(GraphSpec::from_architecture(&arch, true));
        if let Some(pipeline) = input.pipeline.as_mut() {
            pipeline.pair_count = None;
        }
    }

    // A sealed bundle joins the pass inputs. The unchecked load matters:
    // describing an unsupported or tampered bundle is the job here.
    // Config drift (GS0408) is only diagnosed against a config the flags
    // actually pinned — `gansec check --bundle x.json` with no config
    // flags checks the bundle's internal consistency alone.
    if include_bundle {
        if let Some(path) = args.get("bundle") {
            let bundle = ModelBundle::load_unchecked(path).map_err(|e| format!("{path}: {e}"))?;
            let pinned = ["bins", "iters", "h", "gsize", "batch-size"]
                .iter()
                .any(|flag| args.get(flag).is_some());
            input = input.with_bundle(bundle.lint_spec(pinned.then_some(&cfg)));
        }
    }
    // `gansec check --precision f32` judges a planned fast-path run even
    // without a bundle (build support alone).
    if args.get("precision").is_some() {
        input = input.with_fastpath(fastpath_spec(args));
    }
    Ok(input)
}

/// The reduced-precision request the flags describe, against what this
/// binary was built with. The GS06xx pass judges the combination; the
/// hard refusal for an unbuildable request lives in the serve module's
/// precision resolver (it must fire even under `--no-check`).
pub fn fastpath_spec(args: &ParsedArgs) -> FastPathSpec {
    FastPathSpec {
        requested_f32: args.get("precision") == Some("f32"),
        f32_built: cfg!(feature = "f32"),
    }
}

/// The pipeline configuration the flags describe, defaulting to the
/// values the analysis commands actually run with.
fn config_from_args(args: &ParsedArgs) -> Result<PipelineConfig, String> {
    let mut cfg = PipelineConfig::paper_scale();
    cfg.n_bins = args
        .get_parsed("bins", 48usize)
        .map_err(|e| e.to_string())?;
    cfg.train_iterations = args
        .get_parsed("iters", 600usize)
        .map_err(|e| e.to_string())?;
    cfg.h = args.get_parsed("h", cfg.h).map_err(|e| e.to_string())?;
    cfg.gsize = args
        .get_parsed("gsize", cfg.gsize)
        .map_err(|e| e.to_string())?;
    cfg.batch_size = args
        .get_parsed("batch-size", cfg.batch_size)
        .map_err(|e| e.to_string())?;
    Ok(cfg)
}

fn parse_widths(flag: &str, raw: &str) -> Result<Vec<usize>, String> {
    raw.split(',')
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .map_err(|_| format!("invalid value {part:?} in {flag} (expected e.g. 64,64)"))
        })
        .collect()
}

fn load_architecture(path: &str) -> Result<CppsArchitecture, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&source).map_err(|e| format!("{path}: not a CPPS architecture: {e}"))
}

/// Exposed so integration tests can check gating decisions without
/// spawning the binary.
pub fn report_for(args: &ParsedArgs) -> Result<CheckReport, String> {
    Ok(gansec_lint::check(&build_input(args)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(flags: &[&str]) -> ParsedArgs {
        ParsedArgs::parse_with_switches(
            flags.iter().map(|s| s.to_string()),
            &["smoke", "no-check", "strict"],
        )
        .expect("parse")
    }

    #[test]
    fn default_flags_are_clean() {
        let report = report_for(&parsed(&[])).expect("check");
        assert!(!report.should_fail(false), "{:?}", report.diagnostics());
    }

    #[test]
    fn zero_bandwidth_is_flagged() {
        let report = report_for(&parsed(&["--h", "0"])).expect("check");
        assert!(report.has(gansec_lint::codes::BAD_BANDWIDTH));
        assert!(report.should_fail(false));
    }

    #[test]
    fn hidden_width_lists_parse() {
        assert_eq!(
            parse_widths("--gen-hidden", "64, 32").expect("ok"),
            vec![64, 32]
        );
        assert!(parse_widths("--gen-hidden", "64,x").is_err());
    }

    #[test]
    fn zero_noise_dim_is_flagged() {
        let report = report_for(&parsed(&["--noise-dim", "0"])).expect("check");
        assert!(report.has(gansec_lint::codes::ZERO_DIM));
    }

    #[test]
    fn bundle_flag_attaches_the_bundle_pass() {
        use gansec::GanSecPipeline;
        let dir = std::env::temp_dir().join("gansec-cli-check-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("bundle.json");
        let bundle = GanSecPipeline::new(PipelineConfig::smoke_test())
            .train_stage(5)
            .expect("train")
            .to_bundle();
        bundle.save(&path).expect("save");
        let p = path.to_str().expect("utf8 path");

        // No config flags: internal consistency alone, and a healthy
        // bundle is clean even under --strict.
        let report = report_for(&parsed(&["--bundle", p])).expect("check");
        assert!(!report.should_fail(true), "{:?}", report.diagnostics());

        // Pinning a config that differs from the sealed one is drift:
        // a warning, so it gates only under --strict.
        let report = report_for(&parsed(&["--bundle", p, "--bins", "48"])).expect("check");
        assert!(report.has(gansec_lint::codes::BUNDLE_CONFIG_DRIFT));
        assert!(!report.should_fail(false));
        assert!(report.should_fail(true));

        // A tampered schema version is an error — the unchecked load
        // must still parse it so the pass can say why it is unusable.
        let tampered = dir.join("tampered.json");
        let mut broken = ModelBundle::load_unchecked(&path).expect("reload");
        broken.schema_version = 99;
        std::fs::write(&tampered, broken.to_json().expect("json")).expect("write");
        let report = report_for(&parsed(&[
            "--bundle",
            tampered.to_str().expect("utf8 path"),
        ]))
        .expect("check");
        assert!(report.has(gansec_lint::codes::BUNDLE_VERSION_MISMATCH));
        assert!(report.should_fail(false));

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&tampered).ok();
    }
}
