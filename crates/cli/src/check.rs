//! `gansec check`: static analysis of the CPPS graph, the CGAN
//! architecture, and the pipeline configuration — plus the pre-flight
//! gate the analysis commands run before doing any expensive work.

use gansec::{ModelBundle, PipelineConfig};
use gansec_cpps::CppsArchitecture;
use gansec_lint::{
    code_doc, code_info, render_code_table_json, render_code_table_text, render_fix_plan,
    render_json, render_sarif, render_text, CheckInput, CheckReport, Code, DeploymentSpec,
    FastPathSpec, GraphSpec, ServeSpec, StreamSpec,
};
use gansec_serve::ServeConfig;

use crate::{ExitCode, ParsedArgs};

/// Every diagnostic rendering `--format` accepts. The dispatch below
/// and the error message both derive from this one table, so a new
/// renderer can never be reachable but unadvertised (or vice versa).
pub const FORMATS: &[&str] = &["text", "json", "sarif"];

/// The fault kinds this binary's chaos build can inject, mirroring the
/// `gansec-chaos` `FaultSpec` serde tags. The dataflow pass (GS0707)
/// compares a plan's declared kinds against this list so a typo'd plan
/// is refused before the server boots with silently inert faults.
pub const CHAOS_FAULT_KINDS: &[&str] = &[
    "scorer_panic",
    "scorer_hang",
    "poison_batch",
    "corrupt_job",
    "reload_delay",
    "reload_fail",
    "session_stall",
    "mid_chunk_disconnect",
];

/// `gansec check [flags]`: run every analysis pass and print the
/// diagnostics, `--format text` (default), `json`, or `sarif`
/// (SARIF 2.1.0 for CI ingestion).
///
/// Sidecars: `--list-codes` dumps the published diagnostic code table,
/// `--explain <GSxxxx>` prints one code's full documentation, and
/// `--fix-plan` replaces the listing with a JSON patch of suggested
/// flag changes (never an in-place mutation).
///
/// Exit codes: [`ExitCode::Ok`] when nothing gates execution,
/// [`ExitCode::Flagged`] on errors (or, with `--strict`, warnings),
/// [`ExitCode::Usage`] on malformed flags.
pub fn check(args: &ParsedArgs) -> Result<ExitCode, String> {
    if let Some(raw) = args.get("explain") {
        return explain(raw);
    }
    let format = args.get("format").unwrap_or("text");
    if !FORMATS.contains(&format) {
        return Err(format!(
            "unknown --format {format:?} (expected {})",
            FORMATS.join(", ")
        ));
    }
    if args.has_switch("list-codes") {
        return list_codes(format);
    }
    let input = build_input(args)?;
    let report = gansec_lint::check(&input);
    if args.has_switch("fix-plan") {
        println!("{}", render_fix_plan(&report));
    } else {
        match format {
            "json" => println!("{}", render_json(&report)),
            "sarif" => println!("{}", render_sarif(&report)),
            _ => print!("{}", render_text(&report)),
        }
    }
    if report.should_fail(args.has_switch("strict")) {
        Ok(ExitCode::Flagged)
    } else {
        Ok(ExitCode::Ok)
    }
}

/// `gansec check --explain <code>`: the long-form documentation behind
/// one published diagnostic code. Accepts `GS0703`, `gs0703`, or `703`.
fn explain(raw: &str) -> Result<ExitCode, String> {
    let digits = raw
        .strip_prefix("GS")
        .or_else(|| raw.strip_prefix("gs"))
        .unwrap_or(raw);
    let code = digits
        .parse::<u16>()
        .ok()
        .map(Code)
        .filter(|&c| code_info(c).is_some())
        .ok_or_else(|| {
            format!("unknown diagnostic code {raw:?} (try `gansec check --list-codes`)")
        })?;
    let info = code_info(code).expect("filtered to published codes");
    // Every published code has a long-form doc; the summary is a safe
    // fallback should the two tables ever diverge mid-refactor.
    let doc = code_doc(code).unwrap_or(info.summary);
    println!("{} {} ({})", info.code, info.name, info.severity);
    println!();
    println!("{doc}");
    Ok(ExitCode::Ok)
}

/// `gansec check --list-codes`: the published code table, generated
/// from the registry so it can never drift from what the passes emit.
fn list_codes(format: &str) -> Result<ExitCode, String> {
    match format {
        "json" => println!("{}", render_code_table_json()),
        "text" => print!("{}", render_code_table_text()),
        other => {
            return Err(format!(
                "--list-codes supports --format text or json, not {other:?}"
            ))
        }
    }
    Ok(ExitCode::Ok)
}

/// The pre-flight gate: `audit`, `detect`, `reconstruct`, and `bench`
/// call this before touching the simulator or the trainer. Runs the
/// same passes as `gansec check` over the flags the command will use,
/// printing any findings to stderr.
///
/// Returns `Some(ExitCode::Flagged)` when the run should abort (any
/// error, or any warning under `--strict`), `None` to proceed. The
/// `--no-check` switch skips the gate entirely.
pub fn preflight(args: &ParsedArgs) -> Result<Option<ExitCode>, String> {
    if args.has_switch("no-check") {
        return Ok(None);
    }
    // Bundle lint runs inside `load_bundle_gated` for the commands that
    // consume one — the file is parsed exactly once there, so the gate
    // here covers everything but the `--bundle` flag.
    let report = gansec_lint::check(&build_input_inner(args, false)?);
    if report.should_fail(args.has_switch("strict")) {
        eprint!("{}", render_text(&report));
        eprintln!("pre-flight check failed; fix the flags above or rerun with --no-check");
        return Ok(Some(ExitCode::Flagged));
    }
    // Warnings still surface, they just don't gate.
    for d in report.diagnostics() {
        eprintln!("# {d}");
    }
    Ok(None)
}

/// What [`load_bundle_gated`] decided.
pub enum GatedBundle {
    /// The bundle parsed, passed the lint gate, and validated strictly.
    Ready(ModelBundle),
    /// The lint gate refused the run; diagnostics already went to
    /// stderr, so the caller just exits with the code.
    Refused(ExitCode),
}

/// The bundle-command pre-flight: parses the bundle JSON **once**, runs
/// the lint gate over that same parsed value, then strictly validates it
/// — `score`, `serve`, and `detect --bundle` share the artifact with
/// their engine instead of re-reading the file after the check pass.
///
/// `serve` carries the server-config spec when the caller is about to
/// bind a socket, so GS05xx findings gate alongside the GS04xx ones.
/// `--no-check` skips the lint gate (strict validation still runs:
/// an unusable bundle can never become an engine); `--strict` promotes
/// warnings to gating errors. Config drift (GS0408) is diagnosed only
/// when config flags pin a config to compare against.
///
/// # Errors
///
/// Returns a message when the file cannot be read/parsed or fails
/// strict validation.
pub fn load_bundle_gated(
    args: &ParsedArgs,
    path: &str,
    serve: Option<ServeSpec>,
) -> Result<GatedBundle, String> {
    let bundle = ModelBundle::load_unchecked(path).map_err(|e| format!("{path}: {e}"))?;
    if !args.has_switch("no-check") {
        let cfg = config_from_args(args)?;
        let pinned = ["bins", "iters", "h", "gsize", "batch-size"]
            .iter()
            .any(|flag| args.get(flag).is_some());
        let mut input = CheckInput::new()
            .with_bundle(bundle.lint_spec(pinned.then_some(&cfg)))
            .with_fastpath(fastpath_spec(args));
        if let Some(spec) = serve {
            input = input.with_serve(spec);
            // A server exposes the streaming endpoints whether or not
            // any --stream-* flag was given, so the GS09xx pass always
            // judges the numbers it will actually run with.
            let mut stream_cfg = ServeConfig::default();
            apply_stream_flags(args, &mut stream_cfg)?;
            input = input.with_stream(stream_cfg.stream_lint_spec());
        } else if let Some(stream) = stream_spec(args)? {
            input = input.with_stream(stream);
        }
        // An `--evidence` request is judged against the bundle it will
        // run on (GS08xx): seal presence, weight normalizability, and
        // the inversion budget vs. any serve read timeout.
        if let Some((kinds, weights)) = evidence_flags(args)? {
            input = input.with_evidence(bundle.evidence_lint_spec(&kinds, &weights));
        }
        // The deployment-wide join: the dataflow pass (GS07xx) sees the
        // bundle's fitted feature ranges and any chaos plan alongside
        // the specs, so serve/score/detect gate on contradictions no
        // single artifact shows.
        let deployment = deployment_spec(args, &input, Some(&bundle))?;
        input = input.with_deployment(deployment);
        let report = gansec_lint::check(&input);
        if report.should_fail(args.has_switch("strict")) {
            eprint!("{}", render_text(&report));
            eprintln!("pre-flight check failed; fix the bundle above or rerun with --no-check");
            return Ok(GatedBundle::Refused(ExitCode::Flagged));
        }
        for d in report.diagnostics() {
            eprintln!("# {d}");
        }
    }
    bundle.validate().map_err(|e| format!("{path}: {e}"))?;
    Ok(GatedBundle::Ready(bundle))
}

/// Assembles the [`CheckInput`] the flags describe: the built-in
/// printer graph (or `--arch <file>`), the CGAN shape spec with any
/// width overrides applied, the pipeline numbers, and (for the `check`
/// command itself) any `--bundle` artifact.
fn build_input(args: &ParsedArgs) -> Result<CheckInput, String> {
    build_input_inner(args, true)
}

fn build_input_inner(args: &ParsedArgs, include_bundle: bool) -> Result<CheckInput, String> {
    let cfg = config_from_args(args)?;
    let mut input = cfg.lint_input();

    // Model overrides ride on the config's CGAN spec, so data_dim stays
    // tied to --bins exactly as in the real pipeline. The unchecked
    // constructor matters: describing a broken config is the job here.
    let mut cgan = cfg.cgan_config_unchecked();
    cgan.noise_dim = args
        .get_parsed("noise-dim", cgan.noise_dim)
        .map_err(|e| e.to_string())?;
    cgan.cond_dim = args
        .get_parsed("cond-dim", cgan.cond_dim)
        .map_err(|e| e.to_string())?;
    cgan.disc_steps = args
        .get_parsed("disc-steps", cgan.disc_steps)
        .map_err(|e| e.to_string())?;
    if let Some(raw) = args.get("gen-hidden") {
        cgan.gen_hidden = parse_widths("--gen-hidden", raw)?;
    }
    if let Some(raw) = args.get("disc-hidden") {
        cgan.disc_hidden = parse_widths("--disc-hidden", raw)?;
    }
    input.model = Some(cgan.lint_spec().with_label_cardinality(cfg.encoding.dim()));

    if let Some(pipeline) = input.pipeline.as_mut() {
        pipeline.disc_steps = cgan.disc_steps;
        match args
            .get_parsed::<usize>("threads", 0)
            .map_err(|e| e.to_string())?
        {
            0 => {}
            n => pipeline.threads = Some(n),
        }
        if let Some(path) = args.get("checkpoint") {
            pipeline.checkpoint_paths = vec![path.to_string()];
        }
    }

    // A user-supplied architecture replaces the built-in printer graph
    // and gets the stricter design-time treatment (feedback = error).
    if let Some(path) = args.get("arch") {
        let arch = load_architecture(path)?;
        input.graph = Some(GraphSpec::from_architecture(&arch, true));
        if let Some(pipeline) = input.pipeline.as_mut() {
            pipeline.pair_count = None;
        }
    }

    // A sealed bundle joins the pass inputs. The unchecked load matters:
    // describing an unsupported or tampered bundle is the job here.
    // Config drift (GS0408) is only diagnosed against a config the flags
    // actually pinned — `gansec check --bundle x.json` with no config
    // flags checks the bundle's internal consistency alone.
    let mut loaded_bundle = None;
    if include_bundle {
        if let Some(path) = args.get("bundle") {
            let bundle = ModelBundle::load_unchecked(path).map_err(|e| format!("{path}: {e}"))?;
            let pinned = ["bins", "iters", "h", "gsize", "batch-size"]
                .iter()
                .any(|flag| args.get(flag).is_some());
            input = input.with_bundle(bundle.lint_spec(pinned.then_some(&cfg)));
            loaded_bundle = Some(bundle);
        }
    }
    // `gansec check --precision f32` judges a planned fast-path run even
    // without a bundle (build support alone).
    if args.get("precision").is_some() {
        input = input.with_fastpath(fastpath_spec(args));
    }
    // Likewise, any `--stream-*` flag attaches the streaming-ingest pass
    // (GS09xx) against the numbers a `serve`/`stream` run would use.
    if let Some(stream) = stream_spec(args)? {
        input = input.with_stream(stream);
    }
    // An evidence request needs the bundle it would run against; with
    // no bundle there is no seal to judge, so the flags alone don't
    // attach the pass (GS0803 would fire on every unsealed default).
    if let (Some((kinds, weights)), Some(bundle)) = (evidence_flags(args)?, &loaded_bundle) {
        input = input.with_evidence(bundle.evidence_lint_spec(&kinds, &weights));
    }
    // The deployment-wide join is attached only when it carries more
    // than the dataflow pass derives itself from the bare sections:
    // estimator ranges from a loaded bundle, or a chaos plan's fault
    // kinds. (Without enrichment the pass joins the input on its own.)
    if include_bundle && (loaded_bundle.is_some() || args.get("chaos-plan").is_some()) {
        let deployment = deployment_spec(args, &input, loaded_bundle.as_ref())?;
        input = input.with_deployment(deployment);
    }
    Ok(input)
}

/// Joins every artifact the flags describe — specs already on `input`,
/// the loaded bundle's fitted estimator ranges, and a `--chaos-plan`
/// file's declared fault kinds — into the one [`DeploymentSpec`] the
/// dataflow pass (GS07xx) propagates intervals through.
///
/// The chaos plan is scanned textually for its `"kind"` tags rather
/// than parsed: the full parse (and its error surface) stays with the
/// serve path, while the lint layer stays dependency-free. Known kinds
/// are only claimed when this binary is built with the `chaos` feature,
/// so a plain build never asserts it can inject anything (GS0512
/// already covers serving a plan without the feature).
///
/// # Errors
///
/// Returns a message when the `--chaos-plan` file cannot be read.
pub fn deployment_spec(
    args: &ParsedArgs,
    input: &CheckInput,
    bundle: Option<&ModelBundle>,
) -> Result<DeploymentSpec, String> {
    let mut dep = DeploymentSpec::join(input);
    if let Some(bundle) = bundle {
        dep = dep.with_ranges(bundle.range_spec());
    }
    if let Some(path) = args.get("chaos-plan") {
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        dep = dep.with_chaos_plan(plan_fault_kinds(&source));
        if cfg!(feature = "chaos") {
            dep = dep.with_chaos_known(CHAOS_FAULT_KINDS.iter().map(|k| k.to_string()).collect());
        }
    }
    Ok(dep)
}

/// Extracts every `"kind": "<value>"` tag from a chaos-plan JSON
/// source, order-preserving. Tolerant by construction: anything that
/// does not look like a kind tag is skipped, and a malformed plan then
/// simply declares fewer kinds than it should — the serve path's real
/// parser still owns rejecting it.
fn plan_fault_kinds(source: &str) -> Vec<String> {
    let mut kinds = Vec::new();
    let mut rest = source;
    while let Some(at) = rest.find("\"kind\"") {
        rest = &rest[at + "\"kind\"".len()..];
        let Some(after_colon) = rest.trim_start().strip_prefix(':') else {
            continue;
        };
        let Some(value) = after_colon.trim_start().strip_prefix('"') else {
            continue;
        };
        if let Some(end) = value.find('"') {
            kinds.push(value[..end].to_string());
        }
    }
    kinds
}

/// Parses the multi-evidence request flags: `--evidence kde,disc,recon`
/// (comma list of channel kinds) and `--evidence-weights 0.5,0.3,0.2`
/// (comma list of combination weights, empty = uniform). Returns `None`
/// when no evidence stack was requested.
///
/// The kind strings are passed through raw — the GS08xx lint pass and
/// the engine's `build_evidence` own rejecting unknown kinds, so their
/// richer diagnostics are not pre-empted here.
///
/// # Errors
///
/// Returns a message when a weight fails to parse as a float, or when
/// `--evidence-weights` is given without `--evidence`.
pub fn evidence_flags(args: &ParsedArgs) -> Result<Option<(Vec<String>, Vec<f64>)>, String> {
    let weights = match args.get("evidence-weights") {
        None => Vec::new(),
        Some(raw) => raw
            .split(',')
            .map(|part| {
                part.trim().parse::<f64>().map_err(|_| {
                    format!(
                        "invalid value {part:?} in --evidence-weights (expected e.g. 0.5,0.3,0.2)"
                    )
                })
            })
            .collect::<Result<Vec<f64>, String>>()?,
    };
    match args.get("evidence") {
        Some(raw) => {
            let kinds: Vec<String> = raw
                .split(',')
                .map(|k| k.trim().to_string())
                .filter(|k| !k.is_empty())
                .collect();
            if kinds.is_empty() {
                return Err("--evidence lists no kinds (expected e.g. kde,disc,recon)".into());
            }
            Ok(Some((kinds, weights)))
        }
        None if weights.is_empty() => Ok(None),
        None => Err("--evidence-weights without --evidence names no channels to weight".into()),
    }
}

/// The `--stream-*` value flags shared by `serve`, `stream`, and
/// `check`. (`--stream-recalibrate` is a switch and rides separately.)
pub const STREAM_FLAGS: &[&str] = &[
    "stream-frame-len",
    "stream-hop",
    "stream-max-sessions",
    "stream-max-chunk-samples",
    "stream-idle-timeout-ms",
    "stream-reservoir",
    "stream-warmup",
    "stream-drift-alpha",
];

/// Applies the `--stream-*` flags onto a server configuration — the one
/// parser `serve`, `stream`, and the lint attachments all go through, so
/// the linted numbers are always the served numbers.
///
/// # Errors
///
/// Returns a message when a flag value fails to parse.
pub fn apply_stream_flags(args: &ParsedArgs, config: &mut ServeConfig) -> Result<(), String> {
    config.stream_frame_len = args
        .get_parsed("stream-frame-len", config.stream_frame_len)
        .map_err(|e| e.to_string())?;
    config.stream_hop = args
        .get_parsed("stream-hop", config.stream_hop)
        .map_err(|e| e.to_string())?;
    config.stream_max_sessions = args
        .get_parsed("stream-max-sessions", config.stream_max_sessions)
        .map_err(|e| e.to_string())?;
    config.stream_max_chunk_samples = args
        .get_parsed("stream-max-chunk-samples", config.stream_max_chunk_samples)
        .map_err(|e| e.to_string())?;
    config.stream_idle_timeout_ms = args
        .get_parsed("stream-idle-timeout-ms", config.stream_idle_timeout_ms)
        .map_err(|e| e.to_string())?;
    config.stream_reservoir = args
        .get_parsed("stream-reservoir", config.stream_reservoir)
        .map_err(|e| e.to_string())?;
    config.stream_warmup = args
        .get_parsed("stream-warmup", config.stream_warmup)
        .map_err(|e| e.to_string())?;
    config.stream_drift_alpha = args
        .get_parsed("stream-drift-alpha", config.stream_drift_alpha)
        .map_err(|e| e.to_string())?;
    if args.has_switch("stream-recalibrate") {
        config.stream_recalibrate = true;
    }
    Ok(())
}

/// The streaming-ingest spec the flags describe, or `None` when no
/// `--stream-*` flag was given — `gansec check` with no streaming
/// request must not attach the GS09xx pass against pure defaults, just
/// as `--precision` gates the fast-path pass.
///
/// # Errors
///
/// Returns a message when a flag value fails to parse.
pub fn stream_spec(args: &ParsedArgs) -> Result<Option<StreamSpec>, String> {
    let requested = STREAM_FLAGS.iter().any(|flag| args.get(flag).is_some())
        || args.has_switch("stream-recalibrate");
    if !requested {
        return Ok(None);
    }
    let mut config = ServeConfig::default();
    apply_stream_flags(args, &mut config)?;
    Ok(Some(config.stream_lint_spec()))
}

/// The reduced-precision request the flags describe, against what this
/// binary was built with. The GS06xx pass judges the combination; the
/// hard refusal for an unbuildable request lives in the serve module's
/// precision resolver (it must fire even under `--no-check`).
pub fn fastpath_spec(args: &ParsedArgs) -> FastPathSpec {
    FastPathSpec {
        requested_f32: args.get("precision") == Some("f32"),
        f32_built: cfg!(feature = "f32"),
    }
}

/// The pipeline configuration the flags describe, defaulting to the
/// values the analysis commands actually run with.
fn config_from_args(args: &ParsedArgs) -> Result<PipelineConfig, String> {
    let mut cfg = PipelineConfig::paper_scale();
    cfg.n_bins = args
        .get_parsed("bins", 48usize)
        .map_err(|e| e.to_string())?;
    cfg.train_iterations = args
        .get_parsed("iters", 600usize)
        .map_err(|e| e.to_string())?;
    cfg.h = args.get_parsed("h", cfg.h).map_err(|e| e.to_string())?;
    cfg.gsize = args
        .get_parsed("gsize", cfg.gsize)
        .map_err(|e| e.to_string())?;
    cfg.batch_size = args
        .get_parsed("batch-size", cfg.batch_size)
        .map_err(|e| e.to_string())?;
    Ok(cfg)
}

fn parse_widths(flag: &str, raw: &str) -> Result<Vec<usize>, String> {
    raw.split(',')
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .map_err(|_| format!("invalid value {part:?} in {flag} (expected e.g. 64,64)"))
        })
        .collect()
}

fn load_architecture(path: &str) -> Result<CppsArchitecture, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&source).map_err(|e| format!("{path}: not a CPPS architecture: {e}"))
}

/// Exposed so integration tests can check gating decisions without
/// spawning the binary.
pub fn report_for(args: &ParsedArgs) -> Result<CheckReport, String> {
    Ok(gansec_lint::check(&build_input(args)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(flags: &[&str]) -> ParsedArgs {
        ParsedArgs::parse_with_switches(
            flags.iter().map(|s| s.to_string()),
            &["smoke", "no-check", "strict", "list-codes", "fix-plan"],
        )
        .expect("parse")
    }

    #[test]
    fn format_error_lists_every_supported_renderer() {
        let err = check(&parsed(&["--format", "yaml"])).expect_err("refused");
        assert!(err.contains("text, json, sarif"), "{err}");
    }

    #[test]
    fn list_codes_and_explain_have_their_own_outputs() {
        assert_eq!(check(&parsed(&["--list-codes"])), Ok(ExitCode::Ok));
        assert_eq!(
            check(&parsed(&["--list-codes", "--format", "json"])),
            Ok(ExitCode::Ok)
        );
        // SARIF is a results format; a code listing is not a result set.
        assert!(check(&parsed(&["--list-codes", "--format", "sarif"])).is_err());
        assert_eq!(check(&parsed(&["--explain", "GS0703"])), Ok(ExitCode::Ok));
        assert_eq!(check(&parsed(&["--explain", "703"])), Ok(ExitCode::Ok));
        let err = check(&parsed(&["--explain", "GS9999"])).expect_err("unknown");
        assert!(err.contains("GS9999"), "{err}");
    }

    #[test]
    fn fix_plan_keeps_the_gating_exit_code() {
        // A broken bandwidth gates the run whether or not the output is
        // the patch instead of the listing.
        assert_eq!(
            check(&parsed(&["--fix-plan", "--h", "0"])),
            Ok(ExitCode::Flagged)
        );
        assert_eq!(check(&parsed(&["--fix-plan"])), Ok(ExitCode::Ok));
    }

    #[test]
    fn chaos_plan_kinds_are_scanned_textually() {
        let kinds = plan_fault_kinds(
            r#"{"seed":7,"faults":[
                {"kind":"scorer_panic","at_batch":1},
                { "kind" : "meteor_strike" },
                {"kind":"reload_fail","count":1}
            ]}"#,
        );
        assert_eq!(kinds, vec!["scorer_panic", "meteor_strike", "reload_fail"]);
        assert!(plan_fault_kinds("{}").is_empty());
        // A dangling key without a string value is skipped, not a panic.
        assert!(plan_fault_kinds("\"kind\":42").is_empty());
    }

    #[test]
    fn contradictory_deployment_yields_a_dataflow_error_with_a_fix() {
        use gansec::GanSecPipeline;
        // A bundle sealed with an absurdly narrow bandwidth: every
        // support gap spans thousands of sigmas, so the f32 fast path
        // hard-underflows between samples while f64 stays positive.
        let mut cfg = PipelineConfig::smoke_test();
        cfg.h = 1e-6;
        let bundle = GanSecPipeline::new(cfg)
            .train_stage(5)
            .expect("train")
            .to_bundle();
        let args = parsed(&["--precision", "f32"]);
        let input = CheckInput::new()
            .with_bundle(bundle.lint_spec(None))
            .with_fastpath(fastpath_spec(&args));
        let deployment = deployment_spec(&args, &input, Some(&bundle)).expect("assemble");
        let report = gansec_lint::check(&input.with_deployment(deployment));
        assert!(
            report.has(gansec_lint::codes::DATAFLOW_F32_RANGE_UNDERFLOW),
            "{:?}",
            report.diagnostics()
        );
        assert!(report.should_fail(false));
        let fix = report
            .diagnostics()
            .iter()
            .find(|d| d.code == gansec_lint::codes::DATAFLOW_F32_RANGE_UNDERFLOW)
            .and_then(|d| d.fix.as_ref())
            .expect("GS0703 carries a machine-applicable fix");
        assert_eq!(fix.flag, "--precision");
        assert_eq!(fix.current, "f32");
        assert_eq!(fix.suggested, "f64");
    }

    #[test]
    fn unknown_chaos_kind_gates_only_when_the_build_can_inject() {
        let dir = std::env::temp_dir().join("gansec-cli-chaos-lint-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("plan.json");
        std::fs::write(&path, r#"{"seed":1,"faults":[{"kind":"meteor_strike"}]}"#)
            .expect("write plan");
        let args = parsed(&["--chaos-plan", path.to_str().expect("utf8 path")]);
        let input = CheckInput::new();
        let dep = deployment_spec(&args, &input, None).expect("assemble");
        assert_eq!(dep.chaos_fault_kinds, vec!["meteor_strike"]);
        let report = gansec_lint::check(&input.with_deployment(dep));
        // Without the chaos feature no kinds are claimed as known and
        // GS0707 stays silent (GS0512 owns the feature mismatch); a
        // chaos build refuses the typo'd plan outright.
        assert_eq!(
            report.has(gansec_lint::codes::DATAFLOW_UNKNOWN_CHAOS_FAULT),
            cfg!(feature = "chaos")
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_chaos_plan_file_is_a_real_error() {
        let args = parsed(&["--chaos-plan", "/nonexistent/plan.json"]);
        assert!(deployment_spec(&args, &CheckInput::new(), None).is_err());
    }

    #[test]
    fn default_flags_are_clean() {
        let report = report_for(&parsed(&[])).expect("check");
        assert!(!report.should_fail(false), "{:?}", report.diagnostics());
    }

    #[test]
    fn zero_bandwidth_is_flagged() {
        let report = report_for(&parsed(&["--h", "0"])).expect("check");
        assert!(report.has(gansec_lint::codes::BAD_BANDWIDTH));
        assert!(report.should_fail(false));
    }

    #[test]
    fn hidden_width_lists_parse() {
        assert_eq!(
            parse_widths("--gen-hidden", "64, 32").expect("ok"),
            vec![64, 32]
        );
        assert!(parse_widths("--gen-hidden", "64,x").is_err());
    }

    #[test]
    fn stream_flags_attach_the_gs09_pass_only_when_given() {
        // No stream flags: no spec, no GS09xx attachment.
        assert_eq!(stream_spec(&parsed(&[])).expect("parses"), None);

        // A hop wider than the analysis window gates the run.
        let report = report_for(&parsed(&[
            "--stream-frame-len",
            "256",
            "--stream-hop",
            "512",
        ]))
        .expect("check");
        assert!(report.has(gansec_lint::codes::STREAM_WINDOW_BELOW_HOP));
        assert!(report.should_fail(false));

        // The same numbers through the one shared parser.
        let spec = stream_spec(&parsed(&["--stream-hop", "256"]))
            .expect("parses")
            .expect("requested");
        assert_eq!(spec.hop, 256);
        assert_eq!(
            spec.frame_len,
            ServeConfig::default().stream_frame_len,
            "unset flags keep the serve defaults"
        );

        // Junk values are parse errors, not silent defaults.
        assert!(stream_spec(&parsed(&["--stream-warmup", "many"])).is_err());
    }

    #[test]
    fn zero_noise_dim_is_flagged() {
        let report = report_for(&parsed(&["--noise-dim", "0"])).expect("check");
        assert!(report.has(gansec_lint::codes::ZERO_DIM));
    }

    #[test]
    fn evidence_flags_parse_lists_and_reject_orphans() {
        assert_eq!(evidence_flags(&parsed(&[])).expect("none"), None);
        let (kinds, weights) = evidence_flags(&parsed(&["--evidence", "kde, disc,recon"]))
            .expect("parses")
            .expect("requested");
        assert_eq!(kinds, vec!["kde", "disc", "recon"]);
        assert!(weights.is_empty());
        let (_, weights) = evidence_flags(&parsed(&[
            "--evidence",
            "kde,disc",
            "--evidence-weights",
            "0.7, 0.3",
        ]))
        .expect("parses")
        .expect("requested");
        assert_eq!(weights, vec![0.7, 0.3]);

        let err = evidence_flags(&parsed(&["--evidence-weights", "0.5"])).expect_err("orphan");
        assert!(err.contains("--evidence"), "{err}");
        let err = evidence_flags(&parsed(&["--evidence", "kde", "--evidence-weights", "x"]))
            .expect_err("junk weight");
        assert!(err.contains("evidence-weights"), "{err}");
        let err = evidence_flags(&parsed(&["--evidence", " , "])).expect_err("empty list");
        assert!(err.contains("no kinds"), "{err}");
    }

    #[test]
    fn evidence_request_attaches_the_gs08_pass_against_the_bundle() {
        use gansec::GanSecPipeline;
        // Offline stub builds ship a serde_json that cannot round-trip
        // the bundle file this test pivots on.
        if serde_json::from_str::<serde_json::Value>("null").is_err() {
            return;
        }
        let dir = std::env::temp_dir().join("gansec-cli-evidence-lint-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("bundle.json");
        GanSecPipeline::new(PipelineConfig::smoke_test())
            .train_stage(5)
            .expect("train")
            .to_bundle()
            .save(&path)
            .expect("save");
        let p = path.to_str().expect("utf8 path");

        // A sealed v2 bundle honors the full request cleanly.
        let report =
            report_for(&parsed(&["--bundle", p, "--evidence", "kde,disc,recon"])).expect("check");
        assert!(!report.should_fail(true), "{:?}", report.diagnostics());

        // Degenerate weights gate the run (GS0801).
        let report = report_for(&parsed(&[
            "--bundle",
            p,
            "--evidence",
            "kde,disc",
            "--evidence-weights",
            "0,0",
        ]))
        .expect("check");
        assert!(report.has(gansec_lint::codes::EVIDENCE_WEIGHTS_NOT_NORMALIZABLE));
        assert!(report.should_fail(false));

        // A typo'd kind is refused before any scoring (GS0806).
        let report =
            report_for(&parsed(&["--bundle", p, "--evidence", "astrology"])).expect("check");
        assert!(report.has(gansec_lint::codes::EVIDENCE_UNKNOWN_KIND));

        // Without a bundle the flags alone attach nothing: no seal to
        // judge, so no GS08xx false positives.
        let report = report_for(&parsed(&["--evidence", "disc"])).expect("check");
        assert!(
            !report.has(gansec_lint::codes::EVIDENCE_NOT_SEALED),
            "{:?}",
            report.diagnostics()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bundle_flag_attaches_the_bundle_pass() {
        use gansec::GanSecPipeline;
        let dir = std::env::temp_dir().join("gansec-cli-check-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("bundle.json");
        let bundle = GanSecPipeline::new(PipelineConfig::smoke_test())
            .train_stage(5)
            .expect("train")
            .to_bundle();
        bundle.save(&path).expect("save");
        let p = path.to_str().expect("utf8 path");

        // No config flags: internal consistency alone, and a healthy
        // bundle is clean even under --strict.
        let report = report_for(&parsed(&["--bundle", p])).expect("check");
        assert!(!report.should_fail(true), "{:?}", report.diagnostics());

        // Pinning a config that differs from the sealed one is drift:
        // a warning, so it gates only under --strict.
        let report = report_for(&parsed(&["--bundle", p, "--bins", "48"])).expect("check");
        assert!(report.has(gansec_lint::codes::BUNDLE_CONFIG_DRIFT));
        assert!(!report.should_fail(false));
        assert!(report.should_fail(true));

        // A tampered schema version is an error — the unchecked load
        // must still parse it so the pass can say why it is unusable.
        let tampered = dir.join("tampered.json");
        let mut broken = ModelBundle::load_unchecked(&path).expect("reload");
        broken.schema_version = 99;
        std::fs::write(&tampered, broken.to_json().expect("json")).expect("write");
        let report = report_for(&parsed(&[
            "--bundle",
            tampered.to_str().expect("utf8 path"),
        ]))
        .expect("check");
        assert!(report.has(gansec_lint::codes::BUNDLE_VERSION_MISMATCH));
        assert!(report.should_fail(false));

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&tampered).ok();
    }
}
