//! The `gansec bench` subcommand: a pinned-seed macro-benchmark tracking
//! the perf trajectory of the hot kernels and the Algorithm 1-3 pipeline.
//!
//! Writes `BENCH_pipeline.json` (schema below) so successive PRs can
//! compare like-for-like numbers. `--smoke` shrinks every workload to
//! validate the schema and plumbing in well under a second — CI runs
//! that mode, where timing noise must not gate the build.
//!
//! The JSON is assembled with `format!` so the report stays dependency-
//! free; the schema is pinned by `SCHEMA_VERSION` and the
//! `bench_smoke_schema` test.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use gansec::{GanSecPipeline, LikelihoodAnalysis, PipelineConfig, SecurityModel};
use gansec_dsp::{
    fft, Complex, CwtPlan, FeatureExtractor, FftPlan, FrequencyBins, MorletCwt, PlanCache,
    ScalingKind,
};
use gansec_tensor::Matrix;

use crate::{ExitCode, ParsedArgs};

/// Bumped whenever a field is added, removed, or renamed.
///
/// v2: added the `fft` and `cwt` planned-vs-unplanned sections,
/// `features.planned_extract_ms` (with `frames_per_sec` now measuring
/// the warm planned path — the steady-state streaming number), and the
/// `engine` f64/f32 scoring section.
///
/// v3: added the `--stream` report (`bench_results/BENCH_stream.json`):
/// sessionful chunked ingest→verdict latency percentiles plus the
/// transforms-per-hop invariant of the incremental CWT.
pub const SCHEMA_VERSION: u32 = 3;

/// Pinned seed: every run of the same binary benches the same workload.
const BENCH_SEED: u64 = 42;

/// Runs the macro-benchmark and writes the JSON report.
///
/// Flags: `--smoke` (tiny workloads, schema validation only), `--out
/// <file>` (default `BENCH_pipeline.json`; `BENCH_serve.json` with
/// `--serve`; `bench_results/BENCH_detect.json` with `--detect`),
/// `--serve` (bench the HTTP serving layer against an in-process
/// server instead of the kernels), `--detect` (bench detection quality:
/// per-attack ROC/AUC of every evidence channel over the frame-attack
/// roster), `--threads <n>` (handled globally in `main`, echoed into
/// the report).
///
/// # Errors
///
/// Returns a message if the report file cannot be written or the
/// workload fails to build.
pub fn bench(args: &ParsedArgs) -> Result<ExitCode, String> {
    let smoke = args.has_switch("smoke");
    let (report, default_out) = if args.has_switch("detect") {
        (run_detect(smoke)?, "bench_results/BENCH_detect.json")
    } else if args.has_switch("stream") {
        (run_stream(smoke)?, "bench_results/BENCH_stream.json")
    } else if args.has_switch("serve") {
        (run_serve(smoke)?, "BENCH_serve.json")
    } else {
        (run(smoke)?, "BENCH_pipeline.json")
    };
    let out_path = args.get("out").unwrap_or(default_out);
    if let Some(parent) = std::path::Path::new(out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(out_path, &report).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!("wrote {out_path}");
    Ok(ExitCode::Ok)
}

/// Benches the serving layer: seals a pinned-seed smoke engine, starts
/// an in-process [`gansec_serve::Server`] on an ephemeral port, and
/// drives it with the closed-loop load generator.
///
/// # Errors
///
/// Returns a message when training, serving, or the load run fails
/// (including JSON-stub environments where request bodies cannot be
/// built).
pub fn run_serve(smoke: bool) -> Result<String, String> {
    use gansec_serve::{loadgen, ServeConfig, Server};

    let cfg = workload(smoke);
    let pipeline = GanSecPipeline::new(cfg);
    let stage = pipeline
        .train_stage(BENCH_SEED)
        .map_err(|e| e.to_string())?;
    let engine = gansec_engine::ScoringEngine::from_bundle(stage.to_bundle());
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServeConfig::default()
        },
        gansec_engine::ScoringEngine::from_bundle(stage.to_bundle()),
        "bench-in-process",
    )?;
    let opts = loadgen::LoadgenOptions {
        clients: 4,
        requests_per_client: if smoke { 5 } else { 100 },
        frames_per_request: 16,
        max_retries: 4,
    };
    let outcome = loadgen::run(server.addr(), &engine, &opts);
    server.shutdown();
    let report = outcome?;
    Ok(format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"mode\":\"{mode}\",\"seed\":{BENCH_SEED},{}\n",
        report.to_json(&opts).strip_prefix('{').unwrap_or_default(),
        mode = if smoke { "smoke" } else { "full" },
    ))
}

/// Benches the streaming ingest layer: seals a pinned-seed engine,
/// starts an in-process server, and drives one session with a long
/// deterministic signal in fixed-size chunks, timing each ingest→verdict
/// round trip. Reports p50/p99 latency and the incremental extractor's
/// transforms-per-hop ratio — and *fails* if that ratio exceeds 1, since
/// more than one CWT transform per hop block means the streaming front
/// end has regressed to re-transforming old samples.
///
/// # Errors
///
/// Returns a message when training or serving fails, a request is
/// rejected (including JSON-stub environments), or the transform
/// invariant is violated.
pub fn run_stream(smoke: bool) -> Result<String, String> {
    use gansec_serve::api::{StreamCloseResponse, StreamIngestRequest, StreamStatsResponse};
    use gansec_serve::{client, ServeConfig, Server};

    // The stream bench measures real HTTP round trips, so it needs a
    // working JSON deserializer; bail before spending time on training.
    if serde_json::from_str::<serde_json::Value>("null").is_err() {
        return Err(
            "json failure: this build has no real JSON parser; the streaming bench round-trips \
             HTTP bodies and cannot run here"
                .to_string(),
        );
    }

    let cfg = workload(smoke);
    let pipeline = GanSecPipeline::new(cfg);
    let stage = pipeline
        .train_stage(BENCH_SEED)
        .map_err(|e| e.to_string())?;
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    };
    let hop = config.stream_hop.max(1);
    let server = Server::start(
        config,
        gansec_engine::ScoringEngine::from_bundle(stage.to_bundle()),
        "bench-in-process",
    )?;
    let addr = server.addr();

    let fs = 16_000.0;
    let n = if smoke { 8_192 } else { 160_000 };
    let chunk = 2_048;
    let signal = bench_signal(n, fs);
    // The held-out split's first condition row: guaranteed encodable
    // under the sealed bundle, so scoring exercises the real KDE path.
    if stage.test().is_empty() {
        return Err("bench workload produced no held-out frames".to_string());
    }
    let cond: Vec<f64> = stage.test().conds().row(0).to_vec();

    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut frames = 0usize;
    for piece in signal.chunks(chunk) {
        let body = serde_json::to_vec(&StreamIngestRequest {
            samples: piece.to_vec(),
            cond: cond.clone(),
            sample_rate: fs,
        })
        .map_err(|e| e.to_string())?;
        let t = Instant::now();
        let reply = client::post(addr, "/v1/stream/bench/samples", &body)?;
        latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
        if reply.status != 200 {
            server.shutdown();
            return Err(format!(
                "stream bench ingest rejected with {}: {}",
                reply.status,
                String::from_utf8_lossy(&reply.body)
            ));
        }
        let parsed: gansec_serve::api::StreamIngestResponse =
            serde_json::from_slice(&reply.body).map_err(|e| e.to_string())?;
        frames += parsed.scores.len();
    }
    let stats = client::get(addr, "/v1/stream/bench/stats")?;
    let stats: StreamStatsResponse =
        serde_json::from_slice(&stats.body).map_err(|e| e.to_string())?;
    let close = client::post(addr, "/v1/stream/bench/close", b"")?;
    let close: StreamCloseResponse =
        serde_json::from_slice(&close.body).map_err(|e| e.to_string())?;
    frames += close.scores.len();
    server.shutdown();

    let hops = (n as u64).div_ceil(hop as u64);
    let transforms_per_hop = stats.transforms as f64 / hops.max(1) as f64;
    if transforms_per_hop > 1.0 {
        return Err(format!(
            "incremental extractor regressed: {} transforms for {hops} hop blocks \
             (transforms_per_hop {transforms_per_hop:.3} > 1)",
            stats.transforms
        ));
    }
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let pick = |p: f64| -> f64 {
        match latencies_ms.len() {
            0 => 0.0,
            len => latencies_ms[(((len - 1) as f64) * p).round() as usize],
        }
    };
    let total_ms: f64 = latencies_ms.iter().sum();
    Ok(format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"mode\": \"{mode}\",\n  \"seed\": {BENCH_SEED},\n  \"samples\": {n},\n  \"chunk\": {chunk},\n  \"requests\": {requests},\n  \"frames\": {frames},\n  \"transforms\": {transforms},\n  \"hops\": {hops},\n  \"transforms_per_hop\": {transforms_per_hop:.4},\n  \"ingest_p50_ms\": {p50:.3},\n  \"ingest_p99_ms\": {p99:.3},\n  \"throughput_frames_per_sec\": {fps:.1}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        requests = latencies_ms.len(),
        transforms = stats.transforms,
        p50 = pick(0.50),
        p99 = pick(0.99),
        fps = frames as f64 / (total_ms / 1e3).max(1e-12),
    ))
}

/// Benches detection *quality* instead of speed: seals a pinned-seed
/// bundle (v2, with the evidence seal), replays the held-out split
/// through the [`gansec_amsim::FrameAttacker`] roster, and reports
/// per-attack ROC/AUC for every evidence channel plus the combined
/// stack. Higher is better; 0.5 is a blind channel.
///
/// The headline number this report exists to track: on the
/// marginal-preserving `kde_evading_injection` attack the KDE channel
/// is near-blind by construction, and the combined stack's AUC must
/// stay above it — the whole point of multi-evidence scoring.
///
/// # Errors
///
/// Returns a message when training fails or a scored batch turns
/// non-finite.
pub fn run_detect(smoke: bool) -> Result<String, String> {
    use gansec_amsim::{FrameAttackKind, FrameAttacker};
    use gansec_engine::EvidenceKind;

    let cfg = workload(smoke);
    let pipeline = GanSecPipeline::new(cfg);
    let stage = pipeline
        .train_stage(BENCH_SEED)
        .map_err(|e| e.to_string())?;
    let engine = gansec_engine::ScoringEngine::from_bundle(stage.to_bundle());
    let kinds = [EvidenceKind::Kde, EvidenceKind::Disc, EvidenceKind::Recon];
    let build = engine
        .build_evidence(&kinds, &[])
        .map_err(|e| e.to_string())?;

    let features = stage.test().features();
    let conds = stage.test().conds();
    let frames = features.rows();
    if frames == 0 {
        return Err("bench workload produced no held-out frames".to_string());
    }
    let benign_rows: Vec<Vec<f64>> = (0..frames).map(|r| features.row(r).to_vec()).collect();
    let cond_rows: Vec<Vec<f64>> = (0..frames).map(|r| conds.row(r).to_vec()).collect();
    let benign = engine
        .detect_frames_detailed(features, conds, &build.stack)
        .map_err(|e| e.to_string())?;

    let attacker = FrameAttacker::new(BENCH_SEED);
    let mut sections = Vec::new();
    for kind in FrameAttackKind::roster() {
        let (a_frames, a_conds) = attacker.apply(kind, &benign_rows, &cond_rows);
        let af = Matrix::from_fn(frames, features.cols(), |r, c| a_frames[r][c]);
        let ac = Matrix::from_fn(frames, conds.cols(), |r, c| a_conds[r][c]);
        let attacked = engine
            .detect_frames_detailed(&af, &ac, &build.stack)
            .map_err(|e| format!("{}: {e}", kind.name()))?;
        let channel = |k: EvidenceKind| {
            let at = kinds.iter().position(|&x| x == k).expect("roster kind");
            auc(&benign.per_evidence[at], &attacked.per_evidence[at])
        };
        sections.push(format!(
            "{{ \"attack\": \"{name}\", \"frames\": {frames}, \"auc\": {{ \"kde\": {kde:.4}, \"disc\": {disc:.4}, \"recon\": {recon:.4}, \"combined\": {combined:.4} }} }}",
            name = kind.name(),
            kde = channel(EvidenceKind::Kde),
            disc = channel(EvidenceKind::Disc),
            recon = channel(EvidenceKind::Recon),
            combined = auc(&benign.combined, &attacked.combined),
        ));
    }
    Ok(format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"mode\": \"{mode}\",\n  \"seed\": {BENCH_SEED},\n  \"attacks\": [\n    {}\n  ]\n}}\n",
        sections.join(",\n    "),
        mode = if smoke { "smoke" } else { "full" },
    ))
}

/// Area under the ROC curve by the rank statistic: the probability a
/// benign frame outscores an attacked one (ties count half). Scores
/// are oriented higher-is-benign, so 1.0 is perfect separation and 0.5
/// is a coin flip.
fn auc(benign: &[f64], attacked: &[f64]) -> f64 {
    let mut wins = 0.0;
    for &b in benign {
        for &a in attacked {
            if b > a {
                wins += 1.0;
            } else if b == a {
                wins += 0.5;
            }
        }
    }
    wins / (benign.len() * attacked.len()).max(1) as f64
}

/// Runs every section and renders the JSON document.
pub fn run(smoke: bool) -> Result<String, String> {
    let threads = gansec_parallel::threads();
    let hardware = std::thread::available_parallelism().map_or(1, usize::from);

    let matmul = bench_matmul(smoke);
    let train = bench_train_step(smoke)?;
    let analyze = bench_analyze(smoke)?;
    let fft = bench_fft(smoke);
    let cwt = bench_cwt(smoke);
    let features = bench_features(smoke);
    let engine = bench_engine(smoke)?;

    Ok(format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"mode\": \"{mode}\",\n  \"seed\": {BENCH_SEED},\n  \"threads\": {threads},\n  \"available_parallelism\": {hardware},\n  \"parallel_feature\": {parallel},\n  \"matmul\": {matmul},\n  \"train_step\": {train},\n  \"analyze\": {analyze},\n  \"fft\": {fft},\n  \"cwt\": {cwt},\n  \"features\": {features},\n  \"engine\": {engine}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        parallel = gansec_parallel::parallel_enabled(),
    ))
}

/// Milliseconds elapsed by the fastest of `reps` runs of `f` (best-of
/// timing rejects scheduler noise better than averaging).
fn best_of_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// The seed kernel this PR replaced: materialized transpose plus an
/// index-arithmetic ikj product with a zero-skip branch per inner
/// product. Kept here as the fixed baseline the fused kernels are
/// measured against.
fn seed_transpose_matmul(x: &Matrix, g: &Matrix) -> Matrix {
    let xt = x.transpose();
    let (rows, inner, cols) = (xt.rows(), xt.cols(), g.cols());
    let mut out = vec![0.0; rows * cols];
    let a = xt.as_slice();
    let b = g.as_slice();
    for i in 0..rows {
        let out_row = i * cols;
        for k in 0..inner {
            let av = a[i * inner + k];
            if av == 0.0 {
                continue;
            }
            let b_row = k * cols;
            for j in 0..cols {
                out[out_row + j] += av * b[b_row + j];
            }
        }
    }
    Matrix::from_vec(rows, cols, out).expect("shape by construction")
}

/// Backprop-shaped product at CGAN layer sizes: `xᵀ·g` with a 32-row
/// batch, 103-wide input (100 features + 3 conditions) and 128-wide
/// hidden layer.
fn bench_matmul(smoke: bool) -> String {
    let (m, k, n, reps) = if smoke {
        (8, 13, 16, 2)
    } else {
        (32, 103, 128, 400)
    };
    let x = Matrix::from_fn(m, k, |r, c| ((r * k + c) as f64 * 0.618).sin());
    let g = Matrix::from_fn(m, n, |r, c| ((r * n + c) as f64 * 0.414).cos());

    let naive_ms = best_of_ms(reps, || {
        std::hint::black_box(seed_transpose_matmul(
            std::hint::black_box(&x),
            std::hint::black_box(&g),
        ));
    });
    let fused_ms = best_of_ms(reps, || {
        std::hint::black_box(
            std::hint::black_box(&x)
                .matmul_transpose_a(std::hint::black_box(&g))
                .expect("shapes match"),
        );
    });
    format!(
        "{{ \"m\": {m}, \"k\": {k}, \"n\": {n}, \"reps\": {reps}, \"seed_transpose_ms\": {naive_ms:.6}, \"fused_ms\": {fused_ms:.6}, \"speedup\": {:.3} }}",
        naive_ms / fused_ms.max(1e-12)
    )
}

/// A small simulated side-channel workload shared by the macro sections.
fn workload(smoke: bool) -> PipelineConfig {
    let mut cfg = PipelineConfig::smoke_test();
    if smoke {
        cfg.train_iterations = 5;
        cfg.gsize = 10;
    } else {
        cfg.n_bins = 48;
        cfg.moves_per_axis = 4;
        cfg.train_iterations = 150;
        cfg.gsize = 400;
        cfg.n_top_features = 4;
    }
    cfg
}

/// Algorithm 2 throughput: wall time of a fixed training run.
fn bench_train_step(smoke: bool) -> Result<String, String> {
    let cfg = workload(smoke);
    let pipeline = GanSecPipeline::new(cfg.clone());
    let t = Instant::now();
    let outcome = pipeline.run(BENCH_SEED).map_err(|e| e.to_string())?;
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let iters = outcome.history.len();
    Ok(format!(
        "{{ \"iterations\": {iters}, \"pipeline_ms\": {ms:.3}, \"steps_per_sec\": {:.2} }}",
        iters as f64 / (ms / 1e3).max(1e-12)
    ))
}

/// Algorithm 3 wall time, serial vs. the configured thread count.
fn bench_analyze(smoke: bool) -> Result<String, String> {
    let cfg = workload(smoke);
    let pipeline = GanSecPipeline::new(cfg.clone());
    let outcome = pipeline.run(BENCH_SEED).map_err(|e| e.to_string())?;
    let model: SecurityModel = outcome.model;
    let test = outcome.test;
    let top = outcome.train.top_feature_indices(cfg.n_top_features);
    let analysis = LikelihoodAnalysis::new(cfg.h, cfg.gsize, top);

    let requested = gansec_parallel::threads();
    let reps = if smoke { 1 } else { 3 };
    gansec_parallel::set_threads(1);
    let serial_ms = best_of_ms(reps, || {
        let mut rng = StdRng::seed_from_u64(BENCH_SEED);
        std::hint::black_box(analysis.analyze(&model, &test, &mut rng));
    });
    gansec_parallel::set_threads(requested);
    let parallel_ms = best_of_ms(reps, || {
        let mut rng = StdRng::seed_from_u64(BENCH_SEED);
        std::hint::black_box(analysis.analyze(&model, &test, &mut rng));
    });
    gansec_parallel::set_threads(0);

    Ok(format!(
        "{{ \"test_frames\": {frames}, \"gsize\": {gsize}, \"features\": {features}, \"serial_ms\": {serial_ms:.3}, \"parallel_ms\": {parallel_ms:.3}, \"threads\": {requested}, \"speedup\": {speedup:.3} }}",
        frames = test.len(),
        gsize = cfg.gsize,
        features = cfg.n_top_features,
        speedup = serial_ms / parallel_ms.max(1e-12),
    ))
}

/// The deterministic multi-tone bench signal (no RNG: identical across
/// runs).
fn bench_signal(n: usize, fs: f64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64 / fs;
            (std::f64::consts::TAU * 440.0 * t).sin()
                + 0.5 * (std::f64::consts::TAU * 1320.0 * t).sin()
        })
        .collect()
}

/// Planned vs. unplanned forward FFT at a streaming-frame-like length.
fn bench_fft(smoke: bool) -> String {
    let (n, reps) = if smoke { (1024, 2) } else { (16_384, 200) };
    let x: Vec<Complex> = (0..n)
        .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
        .collect();
    let unplanned_ms = best_of_ms(reps, || {
        std::hint::black_box(fft(std::hint::black_box(&x)));
    });
    let plan = FftPlan::new(n);
    let mut buf = x.clone();
    let planned_ms = best_of_ms(reps, || {
        buf.copy_from_slice(&x);
        plan.forward(std::hint::black_box(&mut buf));
    });
    std::hint::black_box(&buf);
    format!(
        "{{ \"n\": {n}, \"reps\": {reps}, \"unplanned_ms\": {unplanned_ms:.6}, \"planned_ms\": {planned_ms:.6}, \"speedup\": {:.3} }}",
        unplanned_ms / planned_ms.max(1e-12)
    )
}

/// Planned vs. unplanned Morlet CWT at the feature-extraction shape.
fn bench_cwt(smoke: bool) -> String {
    let (n_bins, n, reps) = if smoke { (8, 2048, 1) } else { (48, 16_000, 3) };
    let fs = 16_000.0;
    let signal = bench_signal(n, fs);
    let cwt = MorletCwt::standard(FrequencyBins::log_spaced(n_bins, 50.0, 5000.0).centers());
    let unplanned_ms = best_of_ms(reps, || {
        std::hint::black_box(cwt.transform(std::hint::black_box(&signal), fs));
    });
    let t = Instant::now();
    let plan = CwtPlan::new(&cwt, n, fs);
    let plan_build_ms = t.elapsed().as_secs_f64() * 1e3;
    let planned_ms = best_of_ms(reps, || {
        std::hint::black_box(plan.transform(std::hint::black_box(&signal)));
    });
    format!(
        "{{ \"samples\": {n}, \"bins\": {n_bins}, \"reps\": {reps}, \"unplanned_ms\": {unplanned_ms:.3}, \"plan_build_ms\": {plan_build_ms:.3}, \"planned_ms\": {planned_ms:.3}, \"speedup\": {:.3} }}",
        unplanned_ms / planned_ms.max(1e-12)
    )
}

/// CWT feature-extraction throughput in frames per second.
///
/// `extract_ms` times the unplanned per-call path; `planned_extract_ms`
/// times the planned front end against a warm [`PlanCache`], and
/// `frames_per_sec` reports that steady-state streaming number.
fn bench_features(smoke: bool) -> String {
    let (n_bins, seconds) = if smoke { (8, 0.5) } else { (48, 4.0) };
    let fs = 16_000.0;
    let n = (fs * seconds) as usize;
    let signal = bench_signal(n, fs);
    let fx = FeatureExtractor::new(
        FrequencyBins::log_spaced(n_bins, 50.0, 5000.0),
        1024,
        512,
        ScalingKind::MinMax,
    );
    let reps = if smoke { 1 } else { 3 };
    let mut frames = 0usize;
    let ms = best_of_ms(reps, || {
        let fm = fx.extract(std::hint::black_box(&signal), fs);
        frames = fm.n_rows();
        std::hint::black_box(fm);
    });
    let plans = PlanCache::new();
    // Warm the cache first: steady-state cost is what streaming pays.
    std::hint::black_box(fx.extract_planned(&signal, fs, &plans));
    let planned_ms = best_of_ms(reps, || {
        std::hint::black_box(fx.extract_planned(std::hint::black_box(&signal), fs, &plans));
    });
    format!(
        "{{ \"samples\": {n}, \"bins\": {n_bins}, \"frames\": {frames}, \"extract_ms\": {ms:.3}, \"planned_extract_ms\": {planned_ms:.3}, \"frames_per_sec\": {:.1} }}",
        frames as f64 / (planned_ms / 1e3).max(1e-12)
    )
}

/// Engine batch-scoring wall time over the bundle's held-out split:
/// the f64 reference path always, the f32 fast path when this binary
/// was built with the `f32` feature (`null` otherwise, keeping the
/// schema stable across builds).
fn bench_engine(smoke: bool) -> Result<String, String> {
    let cfg = workload(smoke);
    let pipeline = GanSecPipeline::new(cfg);
    let stage = pipeline
        .train_stage(BENCH_SEED)
        .map_err(|e| e.to_string())?;
    let mut engine = gansec_engine::ScoringEngine::from_bundle(stage.to_bundle());
    let features = stage.test().features().clone();
    let conditions = stage.test().conds().clone();
    if features.rows() == 0 {
        return Err("bench workload produced no held-out frames".to_string());
    }
    let frames = features.rows();
    let reps = if smoke { 1 } else { 5 };
    let f64_ms = best_of_ms(reps, || {
        let scores = engine.score_frames(
            std::hint::black_box(&features),
            std::hint::black_box(&conditions),
        );
        let _ = std::hint::black_box(scores);
    });
    let f32_ms = bench_engine_f32(&mut engine, &features, &conditions, reps);
    Ok(format!(
        "{{ \"frames\": {frames}, \"reps\": {reps}, \"score_f64_ms\": {f64_ms:.3}, \"score_f32_ms\": {f32_ms} }}",
    ))
}

#[cfg(feature = "f32")]
fn bench_engine_f32(
    engine: &mut gansec_engine::ScoringEngine,
    features: &Matrix,
    conditions: &Matrix,
    reps: usize,
) -> String {
    engine.set_precision(gansec_engine::Precision::F32);
    let ms = best_of_ms(reps, || {
        let scores = engine.score_frames(
            std::hint::black_box(features),
            std::hint::black_box(conditions),
        );
        let _ = std::hint::black_box(scores);
    });
    engine.set_precision(gansec_engine::Precision::F64);
    format!("{ms:.3}")
}

#[cfg(not(feature = "f32"))]
fn bench_engine_f32(
    _engine: &mut gansec_engine::ScoringEngine,
    _features: &Matrix,
    _conditions: &Matrix,
    _reps: usize,
) -> String {
    "null".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke_schema() {
        let json = run(true).unwrap();
        // Every schema key must appear; a rename without a version bump
        // breaks the perf trajectory.
        for key in [
            "\"schema_version\"",
            "\"mode\"",
            "\"seed\"",
            "\"threads\"",
            "\"available_parallelism\"",
            "\"parallel_feature\"",
            "\"matmul\"",
            "\"speedup\"",
            "\"train_step\"",
            "\"steps_per_sec\"",
            "\"analyze\"",
            "\"serial_ms\"",
            "\"parallel_ms\"",
            "\"fft\"",
            "\"unplanned_ms\"",
            "\"planned_ms\"",
            "\"cwt\"",
            "\"plan_build_ms\"",
            "\"features\"",
            "\"extract_ms\"",
            "\"planned_extract_ms\"",
            "\"frames_per_sec\"",
            "\"engine\"",
            "\"score_f64_ms\"",
            "\"score_f32_ms\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"mode\": \"smoke\""));
        assert!(json.contains("\"schema_version\": 3"));
        // Balanced braces: structurally valid JSON for this flat schema.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn serve_bench_smoke_schema() {
        // Offline stub serde_json cannot round-trip request bodies; the
        // requests all fail but the bench itself must not panic.
        if serde_json::from_str::<serde_json::Value>("null").is_err() {
            drop(run_serve(true));
            return;
        }
        let json = run_serve(true).unwrap();
        for key in [
            "\"schema_version\"",
            "\"mode\":\"smoke\"",
            "\"clients\"",
            "\"max_retries\"",
            "\"ok_requests\"",
            "\"retries\"",
            "\"retried_requests\"",
            "\"frames_scored\"",
            "\"throughput_fps\"",
            "\"p50_ms\"",
            "\"p99_ms\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn stream_bench_smoke_schema() {
        // Offline stub serde_json cannot round-trip request bodies; the
        // bench must error out rather than panic in that environment.
        if serde_json::from_str::<serde_json::Value>("null").is_err() {
            drop(run_stream(true));
            return;
        }
        let json = run_stream(true).unwrap();
        for key in [
            "\"schema_version\": 3",
            "\"mode\": \"smoke\"",
            "\"seed\"",
            "\"samples\"",
            "\"chunk\"",
            "\"requests\"",
            "\"frames\"",
            "\"transforms\"",
            "\"hops\"",
            "\"transforms_per_hop\"",
            "\"ingest_p50_ms\"",
            "\"ingest_p99_ms\"",
            "\"throughput_frames_per_sec\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // The invariant the report exists to pin: at most one transform
        // per hop block, already enforced inside run_stream.
        let ratio_at = json.find("\"transforms_per_hop\": ").expect("key") + 23;
        let ratio: f64 = json[ratio_at..ratio_at + 6].parse().expect("ratio parses");
        assert!(ratio <= 1.0, "transforms_per_hop {ratio} > 1");
    }

    #[test]
    fn detect_bench_smoke_schema() {
        let json = run_detect(true).unwrap();
        for key in [
            "\"schema_version\"",
            "\"mode\": \"smoke\"",
            "\"seed\"",
            "\"attacks\"",
            "\"kde_evading_injection\"",
            "\"replay\"",
            "\"partial_axis_spoof\"",
            "\"acoustic_masking\"",
            "\"sensor_dropout\"",
            "\"frames\"",
            "\"auc\"",
            "\"kde\"",
            "\"disc\"",
            "\"recon\"",
            "\"combined\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // AUC is a probability on every channel of every section.
        for chunk in json.split("\"combined\": ").skip(1) {
            let value: f64 = chunk[..6].trim_end_matches(' ').parse().unwrap();
            assert!((0.0..=1.0).contains(&value), "AUC out of range: {value}");
        }
    }

    #[test]
    fn auc_is_the_rank_statistic() {
        assert_eq!(auc(&[2.0, 3.0], &[0.0, 1.0]), 1.0);
        assert_eq!(auc(&[0.0, 1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(auc(&[1.0], &[1.0]), 0.5);
        assert_eq!(auc(&[1.0, 3.0], &[2.0, 2.0]), 0.5);
    }

    #[test]
    fn seed_baseline_matches_fused_kernel() {
        let x = Matrix::from_fn(6, 5, |r, c| (r as f64 - c as f64) * 0.3);
        let g = Matrix::from_fn(6, 4, |r, c| (r * 4 + c) as f64 * 0.1);
        let baseline = seed_transpose_matmul(&x, &g);
        let fused = x.matmul_transpose_a(&g).unwrap();
        for (a, b) in baseline.as_slice().iter().zip(fused.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
