//! End-to-end tests of the `gansec` binary via `std::process`.

use std::io::Write;
use std::process::Command;

fn gansec() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gansec"))
}

fn write_gcode(name: &str, source: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("gansec_cli_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create gcode");
    f.write_all(source.as_bytes()).expect("write gcode");
    path
}

const BENIGN: &str = "G90\nG1 F1200 X20\nG1 X0\nG1 Y20\nG1 Y0\nG1 F120 Z2\nG1 Z0\n";
const SWAPPED: &str = "G90\nG1 F1200 Y20\nG1 Y0\nG1 X20\nG1 X0\nG1 F120 Z2\nG1 Z0\n";

#[test]
fn help_prints_usage_and_exits_zero() {
    let out = gansec().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("audit"));
}

#[test]
fn no_args_is_usage_error() {
    let out = gansec().output().expect("spawn");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn unknown_command_is_usage_error() {
    let out = gansec().arg("frobnicate").output().expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn graph_emits_dot() {
    let out = gansec().arg("graph").output().expect("spawn");
    assert!(out.status.success());
    let dot = String::from_utf8_lossy(&out.stdout);
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("P9 environment"));
}

#[test]
fn simulate_summarizes_trace() {
    let path = write_gcode("sim.gcode", BENIGN);
    let out = gansec()
        .args(["simulate", "--gcode"])
        .arg(&path)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("6 motion segments"));
    assert!(text.contains('Z'));
}

#[test]
fn simulate_missing_file_fails_cleanly() {
    let out = gansec()
        .args(["simulate", "--gcode", "/nonexistent/nowhere.gcode"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn detect_flags_swapped_axes_but_passes_benign() {
    let benign = write_gcode("benign.gcode", BENIGN);
    let swapped = write_gcode("swapped.gcode", SWAPPED);
    // Small budget to keep the test fast; the swap is blatant.
    let out = gansec()
        .args(["detect", "--iters", "300", "--moves", "3", "--benign"])
        .arg(&benign)
        .arg("--suspect")
        .arg(&swapped)
        .output()
        .expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stdout: {} stderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let out = gansec()
        .args(["detect", "--iters", "300", "--moves", "3", "--benign"])
        .arg(&benign)
        .arg("--suspect")
        .arg(&benign)
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn reconstruct_recovers_commands_and_flags_leak() {
    let path = write_gcode("reco.gcode", BENIGN);
    let out = gansec()
        .args(["reconstruct", "--iters", "300", "--moves", "3", "--gcode"])
        .arg(&path)
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "leak should be flagged");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("recovered"));
}

#[test]
fn bad_flag_value_is_usage_failure() {
    let out = gansec()
        .args(["audit", "--iters", "not-a-number"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(3));
}
