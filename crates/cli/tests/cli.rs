//! End-to-end tests of the `gansec` binary via `std::process`.

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use std::io::Write;
use std::process::Command;

fn gansec() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gansec"))
}

fn write_gcode(name: &str, source: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("gansec_cli_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create gcode");
    f.write_all(source.as_bytes()).expect("write gcode");
    path
}

/// Offline stub builds ship a serde_json whose deserializer always
/// errors; tests that need a real JSON round-trip probe for it first.
fn json_roundtrip_available() -> bool {
    serde_json::from_str::<serde_json::Value>("null").is_ok()
}

const BENIGN: &str = "G90\nG1 F1200 X20\nG1 X0\nG1 Y20\nG1 Y0\nG1 F120 Z2\nG1 Z0\n";
const SWAPPED: &str = "G90\nG1 F1200 Y20\nG1 Y0\nG1 X20\nG1 X0\nG1 F120 Z2\nG1 Z0\n";

#[test]
fn help_prints_usage_and_exits_zero() {
    let out = gansec().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("audit"));
}

#[test]
fn no_args_is_usage_error() {
    let out = gansec().output().expect("spawn");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn unknown_command_is_usage_error() {
    let out = gansec().arg("frobnicate").output().expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn graph_emits_dot() {
    let out = gansec().arg("graph").output().expect("spawn");
    assert!(out.status.success());
    let dot = String::from_utf8_lossy(&out.stdout);
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("P9 environment"));
}

#[test]
fn simulate_summarizes_trace() {
    let path = write_gcode("sim.gcode", BENIGN);
    let out = gansec()
        .args(["simulate", "--gcode"])
        .arg(&path)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("6 motion segments"));
    assert!(text.contains('Z'));
}

#[test]
fn simulate_missing_file_fails_cleanly() {
    let out = gansec()
        .args(["simulate", "--gcode", "/nonexistent/nowhere.gcode"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn detect_flags_swapped_axes_but_passes_benign() {
    let benign = write_gcode("benign.gcode", BENIGN);
    let swapped = write_gcode("swapped.gcode", SWAPPED);
    // Small budget to keep the test fast; the swap is blatant.
    let out = gansec()
        .args(["detect", "--iters", "300", "--moves", "3", "--benign"])
        .arg(&benign)
        .arg("--suspect")
        .arg(&swapped)
        .output()
        .expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stdout: {} stderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let out = gansec()
        .args(["detect", "--iters", "300", "--moves", "3", "--benign"])
        .arg(&benign)
        .arg("--suspect")
        .arg(&benign)
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn reconstruct_recovers_commands_and_flags_leak() {
    let path = write_gcode("reco.gcode", BENIGN);
    let out = gansec()
        .args(["reconstruct", "--iters", "300", "--moves", "3", "--gcode"])
        .arg(&path)
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "leak should be flagged");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("recovered"));
}

#[test]
fn bad_flag_value_is_usage_failure() {
    // The pre-flight gate parses --iters before the command runs, so a
    // malformed value is now a usage error (1), not a runtime one (3).
    let out = gansec()
        .args(["audit", "--iters", "not-a-number"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--iters"));
}

// --- gansec check ------------------------------------------------------

#[test]
fn check_default_configuration_is_clean() {
    let out = gansec().arg("check").output().expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("check: 0 errors"), "got: {text}");
}

#[test]
fn check_flags_zero_bandwidth() {
    let out = gansec()
        .args(["check", "--h", "0"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("GS0301"), "got: {text}");
}

#[test]
fn check_describes_broken_configs_without_panicking() {
    // Zero bins / zero batch would trip CganConfig's constructor
    // assertions; check must diagnose them instead of crashing.
    let out = gansec()
        .args(["check", "--bins", "0"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stdout).contains("GS0208"));
    let out = gansec()
        .args(["check", "--batch-size", "0"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stdout).contains("GS0308"));
}

#[test]
fn check_flags_condition_width_mismatch() {
    // 5-wide condition input against the dataset's 3 one-hot labels.
    let out = gansec()
        .args(["check", "--cond-dim", "5"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("GS0206"), "got: {text}");
}

#[test]
fn check_json_output_is_machine_readable() {
    let out = gansec()
        .args(["check", "--h", "-1", "--format", "json"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stdout);
    let json = text.trim();
    assert!(json.starts_with('{') && json.ends_with('}'), "got: {json}");
    assert!(json.contains("\"errors\":"), "got: {json}");
    assert!(json.contains("\"GS0301\""), "got: {json}");
    if json_roundtrip_available() {
        serde_json::from_str::<serde_json::Value>(json).expect("valid json");
    }
}

#[test]
fn check_rejects_cyclic_user_architecture() {
    use gansec_cpps::{CppsArchitecture, FlowKind};
    if !json_roundtrip_available() {
        // The binary cannot load --arch files without a working JSON
        // deserializer; nothing to test in an offline stub build.
        return;
    }
    let mut arch = CppsArchitecture::new("cyclic");
    let s = arch.add_subsystem("s");
    let a = arch.add_cyber(s, "a").expect("add");
    let b = arch.add_physical(s, "b").expect("add");
    arch.add_flow("ab", FlowKind::Signal, a, b).expect("flow");
    arch.add_flow("ba", FlowKind::Energy, b, a).expect("flow");
    let dir = std::env::temp_dir().join("gansec_cli_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("cyclic_arch.json");
    std::fs::write(&path, serde_json::to_string(&arch).expect("serialize")).expect("write");

    let out = gansec()
        .args(["check", "--arch"])
        .arg(&path)
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stdout).contains("GS0106"));
}

#[test]
fn check_strict_promotes_warnings() {
    // 99 threads against 3 modeled pairs: a warning (GS0305), so the
    // default check passes and --strict gates.
    let out = gansec()
        .args(["check", "--threads", "99"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0));
    let out = gansec()
        .args(["check", "--threads", "99", "--strict"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stdout).contains("GS0305"));
}

// --- pre-flight gate ---------------------------------------------------

#[test]
fn preflight_gates_expensive_commands() {
    // A zero batch size is a GS0308 error: detect refuses before even
    // looking at its input files.
    let out = gansec()
        .args([
            "detect",
            "--batch-size",
            "0",
            "--benign",
            "/nonexistent/a.gcode",
            "--suspect",
            "/nonexistent/b.gcode",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("GS0308"), "got: {err}");
    assert!(err.contains("--no-check"), "got: {err}");
}

#[test]
fn no_check_bypasses_the_gate() {
    // Same flags plus --no-check: the command really runs and fails on
    // the missing file instead (runtime exit 3).
    let out = gansec()
        .args([
            "detect",
            "--no-check",
            "--batch-size",
            "0",
            "--benign",
            "/nonexistent/a.gcode",
            "--suspect",
            "/nonexistent/b.gcode",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
