use serde::{Deserialize, Serialize};

/// Elementwise activation functions.
///
/// The CGAN generator in the paper outputs feature magnitudes scaled to
/// `[0, 1]`, so its final layer uses [`Activation::Sigmoid`]; hidden layers
/// use [`Activation::LeakyRelu`], the standard choice for discriminators
/// since Radford et al. (DCGAN).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// `x` for `x > 0`, `alpha * x` otherwise.
    LeakyRelu {
        /// Negative-slope coefficient, typically `0.01`-`0.2`.
        alpha: f64,
    },
    /// Logistic sigmoid `1 / (1 + e^-x)`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (no-op); useful for ablation wiring.
    Identity,
}

impl Activation {
    /// A leaky ReLU with the conventional GAN slope of 0.2.
    pub fn leaky_relu() -> Self {
        Activation::LeakyRelu { alpha: 0.2 }
    }

    /// Applies the activation to a scalar.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu { alpha } => {
                if x > 0.0 {
                    x
                } else {
                    alpha * x
                }
            }
            Activation::Sigmoid => crate::loss::sigmoid(x),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative of the activation with respect to its scalar input.
    ///
    /// For ReLU-family activations the derivative at exactly `x == 0` is
    /// taken from the negative branch, the usual subgradient convention.
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu { alpha } => {
                if x > 0.0 {
                    1.0
                } else {
                    alpha
                }
            }
            Activation::Sigmoid => {
                let s = crate::loss::sigmoid(x);
                s * (1.0 - s)
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Identity => 1.0,
        }
    }
}

impl Default for Activation {
    /// The GAN-conventional leaky ReLU (`alpha = 0.2`).
    fn default() -> Self {
        Activation::leaky_relu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negative() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
    }

    #[test]
    fn leaky_relu_scales_negative() {
        let a = Activation::LeakyRelu { alpha: 0.1 };
        assert!((a.apply(-2.0) + 0.2).abs() < 1e-12);
        assert_eq!(a.apply(2.0), 2.0);
        assert_eq!(a.derivative(-1.0), 0.1);
        assert_eq!(a.derivative(1.0), 1.0);
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(s.apply(100.0) <= 1.0);
        assert!(s.apply(-100.0) >= 0.0);
        assert!((s.apply(2.0) + s.apply(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn derivatives_match_finite_difference() {
        let h = 1e-6;
        for act in [
            Activation::Relu,
            Activation::leaky_relu(),
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Identity,
        ] {
            for &x in &[-2.0, -0.5, 0.7, 3.0] {
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn tanh_derivative_peaks_at_origin() {
        let t = Activation::Tanh;
        assert!((t.derivative(0.0) - 1.0).abs() < 1e-12);
        assert!(t.derivative(3.0) < t.derivative(0.0));
    }
}
