use serde::{Deserialize, Serialize};

use gansec_tensor::Matrix;

use crate::{Layer, OptimError, Optimizer};

/// A feed-forward network: an ordered stack of [`Layer`]s.
///
/// The generator and discriminator of the paper's CGAN are both
/// `Sequential` networks; [`crate::gradient_check`] validates that the
/// composite backward pass is the exact adjoint of the forward pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sequential {
    layers: Vec<Layer>,
    training: bool,
}

impl Sequential {
    /// Creates a network from a layer stack (may be empty, acting as the
    /// identity).
    pub fn new(layers: Vec<Layer>) -> Self {
        Self {
            layers,
            training: true,
        }
    }

    /// Borrows the layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Whether dropout-style layers are active.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Switches training mode (dropout on) vs evaluation mode.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Total number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Training forward pass through all layers, caching activations for
    /// backprop. Requires `&mut self` because every layer records what
    /// its backward pass needs; use [`Sequential::forward`] for the
    /// cache-free inference path.
    pub fn forward_training(&mut self, x: &Matrix) -> Matrix {
        let training = self.training;
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward_training(&h, training);
        }
        h
    }

    /// Inference forward pass: evaluation mode (dropout disabled), no
    /// activation caching, no `&mut self`. All intermediate activations
    /// live in the caller-provided [`ForwardScratch`], so a warm scratch
    /// makes the whole pass allocation-free and any number of threads can
    /// share one network, each with its own scratch.
    ///
    /// Bit-identical to [`Sequential::forward_training`] on a network in
    /// evaluation mode (`set_training(false)`): every layer runs the same
    /// kernels in the same order, it just skips the caches.
    ///
    /// # Panics
    ///
    /// Panics if `x`'s width does not match the first layer.
    pub fn forward<'s>(&self, x: &Matrix, scratch: &'s mut ForwardScratch) -> &'s Matrix {
        let ForwardScratch { front, back } = scratch;
        front.copy_from(x);
        for layer in &self.layers {
            if layer.forward_eval_into(front, back) {
                std::mem::swap(front, back);
            }
        }
        front
    }

    /// Backward pass; accumulates parameter gradients and returns the
    /// gradient with respect to the network input. The input gradient is
    /// what lets the GAN trainer push generator updates through a frozen
    /// discriminator.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Sequential::forward_training`].
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Applies one optimizer step using the accumulated gradients.
    /// Parameters receive stable ids in layer order, so an optimizer can be
    /// reused across steps (and must not be shared between networks).
    ///
    /// # Errors
    ///
    /// Propagates the first [`OptimError`] hit while walking the
    /// parameters; later parameters are left un-updated.
    pub fn step(&mut self, opt: &mut impl Optimizer) -> Result<(), OptimError> {
        let mut id = 0;
        let mut result = Ok(());
        for layer in &mut self.layers {
            layer.visit_params(|param, grad| {
                if result.is_ok() {
                    result = opt.update(id, param, grad);
                }
                id += 1;
            });
        }
        result
    }

    /// Rescales gradients so their global L2 norm is at most `max_norm`;
    /// returns the pre-clip norm. Standard stabilizer for adversarial
    /// training.
    ///
    /// # Panics
    ///
    /// Panics unless `max_norm` is positive.
    pub fn clip_grad_norm(&mut self, max_norm: f64) -> f64 {
        assert!(max_norm > 0.0, "max_norm must be positive: {max_norm}");
        let total: f64 = self.layers.iter().map(Layer::grad_sq_norm).sum();
        let norm = total.sqrt();
        if norm > max_norm {
            let s = max_norm / norm;
            for layer in &mut self.layers {
                layer.scale_grads(s);
            }
        }
        norm
    }

    /// True if every parameter is finite; used to detect diverged training.
    pub fn params_finite(&mut self) -> bool {
        let mut ok = true;
        for layer in &mut self.layers {
            layer.visit_params(|param, _| {
                if !param.all_finite() {
                    ok = false;
                }
            });
        }
        ok
    }
}

impl Default for Sequential {
    /// The empty (identity) network.
    fn default() -> Self {
        Self::new(Vec::new())
    }
}

/// Reusable activation buffers for [`Sequential::forward`].
///
/// The inference pass ping-pongs between the two matrices, so after the
/// first (warming) call through a given network the buffers hold enough
/// capacity for every intermediate activation and later calls allocate
/// nothing. One scratch per thread: the buffers are scribbled on by every
/// pass, but the network itself is shared immutably.
#[derive(Debug, Clone, Default)]
pub struct ForwardScratch {
    front: Matrix,
    back: Matrix,
}

impl ForwardScratch {
    /// Creates an empty scratch; the first forward pass sizes it.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mse, Activation, Sgd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Layer::dense(2, 6, &mut rng),
            Layer::activation(Activation::Tanh),
            Layer::dense(6, 1, &mut rng),
        ])
    }

    #[test]
    fn empty_network_is_identity() {
        let mut net = Sequential::default();
        let x = Matrix::row_vector(&[1.0, 2.0]);
        assert_eq!(net.forward_training(&x), x);
        assert_eq!(net.backward(&x), x);
        assert_eq!(net.param_count(), 0);
    }

    #[test]
    fn forward_shape_flows_through() {
        let mut net = tiny_net(1);
        let y = net.forward_training(&Matrix::zeros(7, 2));
        assert_eq!(y.shape(), (7, 1));
    }

    #[test]
    fn inference_forward_matches_training_eval_mode() {
        let mut net = tiny_net(2);
        net.set_training(false);
        let mut rng = StdRng::seed_from_u64(21);
        let x = Matrix::from_fn(5, 2, |_, _| rand::Rng::gen_range(&mut rng, -3.0..3.0));
        let want = net.forward_training(&x);
        let mut scratch = ForwardScratch::new();
        assert_eq!(net.forward(&x, &mut scratch), &want);
        // A second pass through the warm scratch stays identical.
        assert_eq!(net.forward(&x, &mut scratch), &want);
    }

    #[test]
    fn inference_forward_on_empty_network_is_identity() {
        let net = Sequential::default();
        let x = Matrix::row_vector(&[1.0, 2.0]);
        let mut scratch = ForwardScratch::new();
        assert_eq!(net.forward(&x, &mut scratch), &x);
    }

    #[test]
    fn inference_forward_applies_eval_mode_dropout() {
        // Regression test for the train/serve asymmetry: inverted dropout
        // scales survivors by 1/keep during training, so evaluation must
        // be exactly the identity — the inference path has to match the
        // training path's eval mode bit-for-bit, dropout included.
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Sequential::new(vec![
            Layer::dense(3, 16, &mut rng),
            Layer::activation(Activation::Relu),
            Layer::dropout(0.4, 11),
            Layer::dense(16, 2, &mut rng),
        ]);
        let x = Matrix::from_fn(8, 3, |_, _| rand::Rng::gen_range(&mut rng, -1.0..1.0));

        // Training mode actually drops units: output differs from eval.
        let trained = net.forward_training(&x);
        net.set_training(false);
        let eval = net.forward_training(&x);
        assert_ne!(trained, eval, "dropout must be active in training mode");

        let mut scratch = ForwardScratch::new();
        assert_eq!(net.forward(&x, &mut scratch), &eval);

        // Inference ignores the training flag entirely: even on a network
        // left in training mode the inference pass is deterministic eval.
        net.set_training(true);
        assert_eq!(net.forward(&x, &mut scratch), &eval);
    }

    #[test]
    fn learns_xor() {
        let mut net = {
            let mut rng = StdRng::seed_from_u64(3);
            Sequential::new(vec![
                Layer::dense(2, 8, &mut rng),
                Layer::activation(Activation::Tanh),
                Layer::dense(8, 1, &mut rng),
                Layer::activation(Activation::Sigmoid),
            ])
        };
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]).unwrap();
        let t = Matrix::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]).unwrap();
        let mut opt = Sgd::with_momentum(0.5, 0.9);
        let mut last = f64::INFINITY;
        for _ in 0..2000 {
            let y = net.forward_training(&x);
            let (loss, grad) = mse(&y, &t).unwrap();
            last = loss;
            net.zero_grad();
            net.backward(&grad);
            net.step(&mut opt).unwrap();
        }
        assert!(last < 0.02, "xor loss {last}");
        let y = net.forward_training(&x);
        for (i, &target) in [0.0, 1.0, 1.0, 0.0].iter().enumerate() {
            assert!((y[(i, 0)] - target).abs() < 0.3, "row {i}: {}", y[(i, 0)]);
        }
    }

    #[test]
    fn clip_grad_norm_bounds_gradients() {
        let mut net = tiny_net(5);
        let x = Matrix::filled(4, 2, 10.0);
        let t = Matrix::filled(4, 1, -10.0);
        let y = net.forward_training(&x);
        let (_, grad) = mse(&y, &t).unwrap();
        net.zero_grad();
        net.backward(&grad);
        let pre = net.clip_grad_norm(0.5);
        assert!(pre > 0.5);
        let post: f64 = net
            .layers()
            .iter()
            .map(Layer::grad_sq_norm)
            .sum::<f64>()
            .sqrt();
        assert!(post <= 0.5 + 1e-9, "post-clip norm {post}");
    }

    #[test]
    fn params_finite_detects_divergence() {
        let mut net = tiny_net(6);
        assert!(net.params_finite());
        // Blow up the parameters with an absurd learning rate.
        let x = Matrix::filled(2, 2, 1.0);
        let t = Matrix::filled(2, 1, 0.0);
        let mut opt = Sgd::new(1e300);
        for _ in 0..4 {
            let y = net.forward_training(&x);
            let (_, grad) = mse(&y, &t).unwrap();
            net.zero_grad();
            net.backward(&grad);
            net.step(&mut opt).unwrap();
        }
        assert!(!net.params_finite());
    }

    #[test]
    fn training_flag_round_trips() {
        let mut net = tiny_net(7);
        assert!(net.is_training());
        net.set_training(false);
        assert!(!net.is_training());
    }
}
