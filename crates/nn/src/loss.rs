use std::error::Error;
use std::fmt;

use gansec_tensor::Matrix;

/// Error returned when predictions and targets have mismatched shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LossError {
    pred: (usize, usize),
    target: (usize, usize),
}

impl fmt::Display for LossError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "loss shape mismatch: predictions {}x{} vs targets {}x{}",
            self.pred.0, self.pred.1, self.target.0, self.target.1
        )
    }
}

impl Error for LossError {}

/// Numerically stable logistic sigmoid.
///
/// Uses the two-branch formulation to avoid overflow in `exp` for large
/// negative inputs.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Binary cross-entropy on raw logits, averaged over all entries.
///
/// For logits `z` and targets `t in [0,1]` this computes the stable form
/// `max(z,0) - z*t + ln(1+exp(-|z|))` and returns `(loss, dloss/dz)` where
/// the gradient is `(sigmoid(z) - t) / n`. Feeding logits rather than
/// probabilities is what keeps the paper's Algorithm 2 discriminator
/// updates finite when D becomes confident.
///
/// # Errors
///
/// Returns [`LossError`] if shapes differ.
pub fn bce_with_logits(logits: &Matrix, targets: &Matrix) -> Result<(f64, Matrix), LossError> {
    if logits.shape() != targets.shape() {
        return Err(LossError {
            pred: logits.shape(),
            target: targets.shape(),
        });
    }
    let n = logits.len().max(1) as f64;
    let loss: f64 = logits
        .as_slice()
        .iter()
        .zip(targets.as_slice())
        .map(|(&z, &t)| z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln())
        .sum::<f64>()
        / n;
    let grad = logits
        .zip_map(targets, |z, t| (sigmoid(z) - t) / n)
        .expect("shapes already checked");
    Ok((loss, grad))
}

/// Mean squared error, averaged over all entries.
///
/// Returns `(loss, dloss/dpred)` with gradient `2 (pred - t) / n`.
///
/// # Errors
///
/// Returns [`LossError`] if shapes differ.
pub fn mse(pred: &Matrix, targets: &Matrix) -> Result<(f64, Matrix), LossError> {
    if pred.shape() != targets.shape() {
        return Err(LossError {
            pred: pred.shape(),
            target: targets.shape(),
        });
    }
    let n = pred.len().max(1) as f64;
    let loss: f64 = pred
        .as_slice()
        .iter()
        .zip(targets.as_slice())
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f64>()
        / n;
    let grad = pred
        .zip_map(targets, |p, t| 2.0 * (p - t) / n)
        .expect("shapes already checked");
    Ok((loss, grad))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn bce_matches_closed_form_at_zero_logit() {
        let z = Matrix::row_vector(&[0.0]);
        let t = Matrix::row_vector(&[1.0]);
        let (loss, grad) = bce_with_logits(&z, &t).unwrap();
        assert!((loss - std::f64::consts::LN_2).abs() < 1e-12);
        assert!((grad[(0, 0)] + 0.5).abs() < 1e-12);
    }

    #[test]
    fn bce_confident_correct_is_near_zero() {
        let z = Matrix::row_vector(&[50.0]);
        let t = Matrix::row_vector(&[1.0]);
        let (loss, _) = bce_with_logits(&z, &t).unwrap();
        assert!(loss < 1e-10);
    }

    #[test]
    fn bce_confident_wrong_is_large_but_finite() {
        let z = Matrix::row_vector(&[50.0]);
        let t = Matrix::row_vector(&[0.0]);
        let (loss, grad) = bce_with_logits(&z, &t).unwrap();
        assert!((loss - 50.0).abs() < 1e-9);
        assert!(grad.all_finite());
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let t = Matrix::row_vector(&[1.0, 0.0, 0.5]);
        let z0 = [0.3, -1.2, 2.0];
        let h = 1e-6;
        let (_, grad) = bce_with_logits(&Matrix::row_vector(&z0), &t).unwrap();
        for i in 0..3 {
            let mut zp = z0;
            zp[i] += h;
            let mut zm = z0;
            zm[i] -= h;
            let (lp, _) = bce_with_logits(&Matrix::row_vector(&zp), &t).unwrap();
            let (lm, _) = bce_with_logits(&Matrix::row_vector(&zm), &t).unwrap();
            let numeric = (lp - lm) / (2.0 * h);
            assert!(
                (numeric - grad[(0, i)]).abs() < 1e-6,
                "entry {i}: numeric {numeric} vs analytic {}",
                grad[(0, i)]
            );
        }
    }

    #[test]
    fn mse_perfect_prediction_is_zero() {
        let p = Matrix::row_vector(&[1.0, 2.0]);
        let (loss, grad) = mse(&p, &p.clone()).unwrap();
        assert_eq!(loss, 0.0);
        assert_eq!(grad, Matrix::zeros(1, 2));
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let t = Matrix::row_vector(&[0.5, -0.5]);
        let p0 = [1.0, 2.0];
        let h = 1e-6;
        let (_, grad) = mse(&Matrix::row_vector(&p0), &t).unwrap();
        for i in 0..2 {
            let mut pp = p0;
            pp[i] += h;
            let mut pm = p0;
            pm[i] -= h;
            let (lp, _) = mse(&Matrix::row_vector(&pp), &t).unwrap();
            let (lm, _) = mse(&Matrix::row_vector(&pm), &t).unwrap();
            let numeric = (lp - lm) / (2.0 * h);
            assert!((numeric - grad[(0, i)]).abs() < 1e-6);
        }
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(2, 1);
        assert!(bce_with_logits(&a, &b).is_err());
        assert!(mse(&a, &b).is_err());
        let msg = mse(&a, &b).unwrap_err().to_string();
        assert!(msg.contains("1x2"));
    }
}
