use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use gansec_tensor::{Matrix, ShapeError};

/// Error returned by [`Optimizer::update`] when a parameter/gradient pair
/// cannot be combined.
///
/// Optimizer state is keyed by `param_id`, so a wiring bug (two layers
/// sharing an id, or a parameter re-registered with a different shape)
/// surfaces here with enough context to find the offending layer instead
/// of panicking mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimError {
    /// The parameter, its gradient, or cached optimizer state disagreed
    /// on shape.
    Shape {
        /// Stable parameter index assigned by the driver.
        param_id: usize,
        /// The underlying tensor-level mismatch.
        source: ShapeError,
    },
}

impl OptimError {
    fn shape(param_id: usize, source: ShapeError) -> Self {
        OptimError::Shape { param_id, source }
    }
}

impl fmt::Display for OptimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimError::Shape { param_id, source } => {
                write!(f, "optimizer update for parameter {param_id}: {source}")
            }
        }
    }
}

impl Error for OptimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OptimError::Shape { source, .. } => Some(source),
        }
    }
}

/// First-order optimizer updating one parameter matrix at a time.
///
/// The driver ([`crate::Sequential::step`]) walks the network's parameters
/// in a stable order and passes each a unique `param_id`, which optimizers
/// use to key per-parameter state (momentum buffers, Adam moments).
pub trait Optimizer {
    /// Applies one update to `param` given its accumulated `grad`.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::Shape`] if `param`, `grad`, and any cached
    /// state for `param_id` do not share one shape.
    fn update(
        &mut self,
        param_id: usize,
        param: &mut Matrix,
        grad: &Matrix,
    ) -> Result<(), OptimError>;

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Replaces the learning rate (used by decay schedules).
    fn set_learning_rate(&mut self, lr: f64);

    /// Per-parameter gradient-norm clip, if any.
    fn grad_clip(&self) -> Option<f64> {
        None
    }

    /// Sets or clears the per-parameter gradient-norm clip.
    fn set_grad_clip(&mut self, _clip: Option<f64>) {}
}

/// Scale factor that brings `grad`'s Frobenius norm under `clip`.
///
/// Non-finite norms are left alone (scale 1.0) so divergence detection
/// downstream still sees the blow-up instead of a silently zeroed update.
fn clip_scale(grad: &Matrix, clip: Option<f64>) -> f64 {
    match clip {
        Some(c) => {
            let norm = grad.frobenius_norm();
            if norm.is_finite() && norm > c {
                c / norm
            } else {
                1.0
            }
        }
        None => 1.0,
    }
}

/// Stochastic gradient descent with optional classical momentum.
///
/// Algorithm 2 of the paper specifies plain minibatch stochastic gradient
/// ascent/descent for D and G; this is that optimizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: HashMap<usize, Matrix>,
    /// Per-parameter gradient-norm clip (recovery policies tighten this).
    #[serde(default)]
    grad_clip: Option<f64>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f64) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with classical momentum `mu` (0 disables momentum).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive or `mu` is outside `[0,1)`.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        assert!(
            lr.is_finite() && lr > 0.0,
            "learning rate must be positive: {lr}"
        );
        assert!(
            (0.0..1.0).contains(&momentum),
            "momentum must be in [0, 1): {momentum}"
        );
        Self {
            lr,
            momentum,
            velocity: HashMap::new(),
            grad_clip: None,
        }
    }
}

impl Optimizer for Sgd {
    fn update(
        &mut self,
        param_id: usize,
        param: &mut Matrix,
        grad: &Matrix,
    ) -> Result<(), OptimError> {
        let scale = clip_scale(grad, self.grad_clip);
        if self.momentum == 0.0 {
            return param
                .axpy(-self.lr * scale, grad)
                .map_err(|e| OptimError::shape(param_id, e));
        }
        let v = self
            .velocity
            .entry(param_id)
            .or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
        v.scale_inplace(self.momentum);
        v.axpy(scale, grad)
            .map_err(|e| OptimError::shape(param_id, e))?;
        param
            .axpy(-self.lr, v)
            .map_err(|e| OptimError::shape(param_id, e))
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn grad_clip(&self) -> Option<f64> {
        self.grad_clip
    }

    fn set_grad_clip(&mut self, clip: Option<f64>) {
        self.grad_clip = clip;
    }
}

/// Adam optimizer (Kingma & Ba 2015) with bias-corrected moments.
///
/// Not in the paper's pseudocode but the de-facto CGAN trainer; exposed so
/// the benchmark harness can ablate SGD-as-published against Adam.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    /// Per-parameter (step count, first moment, second moment).
    state: HashMap<usize, (u64, Matrix, Matrix)>,
    /// Per-parameter gradient-norm clip (recovery policies tighten this).
    #[serde(default)]
    grad_clip: Option<f64>,
}

impl Adam {
    /// Adam with conventional betas (0.9, 0.999) and `eps = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f64) -> Self {
        Self::with_betas(lr, 0.9, 0.999)
    }

    /// Adam with explicit betas. GAN practice often uses `beta1 = 0.5`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive or betas are outside `[0,1)`.
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64) -> Self {
        assert!(
            lr.is_finite() && lr > 0.0,
            "learning rate must be positive: {lr}"
        );
        assert!(
            (0.0..1.0).contains(&beta1),
            "beta1 must be in [0, 1): {beta1}"
        );
        assert!(
            (0.0..1.0).contains(&beta2),
            "beta2 must be in [0, 1): {beta2}"
        );
        Self {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            state: HashMap::new(),
            grad_clip: None,
        }
    }
}

impl Optimizer for Adam {
    fn update(
        &mut self,
        param_id: usize,
        param: &mut Matrix,
        grad: &Matrix,
    ) -> Result<(), OptimError> {
        let scale = clip_scale(grad, self.grad_clip);
        let (t, m, v) = self.state.entry(param_id).or_insert_with(|| {
            (
                0,
                Matrix::zeros(grad.rows(), grad.cols()),
                Matrix::zeros(grad.rows(), grad.cols()),
            )
        });
        *t += 1;
        m.scale_inplace(self.beta1);
        m.axpy((1.0 - self.beta1) * scale, grad)
            .map_err(|e| OptimError::shape(param_id, e))?;
        let grad_sq = grad
            .hadamard(grad)
            .map_err(|e| OptimError::shape(param_id, e))?;
        v.scale_inplace(self.beta2);
        v.axpy((1.0 - self.beta2) * scale * scale, &grad_sq)
            .map_err(|e| OptimError::shape(param_id, e))?;
        let bc1 = 1.0 - self.beta1.powi(*t as i32);
        let bc2 = 1.0 - self.beta2.powi(*t as i32);
        let eps = self.eps;
        let lr = self.lr;
        let update = m
            .zip_map(v, |mi, vi| {
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                lr * m_hat / (v_hat.sqrt() + eps)
            })
            .map_err(|e| OptimError::shape(param_id, e))?;
        param
            .axpy(-1.0, &update)
            .map_err(|e| OptimError::shape(param_id, e))
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn grad_clip(&self) -> Option<f64> {
        self.grad_clip
    }

    fn set_grad_clip(&mut self, clip: Option<f64>) {
        self.grad_clip = clip;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &Matrix) -> Matrix {
        // grad of f(p) = |p|^2 / 2 is p itself; minimum at 0.
        p.clone()
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut p = Matrix::filled(2, 2, 4.0);
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            let g = quadratic_grad(&p);
            opt.update(0, &mut p, &g).unwrap();
        }
        assert!(p.frobenius_norm() < 1e-3, "norm {}", p.frobenius_norm());
    }

    #[test]
    fn momentum_accelerates_on_quadratic() {
        let run = |mut opt: Sgd| {
            let mut p = Matrix::filled(1, 1, 1.0);
            for _ in 0..20 {
                let g = quadratic_grad(&p);
                opt.update(0, &mut p, &g).unwrap();
            }
            p[(0, 0)].abs()
        };
        let plain = run(Sgd::new(0.05));
        let momentum = run(Sgd::with_momentum(0.05, 0.9));
        assert!(momentum < plain, "momentum {momentum} vs plain {plain}");
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut p = Matrix::filled(3, 1, 5.0);
        let mut opt = Adam::new(0.2);
        for _ in 0..300 {
            let g = quadratic_grad(&p);
            opt.update(0, &mut p, &g).unwrap();
        }
        assert!(p.frobenius_norm() < 1e-2, "norm {}", p.frobenius_norm());
    }

    #[test]
    fn adam_state_is_per_parameter() {
        let mut opt = Adam::new(0.1);
        let mut a = Matrix::filled(1, 1, 1.0);
        let mut b = Matrix::filled(2, 2, 1.0);
        // Interleave two parameters of different shapes; state must not mix.
        for _ in 0..5 {
            let ga = quadratic_grad(&a);
            opt.update(0, &mut a, &ga).unwrap();
            let gb = quadratic_grad(&b);
            opt.update(1, &mut b, &gb).unwrap();
        }
        assert!(a.all_finite() && b.all_finite());
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Sgd::new(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
        opt.set_learning_rate(0.25);
        assert_eq!(opt.learning_rate(), 0.25);
    }

    #[test]
    fn shape_mismatch_is_a_typed_error_not_a_panic() {
        let mut p = Matrix::filled(1, 1, 1.0);
        let g = Matrix::filled(2, 2, 1.0);
        let err = Sgd::new(0.1).update(7, &mut p, &g).unwrap_err();
        let OptimError::Shape { param_id, .. } = err.clone();
        assert_eq!(param_id, 7);
        assert!(err.to_string().contains("parameter 7"));

        let err = Adam::new(0.1).update(3, &mut p, &g).unwrap_err();
        assert!(err.to_string().contains("parameter 3"));
    }

    #[test]
    fn stale_momentum_shape_is_a_typed_error() {
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        let mut a = Matrix::filled(2, 2, 1.0);
        let ga = quadratic_grad(&a);
        opt.update(0, &mut a, &ga).unwrap();
        // Same id re-registered with a different shape: velocity is stale.
        let mut b = Matrix::filled(3, 3, 1.0);
        let gb = quadratic_grad(&b);
        assert!(opt.update(0, &mut b, &gb).is_err());
    }

    #[test]
    fn grad_clip_bounds_sgd_step() {
        let mut clipped = Sgd::new(1.0);
        clipped.set_grad_clip(Some(1.0));
        assert_eq!(clipped.grad_clip(), Some(1.0));
        let mut p = Matrix::filled(1, 1, 0.0);
        let huge = Matrix::filled(1, 1, 1e6);
        clipped.update(0, &mut p, &huge).unwrap();
        // Step magnitude is lr * clip, not lr * |grad|.
        assert!((p[(0, 0)].abs() - 1.0).abs() < 1e-12, "step {}", p[(0, 0)]);
    }

    #[test]
    fn grad_clip_leaves_small_gradients_alone() {
        let mut clipped = Sgd::new(0.5);
        clipped.set_grad_clip(Some(10.0));
        let mut plain = Sgd::new(0.5);
        let mut a = Matrix::filled(1, 2, 1.0);
        let mut b = a.clone();
        let g = Matrix::filled(1, 2, 0.5);
        clipped.update(0, &mut a, &g).unwrap();
        plain.update(0, &mut b, &g).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn grad_clip_bounds_adam_moments() {
        let mut opt = Adam::new(0.1);
        opt.set_grad_clip(Some(1.0));
        let mut p = Matrix::filled(1, 1, 0.0);
        let huge = Matrix::filled(1, 1, 1e100);
        opt.update(0, &mut p, &huge).unwrap();
        assert!(p.all_finite());
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_zero_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn rejects_momentum_one() {
        let _ = Sgd::with_momentum(0.1, 1.0);
    }
}
