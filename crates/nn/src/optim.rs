use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use gansec_tensor::Matrix;

/// First-order optimizer updating one parameter matrix at a time.
///
/// The driver ([`crate::Sequential::step`]) walks the network's parameters
/// in a stable order and passes each a unique `param_id`, which optimizers
/// use to key per-parameter state (momentum buffers, Adam moments).
pub trait Optimizer {
    /// Applies one update to `param` given its accumulated `grad`.
    fn update(&mut self, param_id: usize, param: &mut Matrix, grad: &Matrix);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Replaces the learning rate (used by decay schedules).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Stochastic gradient descent with optional classical momentum.
///
/// Algorithm 2 of the paper specifies plain minibatch stochastic gradient
/// ascent/descent for D and G; this is that optimizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: HashMap<usize, Matrix>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f64) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with classical momentum `mu` (0 disables momentum).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive or `mu` is outside `[0,1)`.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        assert!(
            lr.is_finite() && lr > 0.0,
            "learning rate must be positive: {lr}"
        );
        assert!(
            (0.0..1.0).contains(&momentum),
            "momentum must be in [0, 1): {momentum}"
        );
        Self {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, param_id: usize, param: &mut Matrix, grad: &Matrix) {
        if self.momentum == 0.0 {
            param
                .axpy(-self.lr, grad)
                .expect("param/grad shape mismatch");
            return;
        }
        let v = self
            .velocity
            .entry(param_id)
            .or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
        v.scale_inplace(self.momentum);
        v.axpy(1.0, grad).expect("param/grad shape mismatch");
        param.axpy(-self.lr, v).expect("param/grad shape mismatch");
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba 2015) with bias-corrected moments.
///
/// Not in the paper's pseudocode but the de-facto CGAN trainer; exposed so
/// the benchmark harness can ablate SGD-as-published against Adam.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    /// Per-parameter (step count, first moment, second moment).
    state: HashMap<usize, (u64, Matrix, Matrix)>,
}

impl Adam {
    /// Adam with conventional betas (0.9, 0.999) and `eps = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f64) -> Self {
        Self::with_betas(lr, 0.9, 0.999)
    }

    /// Adam with explicit betas. GAN practice often uses `beta1 = 0.5`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive or betas are outside `[0,1)`.
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64) -> Self {
        assert!(
            lr.is_finite() && lr > 0.0,
            "learning rate must be positive: {lr}"
        );
        assert!(
            (0.0..1.0).contains(&beta1),
            "beta1 must be in [0, 1): {beta1}"
        );
        assert!(
            (0.0..1.0).contains(&beta2),
            "beta2 must be in [0, 1): {beta2}"
        );
        Self {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            state: HashMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn update(&mut self, param_id: usize, param: &mut Matrix, grad: &Matrix) {
        let (t, m, v) = self.state.entry(param_id).or_insert_with(|| {
            (
                0,
                Matrix::zeros(grad.rows(), grad.cols()),
                Matrix::zeros(grad.rows(), grad.cols()),
            )
        });
        *t += 1;
        m.scale_inplace(self.beta1);
        m.axpy(1.0 - self.beta1, grad)
            .expect("param/grad shape mismatch");
        let grad_sq = grad.hadamard(grad).expect("same shape");
        v.scale_inplace(self.beta2);
        v.axpy(1.0 - self.beta2, &grad_sq)
            .expect("param/grad shape mismatch");
        let bc1 = 1.0 - self.beta1.powi(*t as i32);
        let bc2 = 1.0 - self.beta2.powi(*t as i32);
        let eps = self.eps;
        let lr = self.lr;
        let update = m
            .zip_map(v, |mi, vi| {
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                lr * m_hat / (v_hat.sqrt() + eps)
            })
            .expect("same shape");
        param
            .axpy(-1.0, &update)
            .expect("param/grad shape mismatch");
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &Matrix) -> Matrix {
        // grad of f(p) = |p|^2 / 2 is p itself; minimum at 0.
        p.clone()
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut p = Matrix::filled(2, 2, 4.0);
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            let g = quadratic_grad(&p);
            opt.update(0, &mut p, &g);
        }
        assert!(p.frobenius_norm() < 1e-3, "norm {}", p.frobenius_norm());
    }

    #[test]
    fn momentum_accelerates_on_quadratic() {
        let run = |mut opt: Sgd| {
            let mut p = Matrix::filled(1, 1, 1.0);
            for _ in 0..20 {
                let g = quadratic_grad(&p);
                opt.update(0, &mut p, &g);
            }
            p[(0, 0)].abs()
        };
        let plain = run(Sgd::new(0.05));
        let momentum = run(Sgd::with_momentum(0.05, 0.9));
        assert!(momentum < plain, "momentum {momentum} vs plain {plain}");
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut p = Matrix::filled(3, 1, 5.0);
        let mut opt = Adam::new(0.2);
        for _ in 0..300 {
            let g = quadratic_grad(&p);
            opt.update(0, &mut p, &g);
        }
        assert!(p.frobenius_norm() < 1e-2, "norm {}", p.frobenius_norm());
    }

    #[test]
    fn adam_state_is_per_parameter() {
        let mut opt = Adam::new(0.1);
        let mut a = Matrix::filled(1, 1, 1.0);
        let mut b = Matrix::filled(2, 2, 1.0);
        // Interleave two parameters of different shapes; state must not mix.
        for _ in 0..5 {
            let ga = quadratic_grad(&a);
            opt.update(0, &mut a, &ga);
            let gb = quadratic_grad(&b);
            opt.update(1, &mut b, &gb);
        }
        assert!(a.all_finite() && b.all_finite());
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Sgd::new(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
        opt.set_learning_rate(0.25);
        assert_eq!(opt.learning_rate(), 0.25);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_zero_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn rejects_momentum_one() {
        let _ = Sgd::with_momentum(0.1, 1.0);
    }
}
