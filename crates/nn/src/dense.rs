use rand::Rng;
use serde::{Deserialize, Serialize};

use gansec_tensor::{Matrix, WeightInit};

/// A fully-connected layer computing `y = x W + b` over a batch.
///
/// `x` is `n x in`, `W` is `in x out`, `b` is `1 x out` broadcast over the
/// batch. The layer caches its input on the forward pass so that
/// [`Dense::backward`] can form the exact weight gradients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    weight: Matrix,
    bias: Matrix,
    grad_weight: Matrix,
    grad_bias: Matrix,
    #[serde(skip)]
    cached_input: Option<Matrix>,
}

impl Dense {
    /// Creates a layer with the given initialization scheme and zero biases.
    pub fn with_init(
        input_dim: usize,
        output_dim: usize,
        init: WeightInit,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            weight: init.sample(input_dim, output_dim, rng),
            bias: Matrix::zeros(1, output_dim),
            grad_weight: Matrix::zeros(input_dim, output_dim),
            grad_bias: Matrix::zeros(1, output_dim),
            cached_input: None,
        }
    }

    /// Creates a layer with the default (Xavier uniform) initialization.
    pub fn new(input_dim: usize, output_dim: usize, rng: &mut impl Rng) -> Self {
        Self::with_init(input_dim, output_dim, WeightInit::XavierUniform, rng)
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Borrows the weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Borrows the bias row vector.
    pub fn bias(&self) -> &Matrix {
        &self.bias
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Training forward pass over a batch; caches the input for backprop.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.input_dim()`.
    pub fn forward_training(&mut self, x: &Matrix) -> Matrix {
        let y = x
            .matmul(&self.weight)
            .and_then(|xw| xw.add_row_broadcast(&self.bias))
            .expect("dense forward: input width must equal layer input_dim");
        self.cached_input = Some(x.clone());
        y
    }

    /// Inference forward pass into a caller-provided buffer: no input
    /// caching, no allocation once `out`'s capacity is warm. Runs the
    /// same matmul kernel and bias add as [`Dense::forward_training`],
    /// so outputs are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.input_dim()`.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_into(&self.weight, out)
            .expect("dense forward: input width must equal layer input_dim");
        out.add_row_broadcast_inplace(&self.bias)
            .expect("bias width equals weight cols by construction");
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the layer input.
    ///
    /// Both products route through the transpose-fused matmul variants,
    /// so no transposed copy of the input or the weights is materialized
    /// and the weight gradient accumulates directly into `grad_weight`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Dense::forward_training`] or with a
    /// gradient whose shape does not match the forward output.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let x = self
            .cached_input
            .as_ref()
            .expect("dense backward called before forward");
        x.matmul_transpose_a_acc(grad_output, &mut self.grad_weight)
            .expect("dense backward: grad shape mismatch");
        self.grad_bias += &grad_output.sum_rows();
        grad_output
            .matmul_transpose_b(&self.weight)
            .expect("dense backward: grad shape mismatch")
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weight = Matrix::zeros(self.weight.rows(), self.weight.cols());
        self.grad_bias = Matrix::zeros(1, self.bias.cols());
    }

    /// Visits `(parameter, gradient)` pairs; the optimizer driver supplies
    /// a globally unique index per parameter for per-parameter state.
    pub fn visit_params(&mut self, mut f: impl FnMut(&mut Matrix, &Matrix)) {
        f(&mut self.weight, &self.grad_weight);
        f(&mut self.bias, &self.grad_bias);
    }

    /// Sum of squared gradient entries, used for global-norm clipping.
    pub fn grad_sq_norm(&self) -> f64 {
        let w = self.grad_weight.frobenius_norm();
        let b = self.grad_bias.frobenius_norm();
        w * w + b * b
    }

    /// Scales all gradients in place (global-norm clipping support).
    pub fn scale_grads(&mut self, s: f64) {
        self.grad_weight.scale_inplace(s);
        self.grad_bias.scale_inplace(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer() -> Dense {
        let mut rng = StdRng::seed_from_u64(9);
        Dense::new(3, 2, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let mut l = layer();
        let x = Matrix::zeros(5, 3);
        assert_eq!(l.forward_training(&x).shape(), (5, 2));
    }

    #[test]
    fn forward_zero_input_yields_bias() {
        let mut l = layer();
        let x = Matrix::zeros(2, 3);
        let y = l.forward_training(&x);
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(y[(r, c)], l.bias()[(0, c)]);
            }
        }
    }

    #[test]
    fn forward_into_matches_forward_training() {
        let mut l = layer();
        let mut rng = StdRng::seed_from_u64(11);
        let x = Matrix::from_fn(5, 3, |_, _| rand::Rng::gen_range(&mut rng, -2.0..2.0));
        let want = l.forward_training(&x);
        let mut out = Matrix::zeros(0, 0);
        l.forward_into(&x, &mut out);
        assert_eq!(out, want);
    }

    #[test]
    fn backward_bias_grad_is_row_sum() {
        let mut l = layer();
        let x = Matrix::filled(4, 3, 1.0);
        let _ = l.forward_training(&x);
        let g = Matrix::filled(4, 2, 0.5);
        let _ = l.backward(&g);
        // bias grad should be the column sums of g: 4 * 0.5 = 2.0
        let mut seen = Vec::new();
        l.visit_params(|_, grad| seen.push(grad.clone()));
        assert_eq!(seen[1], Matrix::filled(1, 2, 2.0));
    }

    #[test]
    fn backward_returns_input_shaped_grad() {
        let mut l = layer();
        let x = Matrix::zeros(4, 3);
        let _ = l.forward_training(&x);
        let gin = l.backward(&Matrix::zeros(4, 2));
        assert_eq!(gin.shape(), (4, 3));
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_without_forward_panics() {
        let mut l = layer();
        let _ = l.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn zero_grad_resets() {
        let mut l = layer();
        let x = Matrix::filled(1, 3, 1.0);
        let _ = l.forward_training(&x);
        let _ = l.backward(&Matrix::filled(1, 2, 1.0));
        assert!(l.grad_sq_norm() > 0.0);
        l.zero_grad();
        assert_eq!(l.grad_sq_norm(), 0.0);
    }

    #[test]
    fn grads_accumulate_across_backwards() {
        let mut l = layer();
        let x = Matrix::filled(1, 3, 1.0);
        let _ = l.forward_training(&x);
        let _ = l.backward(&Matrix::filled(1, 2, 1.0));
        let n1 = l.grad_sq_norm();
        let _ = l.forward_training(&x);
        let _ = l.backward(&Matrix::filled(1, 2, 1.0));
        let n2 = l.grad_sq_norm();
        assert!(
            (n2 - 4.0 * n1).abs() < 1e-9,
            "grads should double: {n1} -> {n2}"
        );
    }
}
