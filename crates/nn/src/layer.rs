use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use gansec_tensor::{Matrix, WeightInit};

use crate::{Activation, Dense};

/// One layer of a [`crate::Sequential`] network.
///
/// An enum rather than a trait object: the set of layer kinds needed by the
/// paper's MLP CGAN is closed, enum dispatch is faster at these sizes, and
/// it keeps networks trivially serializable for model persistence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Layer {
    /// Fully-connected affine layer.
    Dense(Dense),
    /// Elementwise activation; caches its forward input.
    Activation {
        /// The activation function applied elementwise.
        act: Activation,
        /// Input cached by the forward pass for the backward derivative.
        #[serde(skip)]
        cached_input: Option<Matrix>,
    },
    /// Inverted dropout; active only while the network is in training mode.
    Dropout(Dropout),
}

impl Layer {
    /// Convenience constructor for a Xavier-initialized dense layer.
    pub fn dense(input_dim: usize, output_dim: usize, rng: &mut impl Rng) -> Self {
        Layer::Dense(Dense::new(input_dim, output_dim, rng))
    }

    /// Convenience constructor for a dense layer with an explicit scheme.
    pub fn dense_with_init(
        input_dim: usize,
        output_dim: usize,
        init: WeightInit,
        rng: &mut impl Rng,
    ) -> Self {
        Layer::Dense(Dense::with_init(input_dim, output_dim, init, rng))
    }

    /// Convenience constructor for an activation layer.
    pub fn activation(act: Activation) -> Self {
        Layer::Activation {
            act,
            cached_input: None,
        }
    }

    /// Convenience constructor for a dropout layer with keep-probability
    /// `1 - rate` and a deterministic seed.
    pub fn dropout(rate: f64, seed: u64) -> Self {
        Layer::Dropout(Dropout::new(rate, seed))
    }

    /// Training forward pass, caching whatever the backward pass needs;
    /// `training` controls dropout behaviour.
    pub fn forward_training(&mut self, x: &Matrix, training: bool) -> Matrix {
        match self {
            Layer::Dense(d) => d.forward_training(x),
            Layer::Activation { act, cached_input } => {
                let a = *act;
                let y = x.map(|v| a.apply(v));
                *cached_input = Some(x.clone());
                y
            }
            Layer::Dropout(d) => d.forward(x, training),
        }
    }

    /// Inference forward pass into a caller-provided buffer: evaluation
    /// mode (dropout is the deterministic identity), no activation
    /// caching, no allocation once `out`'s capacity is warm.
    ///
    /// Returns `true` when the layer wrote its output to `out`, `false`
    /// when the layer is an identity at evaluation time and the input
    /// stands unchanged (dropout), letting the caller skip a copy.
    ///
    /// # Panics
    ///
    /// Panics if `x`'s width does not fit the layer.
    pub fn forward_eval_into(&self, x: &Matrix, out: &mut Matrix) -> bool {
        match self {
            Layer::Dense(d) => {
                d.forward_into(x, out);
                true
            }
            Layer::Activation { act, .. } => {
                let a = *act;
                x.map_into(|v| a.apply(v), out);
                true
            }
            // Inverted dropout scales at training time so evaluation is
            // exactly the identity — same contract as the training path
            // with `training == false`.
            Layer::Dropout(_) => false,
        }
    }

    /// Backward pass; returns the gradient with respect to the layer input.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` on a caching layer.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        match self {
            Layer::Dense(d) => d.backward(grad_output),
            Layer::Activation { act, cached_input } => {
                let x = cached_input
                    .as_ref()
                    .expect("activation backward called before forward");
                let a = *act;
                // Single fused pass: one allocation instead of the
                // derivative matrix plus a hadamard product.
                x.zip_map(grad_output, |v, g| a.derivative(v) * g)
                    .expect("activation backward: grad shape mismatch")
            }
            Layer::Dropout(d) => d.backward(grad_output),
        }
    }

    /// Clears accumulated gradients (no-op for parameterless layers).
    pub fn zero_grad(&mut self) {
        if let Layer::Dense(d) = self {
            d.zero_grad();
        }
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Dense(d) => d.param_count(),
            _ => 0,
        }
    }

    /// Visits `(parameter, gradient)` pairs of this layer.
    pub fn visit_params(&mut self, f: impl FnMut(&mut Matrix, &Matrix)) {
        if let Layer::Dense(d) = self {
            d.visit_params(f);
        }
    }

    /// Sum of squared gradient entries across this layer's parameters.
    pub fn grad_sq_norm(&self) -> f64 {
        match self {
            Layer::Dense(d) => d.grad_sq_norm(),
            _ => 0.0,
        }
    }

    /// Scales this layer's gradients in place.
    pub fn scale_grads(&mut self, s: f64) {
        if let Layer::Dense(d) = self {
            d.scale_grads(s);
        }
    }
}

/// Inverted dropout: during training each activation is zeroed with
/// probability `rate` and survivors are scaled by `1/(1-rate)` so the
/// expected activation is unchanged; at evaluation time it is the identity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dropout {
    rate: f64,
    seed: u64,
    #[serde(skip)]
    rng: Option<StdRng>,
    #[serde(skip)]
    mask: Option<Matrix>,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate < 1.0`.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&rate),
            "dropout rate must be in [0, 1): {rate}"
        );
        Self {
            rate,
            seed,
            rng: None,
            mask: None,
        }
    }

    /// The drop probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    fn forward(&mut self, x: &Matrix, training: bool) -> Matrix {
        if !training || self.rate == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let seed = self.seed;
        let rng = self.rng.get_or_insert_with(|| StdRng::seed_from_u64(seed));
        let keep = 1.0 - self.rate;
        let mask = Matrix::from_fn(x.rows(), x.cols(), |_, _| {
            if rng.gen::<f64>() < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        let y = x.hadamard(&mask).expect("same shape by construction");
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        match &self.mask {
            Some(mask) => grad_output
                .hadamard(mask)
                .expect("dropout backward: grad shape mismatch"),
            None => grad_output.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn activation_layer_round_trip() {
        let mut l = Layer::activation(Activation::Tanh);
        let x = Matrix::row_vector(&[0.5, -0.5]);
        let y = l.forward_training(&x, true);
        assert!((y[(0, 0)] - 0.5f64.tanh()).abs() < 1e-12);
        let g = l.backward(&Matrix::row_vector(&[1.0, 1.0]));
        let expected = 1.0 - 0.5f64.tanh().powi(2);
        assert!((g[(0, 0)] - expected).abs() < 1e-12);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut l = Layer::dropout(0.5, 1);
        let x = Matrix::filled(3, 3, 2.0);
        assert_eq!(l.forward_training(&x, false), x);
    }

    #[test]
    fn dropout_training_preserves_expectation() {
        let mut d = Dropout::new(0.5, 7);
        let x = Matrix::filled(200, 50, 1.0);
        let y = d.forward(&x, true);
        // Mean should be ~1.0 thanks to inverted scaling.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Roughly half the entries are zero.
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f64 / y.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "zero fraction {frac}");
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.3, 3);
        let x = Matrix::filled(4, 4, 1.0);
        let y = d.forward(&x, true);
        let g = d.backward(&Matrix::filled(4, 4, 1.0));
        // Gradient is zero exactly where output was zero.
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn dropout_rejects_rate_one() {
        let _ = Dropout::new(1.0, 0);
    }

    #[test]
    fn param_count_only_counts_dense() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(Layer::dense(3, 4, &mut rng).param_count(), 16);
        assert_eq!(Layer::activation(Activation::Relu).param_count(), 0);
        assert_eq!(Layer::dropout(0.1, 0).param_count(), 0);
    }
}
