//! Finite-difference gradient checking.
//!
//! Backprop bugs in a GAN do not crash — they silently bias the learned
//! conditional density `Pr(F_i | F_j)` that every security verdict in the
//! paper rests on. The checker below perturbs each parameter in turn and
//! compares the numeric directional derivative with the accumulated
//! analytic gradient.

use gansec_tensor::Matrix;

use crate::{mse, Sequential};

/// Outcome of a gradient check.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Largest relative error over all checked parameters.
    pub max_rel_error: f64,
    /// Number of scalar parameters checked.
    pub checked: usize,
}

impl GradCheckReport {
    /// Whether all gradients matched within `tol`.
    pub fn passed(&self, tol: f64) -> bool {
        self.max_rel_error <= tol
    }
}

/// Checks `net`'s backprop gradients for an MSE loss against central finite
/// differences at the given input/target batch.
///
/// `step` is the finite-difference step (1e-5 is a good default for f64).
/// Dropout layers must be disabled (evaluation mode) or the comparison is
/// meaningless; the function enforces evaluation of the stochastic layers
/// by leaving the network's training flag untouched but asserting
/// determinism between two forward passes.
///
/// # Panics
///
/// Panics if the network output shape does not match `target`, or if two
/// successive forward passes disagree (stochastic layer active).
pub fn gradient_check(
    net: &mut Sequential,
    input: &Matrix,
    target: &Matrix,
    step: f64,
) -> GradCheckReport {
    let y1 = net.forward_training(input);
    let y2 = net.forward_training(input);
    assert_eq!(
        y1, y2,
        "gradient_check requires a deterministic network (disable dropout)"
    );

    // Analytic gradients.
    let (_, grad_pred) = mse(&y1, target).expect("output/target shape mismatch");
    net.zero_grad();
    net.backward(&grad_pred);
    let mut analytic: Vec<f64> = Vec::new();
    collect_grads(net, &mut analytic);

    // Numeric gradients, parameter by parameter.
    let n_params = analytic.len();
    let mut numeric = Vec::with_capacity(n_params);
    for i in 0..n_params {
        let orig = perturb_param(net, i, step);
        let (lp, _) = mse(&net.forward_training(input), target).expect("checked above");
        set_param(net, i, orig - step);
        let (lm, _) = mse(&net.forward_training(input), target).expect("checked above");
        set_param(net, i, orig);
        numeric.push((lp - lm) / (2.0 * step));
    }

    let mut max_rel = 0.0;
    for (a, n) in analytic.iter().zip(&numeric) {
        let denom = a.abs().max(n.abs()).max(1e-8);
        let rel = (a - n).abs() / denom;
        if rel > max_rel {
            max_rel = rel;
        }
    }
    GradCheckReport {
        max_rel_error: max_rel,
        checked: n_params,
    }
}

fn collect_grads(net: &mut Sequential, out: &mut Vec<f64>) {
    for_each_param(net, |_, _, grad_val| out.push(grad_val));
}

/// Adds `step` to the `i`-th scalar parameter and returns its original value.
fn perturb_param(net: &mut Sequential, i: usize, step: f64) -> f64 {
    let mut orig = 0.0;
    mutate_param(net, i, |v| {
        orig = v;
        v + step
    });
    orig
}

fn set_param(net: &mut Sequential, i: usize, value: f64) {
    mutate_param(net, i, |_| value);
}

fn mutate_param(net: &mut Sequential, target_idx: usize, f: impl FnOnce(f64) -> f64) {
    let mut f = Some(f);
    let mut idx = 0;
    visit_params_mut(net, |param| {
        let len = param.len();
        if target_idx >= idx && target_idx < idx + len {
            let local = target_idx - idx;
            let slice = param.as_mut_slice();
            if let Some(f) = f.take() {
                slice[local] = f(slice[local]);
            }
        }
        idx += len;
    });
    assert!(
        f.is_none(),
        "parameter index {target_idx} out of range ({idx})"
    );
}

fn visit_params_mut(net: &mut Sequential, mut f: impl FnMut(&mut Matrix)) {
    // Reuse the public step-visitation machinery through a shim optimizer.
    struct Visitor<'a, F: FnMut(&mut Matrix)>(&'a mut F);
    impl<F: FnMut(&mut Matrix)> crate::Optimizer for Visitor<'_, F> {
        fn update(
            &mut self,
            _id: usize,
            param: &mut Matrix,
            _grad: &Matrix,
        ) -> Result<(), crate::OptimError> {
            (self.0)(param);
            Ok(())
        }
        fn learning_rate(&self) -> f64 {
            0.0
        }
        fn set_learning_rate(&mut self, _lr: f64) {}
    }
    net.step(&mut Visitor(&mut f)).expect("visitor cannot fail");
}

fn for_each_param(net: &mut Sequential, mut f: impl FnMut(usize, f64, f64)) {
    struct Collector<'a, F: FnMut(usize, f64, f64)>(&'a mut F);
    impl<F: FnMut(usize, f64, f64)> crate::Optimizer for Collector<'_, F> {
        fn update(
            &mut self,
            id: usize,
            param: &mut Matrix,
            grad: &Matrix,
        ) -> Result<(), crate::OptimError> {
            for (p, g) in param.as_slice().iter().zip(grad.as_slice()) {
                (self.0)(id, *p, *g);
            }
            Ok(())
        }
        fn learning_rate(&self) -> f64 {
            0.0
        }
        fn set_learning_rate(&mut self, _lr: f64) {}
    }
    net.step(&mut Collector(&mut f))
        .expect("collector cannot fail");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Layer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gradcheck_passes_for_mlp() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Sequential::new(vec![
            Layer::dense(3, 5, &mut rng),
            Layer::activation(Activation::Tanh),
            Layer::dense(5, 4, &mut rng),
            Layer::activation(Activation::Sigmoid),
            Layer::dense(4, 2, &mut rng),
        ]);
        let x = Matrix::from_fn(6, 3, |r, c| ((r + c) as f64 * 0.37).sin());
        let t = Matrix::from_fn(6, 2, |r, c| ((r * 2 + c) as f64 * 0.21).cos());
        let report = gradient_check(&mut net, &x, &t, 1e-5);
        assert!(report.checked > 0);
        assert!(
            report.passed(1e-5),
            "max rel error {}",
            report.max_rel_error
        );
    }

    #[test]
    fn gradcheck_passes_for_leaky_relu_stack() {
        // Smooth inputs chosen away from the ReLU kink.
        let mut rng = StdRng::seed_from_u64(13);
        let mut net = Sequential::new(vec![
            Layer::dense(2, 8, &mut rng),
            Layer::activation(Activation::leaky_relu()),
            Layer::dense(8, 1, &mut rng),
        ]);
        let x = Matrix::from_fn(4, 2, |r, c| 0.5 + (r as f64) * 0.1 + (c as f64) * 0.05);
        let t = Matrix::from_fn(4, 1, |r, _| r as f64 * 0.2);
        let report = gradient_check(&mut net, &x, &t, 1e-5);
        assert!(
            report.passed(1e-4),
            "max rel error {}",
            report.max_rel_error
        );
    }

    #[test]
    fn gradcheck_detects_broken_gradients() {
        // A network whose "gradient" we sabotage by scaling post-backward
        // must fail the check; this guards the checker itself.
        let mut rng = StdRng::seed_from_u64(17);
        let mut net = Sequential::new(vec![Layer::dense(2, 2, &mut rng)]);
        let x = Matrix::filled(3, 2, 0.7);
        let t = Matrix::filled(3, 2, -0.3);
        // First verify it passes, then poison the gradients via a bogus
        // extra backward pass (double accumulation) and re-derive numerics
        // manually: the doubled analytic gradient must not match.
        let clean = gradient_check(&mut net, &x, &t, 1e-5);
        assert!(clean.passed(1e-5));
        let y = net.forward_training(&x);
        let (_, grad) = mse(&y, &t).unwrap();
        net.zero_grad();
        net.backward(&grad);
        net.backward(&grad); // double-count
        let mut doubled = Vec::new();
        super::collect_grads(&mut net, &mut doubled);
        let mut single = Vec::new();
        let y = net.forward_training(&x);
        let (_, grad) = mse(&y, &t).unwrap();
        net.zero_grad();
        net.backward(&grad);
        super::collect_grads(&mut net, &mut single);
        for (d, s) in doubled.iter().zip(&single) {
            if *s != 0.0 {
                assert!((d / s - 2.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "deterministic")]
    fn gradcheck_rejects_active_dropout() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut net = Sequential::new(vec![
            Layer::dense(2, 16, &mut rng),
            Layer::dropout(0.5, 3),
            Layer::dense(16, 1, &mut rng),
        ]);
        let x = Matrix::filled(4, 2, 1.0);
        let t = Matrix::filled(4, 1, 0.0);
        let _ = gradient_check(&mut net, &x, &t, 1e-5);
    }
}
