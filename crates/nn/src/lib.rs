//! From-scratch feed-forward neural networks for the GAN-Sec stack.
//!
//! The DATE'19 GAN-Sec paper trains a conditional GAN on 100-bin acoustic
//! feature vectors conditioned on 3-dimensional one-hot G/M-code encodings.
//! At that scale a dense multilayer perceptron with manual backpropagation
//! is the right tool, and implementing it here keeps the reproduction free
//! of any external deep-learning runtime (the Rust DL ecosystem the paper's
//! Python stack assumed does not exist in this dependency-closed build).
//!
//! The crate provides:
//!
//! * [`Dense`] fully-connected layers and [`Activation`] nonlinearities,
//!   wrapped in a serializable [`Layer`] enum;
//! * [`Sequential`] networks with exact reverse-mode gradients;
//! * losses ([`bce_with_logits`], [`mse`]) returning both the scalar loss
//!   and the gradient with respect to the predictions;
//! * optimizers ([`Sgd`], [`Adam`]) driven through the [`Optimizer`] trait;
//! * a finite-difference [`gradient_check`] used by the test-suite to pin
//!   backprop correctness.
//!
//! # Example
//!
//! ```
//! use gansec_nn::{Activation, Layer, Sequential, Sgd, mse};
//! use gansec_tensor::Matrix;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(42);
//! let mut net = Sequential::new(vec![
//!     Layer::dense(2, 8, &mut rng),
//!     Layer::activation(Activation::Tanh),
//!     Layer::dense(8, 1, &mut rng),
//! ]);
//! let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]])?;
//! let t = Matrix::from_rows(&[&[0.0], &[1.0]])?;
//! let mut opt = Sgd::with_momentum(0.3, 0.9);
//! for _ in 0..1000 {
//!     let y = net.forward_training(&x);
//!     let (_, grad) = mse(&y, &t)?;
//!     net.zero_grad();
//!     net.backward(&grad);
//!     net.step(&mut opt)?;
//! }
//! let y = net.forward_training(&x);
//! assert!((y[(0, 0)] - 0.0).abs() < 0.2);
//! assert!((y[(1, 0)] - 1.0).abs() < 0.2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod activation;
mod dense;
mod gradcheck;
mod layer;
mod loss;
mod optim;
mod sequential;

pub use activation::Activation;
pub use dense::Dense;
pub use gradcheck::{gradient_check, GradCheckReport};
pub use layer::{Dropout, Layer};
pub use loss::{bce_with_logits, mse, sigmoid, LossError};
pub use optim::{Adam, OptimError, Optimizer, Sgd};
pub use sequential::{ForwardScratch, Sequential};
