//! Property tests for the neural substrate: backprop must agree with
//! finite differences for randomly shaped networks, and the losses must
//! satisfy their analytic identities on random inputs.

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use gansec_nn::{bce_with_logits, gradient_check, mse, sigmoid, Activation, Layer, Sequential};
use gansec_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn smooth_activation() -> impl Strategy<Value = Activation> {
    // ReLU-family excluded: finite differences straddle the kink.
    prop_oneof![
        Just(Activation::Sigmoid),
        Just(Activation::Tanh),
        Just(Activation::Identity)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_mlps_pass_gradient_check(
        in_dim in 1usize..5,
        hidden in 1usize..8,
        out_dim in 1usize..4,
        act in smooth_activation(),
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new(vec![
            Layer::dense(in_dim, hidden, &mut rng),
            Layer::activation(act),
            Layer::dense(hidden, out_dim, &mut rng),
        ]);
        let x = Matrix::from_fn(3, in_dim, |r, c| ((r * 5 + c + seed as usize) as f64 * 0.17).sin());
        let t = Matrix::from_fn(3, out_dim, |r, c| ((r + c * 3) as f64 * 0.29).cos());
        let report = gradient_check(&mut net, &x, &t, 1e-5);
        prop_assert!(report.checked > 0);
        prop_assert!(report.passed(1e-4), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn bce_bounds_and_grad_sign(
        z in -30.0..30.0f64,
        t in 0.0..1.0f64,
    ) {
        let logits = Matrix::row_vector(&[z]);
        let targets = Matrix::row_vector(&[t]);
        let (loss, grad) = bce_with_logits(&logits, &targets).expect("same shape");
        prop_assert!(loss >= 0.0);
        prop_assert!(loss.is_finite());
        // Gradient is sigmoid(z) - t (for n = 1).
        prop_assert!((grad[(0, 0)] - (sigmoid(z) - t)).abs() < 1e-12);
    }

    #[test]
    fn mse_is_zero_iff_equal(
        vals in proptest::collection::vec(-10.0..10.0f64, 1..8),
        shift in 0.01..5.0f64,
    ) {
        let p = Matrix::row_vector(&vals);
        let (zero_loss, _) = mse(&p, &p.clone()).expect("same shape");
        prop_assert_eq!(zero_loss, 0.0);
        let shifted = p.map(|v| v + shift);
        let (loss, _) = mse(&p, &shifted).expect("same shape");
        prop_assert!((loss - shift * shift).abs() < 1e-9);
    }

    #[test]
    fn forward_is_deterministic_without_dropout(
        seed in 0u64..500,
        rows in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new(vec![
            Layer::dense(3, 7, &mut rng),
            Layer::activation(Activation::leaky_relu()),
            Layer::dense(7, 2, &mut rng),
        ]);
        let x = Matrix::from_fn(rows, 3, |r, c| (r as f64 - c as f64) * 0.3);
        prop_assert_eq!(net.forward(&x), net.forward(&x));
    }

    #[test]
    fn sigmoid_identities(z in -50.0..50.0f64) {
        let s = sigmoid(z);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((sigmoid(-z) - (1.0 - s)).abs() < 1e-12);
    }
}
