use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A complex number over `f64`.
///
/// `num-complex` is outside the approved dependency set, and the FFT/CWT
/// kernels only need a handful of operations, so this is a minimal local
/// implementation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A purely real number.
    pub fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^(i theta)` on the unit circle.
    pub fn from_angle(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Creates from polar coordinates.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Magnitude `sqrt(re^2 + im^2)`.
    pub fn abs(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude, cheaper than [`Complex::abs`] when comparing.
    pub fn norm_sq(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in `(-pi, pi]`.
    pub fn arg(&self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(&self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Scales by a real factor.
    pub fn scale(&self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// True when both parts are finite.
    pub fn is_finite(&self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;

    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;

    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;

    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;

    fn mul(self, s: f64) -> Complex {
        self.scale(s)
    }
}

impl Div for Complex {
    type Output = Complex;

    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sq();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;

    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn multiplication_matches_polar() {
        let a = Complex::from_polar(2.0, 0.5);
        let b = Complex::from_polar(3.0, 1.1);
        let c = a * b;
        assert!((c.abs() - 6.0).abs() < EPS);
        assert!((c.arg() - 1.6).abs() < EPS);
    }

    #[test]
    fn i_squared_is_minus_one() {
        let c = Complex::I * Complex::I;
        assert!((c.re + 1.0).abs() < EPS);
        assert!(c.im.abs() < EPS);
    }

    #[test]
    fn conjugate_product_is_norm_squared() {
        let a = Complex::new(3.0, -4.0);
        let p = a * a.conj();
        assert!((p.re - 25.0).abs() < EPS);
        assert!(p.im.abs() < EPS);
        assert!((a.abs() - 5.0).abs() < EPS);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.5, 0.75);
        let c = (a * b) / b;
        assert!((c.re - a.re).abs() < EPS);
        assert!((c.im - a.im).abs() < EPS);
    }

    #[test]
    fn from_angle_is_unit() {
        for k in 0..8 {
            let theta = k as f64 * 0.7;
            assert!((Complex::from_angle(theta).abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn finite_detection() {
        assert!(Complex::ONE.is_finite());
        assert!(!Complex::new(f64::NAN, 0.0).is_finite());
        assert!(!Complex::new(0.0, f64::INFINITY).is_finite());
    }
}
