//! Fast Fourier transforms: iterative radix-2 Cooley-Tukey for power-of-two
//! lengths and the Bluestein chirp-z algorithm for everything else, so the
//! CWT and STFT layers never need to care about input length.

use crate::Complex;

/// Smallest power of two `>= n` (and `>= 1`).
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Forward discrete Fourier transform of `input`, any length.
///
/// Uses radix-2 Cooley-Tukey when `input.len()` is a power of two and the
/// Bluestein chirp-z transform otherwise. The empty input returns an empty
/// spectrum. No normalization is applied on the forward transform;
/// [`ifft`] divides by `n`, so `ifft(fft(x)) == x`.
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut buf = input.to_vec();
        fft_in_place(&mut buf, false);
        buf
    } else {
        bluestein(input, false)
    }
}

/// Inverse discrete Fourier transform, any length; normalizes by `1/n`.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = if n.is_power_of_two() {
        let mut buf = input.to_vec();
        fft_in_place(&mut buf, true);
        buf
    } else {
        bluestein(input, true)
    };
    let scale = 1.0 / n as f64;
    for c in &mut out {
        *c = c.scale(scale);
    }
    out
}

/// FFT of a real signal.
///
/// Power-of-two lengths run the packed real-input transform (one
/// half-length complex FFT instead of widening every sample to
/// [`Complex`]); other lengths fall back to widening + Bluestein. The
/// result matches the complex path to rounding on the fast path.
pub fn fft_real(input: &[f64]) -> Vec<Complex> {
    let n = input.len();
    if n > 1 && n.is_power_of_two() {
        crate::RealFftPlan::new(n).forward(input)
    } else {
        let buf: Vec<Complex> = input.iter().map(|&x| Complex::from_real(x)).collect();
        fft(&buf)
    }
}

/// Iterative radix-2 Cooley-Tukey; `inverse` flips the twiddle sign.
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
fn fft_in_place(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(
        n.is_power_of_two(),
        "radix-2 FFT requires power-of-two length"
    );
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if i < j {
            buf.swap(i, j);
        }
    }

    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex::from_angle(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for j in 0..len / 2 {
                let u = buf[i + j];
                let v = buf[i + j + len / 2] * w;
                buf[i + j] = u + v;
                buf[i + j + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Bluestein chirp-z transform: expresses an arbitrary-length DFT as a
/// convolution, evaluated with a zero-padded power-of-two FFT.
fn bluestein(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // chirp[k] = exp(sign * i * pi * k^2 / n)
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            // k^2 mod 2n computed with u128 to dodge overflow for large k.
            let k2 = ((k as u128 * k as u128) % (2 * n as u128)) as f64;
            Complex::from_angle(sign * std::f64::consts::PI * k2 / n as f64)
        })
        .collect();

    let m = next_power_of_two(2 * n - 1);
    let mut a = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = input[k] * chirp[k];
    }
    let mut b = vec![Complex::ZERO; m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        let c = chirp[k].conj();
        b[k] = c;
        b[m - k] = c;
    }

    fft_in_place(&mut a, false);
    fft_in_place(&mut b, false);
    for (x, y) in a.iter_mut().zip(&b) {
        *x *= *y;
    }
    fft_in_place(&mut a, true);
    let scale = 1.0 / m as f64;
    (0..n).map(|k| a[k].scale(scale) * chirp[k]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(input: &[Complex]) -> Vec<Complex> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &x) in input.iter().enumerate() {
                    let ang = -std::f64::consts::TAU * (k * j) as f64 / n as f64;
                    acc += x * Complex::from_angle(ang);
                }
                acc
            })
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() < tol,
                "bin {i}: {x:?} vs {y:?} (diff {})",
                (*x - *y).abs()
            );
        }
    }

    fn test_signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64 * 0.73).sin(), (i as f64 * 1.31).cos() * 0.4))
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft_power_of_two() {
        for n in [1usize, 2, 4, 8, 32, 128] {
            let x = test_signal(n);
            assert_close(&fft(&x), &naive_dft(&x), 1e-9);
        }
    }

    #[test]
    fn fft_matches_naive_dft_arbitrary_length() {
        for n in [3usize, 5, 7, 12, 100, 150] {
            let x = test_signal(n);
            assert_close(&fft(&x), &naive_dft(&x), 1e-8);
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        for n in [8usize, 17, 64, 100] {
            let x = test_signal(n);
            let back = ifft(&fft(&x));
            assert_close(&back, &x, 1e-9);
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        let spec = fft(&x);
        for c in spec {
            assert!((c.re - 1.0).abs() < 1e-12 && c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_concentrates_energy() {
        let n = 128;
        let f = 10;
        let x: Vec<Complex> = (0..n)
            .map(|i| {
                Complex::from_real((std::f64::consts::TAU * f as f64 * i as f64 / n as f64).sin())
            })
            .collect();
        let spec = fft(&x);
        let mags: Vec<f64> = spec.iter().map(Complex::abs).collect();
        // Peak at bin f (and its mirror n-f).
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(peak == f || peak == n - f);
        assert!((mags[f] - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn parseval_energy_conservation() {
        let x = test_signal(64);
        let spec = fft(&x);
        let time_energy: f64 = x.iter().map(Complex::norm_sq).sum();
        let freq_energy: f64 = spec.iter().map(Complex::norm_sq).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn linearity() {
        let x = test_signal(32);
        let y: Vec<Complex> = test_signal(32).iter().map(|c| c.conj()).collect();
        let sum: Vec<Complex> = x.iter().zip(&y).map(|(&a, &b)| a + b).collect();
        let fx = fft(&x);
        let fy = fft(&y);
        let fsum = fft(&sum);
        for i in 0..32 {
            assert!((fsum[i] - (fx[i] + fy[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_input_round_trips() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
    }

    #[test]
    fn next_power_of_two_bounds() {
        assert_eq!(next_power_of_two(0), 1);
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(5), 8);
        assert_eq!(next_power_of_two(64), 64);
        assert_eq!(next_power_of_two(65), 128);
    }

    #[test]
    fn fft_real_matches_complex_path() {
        let xs: Vec<f64> = (0..48).map(|i| (i as f64 * 0.31).sin()).collect();
        let a = fft_real(&xs);
        let b = fft(&xs
            .iter()
            .map(|&v| Complex::from_real(v))
            .collect::<Vec<_>>());
        assert_close(&a, &b, 1e-12);
    }

    #[test]
    fn fft_real_packed_path_matches_complex_on_power_of_two() {
        for n in [2usize, 4, 8, 16, 64, 256, 1024] {
            let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin() - 0.1).collect();
            let a = fft_real(&xs);
            let widened: Vec<Complex> = xs.iter().map(|&v| Complex::from_real(v)).collect();
            let b = fft(&widened);
            assert_close(&a, &b, 1e-12 * (1.0 + n as f64));
        }
    }

    #[test]
    fn fft_real_degenerate_lengths() {
        assert!(fft_real(&[]).is_empty());
        let one = fft_real(&[2.5]);
        assert_eq!(one.len(), 1);
        assert!((one[0].re - 2.5).abs() < 1e-15 && one[0].im.abs() < 1e-15);
    }
}
