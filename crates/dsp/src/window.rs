//! Analysis window functions for the STFT baseline.

use serde::{Deserialize, Serialize};

/// A tapering window applied to each analysis frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Window {
    /// No tapering (all ones).
    Rectangular,
    /// Hann window `0.5 (1 - cos(2 pi n / (N-1)))`.
    Hann,
    /// Hamming window `0.54 - 0.46 cos(2 pi n / (N-1))`.
    Hamming,
    /// Blackman window (three-term).
    Blackman,
}

impl Window {
    /// Evaluates the window at sample `n` of a length-`len` frame.
    ///
    /// Returns `1.0` for frames of length 0 or 1 (degenerate but defined).
    pub fn coefficient(self, n: usize, len: usize) -> f64 {
        if len <= 1 {
            return 1.0;
        }
        let x = n as f64 / (len - 1) as f64;
        let tau = std::f64::consts::TAU;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 * (1.0 - (tau * x).cos()),
            Window::Hamming => 0.54 - 0.46 * (tau * x).cos(),
            Window::Blackman => 0.42 - 0.5 * (tau * x).cos() + 0.08 * (2.0 * tau * x).cos(),
        }
    }

    /// Materializes the window as a coefficient vector.
    pub fn coefficients(self, len: usize) -> Vec<f64> {
        (0..len).map(|n| self.coefficient(n, len)).collect()
    }

    /// Applies the window to a frame in place.
    ///
    /// # Panics
    ///
    /// Never panics; the frame defines the window length.
    pub fn apply(self, frame: &mut [f64]) {
        let len = frame.len();
        for (n, x) in frame.iter_mut().enumerate() {
            *x *= self.coefficient(n, len);
        }
    }
}

impl Default for Window {
    /// Hann: the standard spectral-analysis default.
    fn default() -> Self {
        Window::Hann
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hann_endpoints_are_zero() {
        let w = Window::Hann.coefficients(64);
        assert!(w[0].abs() < 1e-12);
        assert!(w[63].abs() < 1e-12);
    }

    #[test]
    fn windows_peak_near_center() {
        for win in [Window::Hann, Window::Hamming, Window::Blackman] {
            let w = win.coefficients(65);
            let peak = w
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            assert_eq!(peak, 32, "{win:?}");
        }
    }

    #[test]
    fn windows_are_symmetric() {
        for win in [Window::Hann, Window::Hamming, Window::Blackman] {
            let w = win.coefficients(33);
            for i in 0..33 {
                assert!((w[i] - w[32 - i]).abs() < 1e-12, "{win:?} at {i}");
            }
        }
    }

    #[test]
    fn rectangular_is_all_ones() {
        assert!(Window::Rectangular
            .coefficients(10)
            .iter()
            .all(|&x| x == 1.0));
    }

    #[test]
    fn degenerate_lengths() {
        assert_eq!(Window::Hann.coefficient(0, 0), 1.0);
        assert_eq!(Window::Hann.coefficient(0, 1), 1.0);
    }

    #[test]
    fn apply_windows_in_place() {
        let mut frame = vec![1.0; 8];
        Window::Hann.apply(&mut frame);
        assert!(frame[0].abs() < 1e-12);
        assert!(frame[4] > 0.9);
    }
}
