//! Feature construction and selection: the paper's `f_X` and `f_Y`.
//!
//! §I-B defines an energy flow `F_E` as a continuous-time signal, a
//! feature-construction function `X = f_X(F_E)` and a feature
//! extraction/selection function `Y = f_Y(X)`. Here:
//!
//! * `f_X` = frame the signal, run the Morlet CWT at the bin-center
//!   frequencies, and average magnitudes per frame → one row per frame,
//!   one column per frequency bin;
//! * `f_Y` = min-max scale each column into `[0, 1]` (the paper scales
//!   "frequency magnitudes ... between 0 and 1") and optionally select
//!   the most informative columns by variance.

use serde::{Deserialize, Serialize};

use crate::{FrequencyBins, MorletCwt, PlanCache, Stft, Window};

/// Which time-frequency analysis backs the feature construction `f_X`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnalysisKind {
    /// The paper's choice: Morlet continuous wavelet transform,
    /// "which preserves the high-frequency resolution in time-domain"
    /// (§IV-B).
    Cwt,
    /// Hann-windowed STFT, the conventional alternative; provided so the
    /// CWT-vs-STFT design choice can be ablated.
    Stft,
}

impl Default for AnalysisKind {
    /// The paper's CWT.
    fn default() -> Self {
        AnalysisKind::Cwt
    }
}

/// How feature columns are normalized by [`FeatureExtractor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingKind {
    /// Columns scaled to `[0, 1]` using the matrix's own min/max
    /// (the paper's choice).
    MinMax,
    /// Raw CWT magnitudes.
    None,
}

/// Frame-by-bin feature matrix produced by `f_X`/`f_Y`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMatrix {
    rows: Vec<Vec<f64>>,
    n_features: usize,
}

impl FeatureMatrix {
    /// Wraps pre-computed rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let n_features = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|r| r.len() == n_features),
            "ragged feature rows"
        );
        Self { rows, n_features }
    }

    /// Number of frames (rows).
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of features per frame (columns).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Borrows the rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Consumes into rows.
    pub fn into_rows(self) -> Vec<Vec<f64>> {
        self.rows
    }

    /// Copies column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.n_features()`.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(j < self.n_features, "column {j} out of range");
        self.rows.iter().map(|r| r[j]).collect()
    }

    /// Per-column variance.
    pub fn column_variances(&self) -> Vec<f64> {
        (0..self.n_features)
            .map(|j| {
                let col = self.column(j);
                let m = col.iter().sum::<f64>() / col.len().max(1) as f64;
                col.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / col.len().max(1) as f64
            })
            .collect()
    }

    /// Indices of the `k` highest-variance columns, descending by
    /// variance. This is the default `f_Y` selection: the paper's Table I
    /// reports likelihoods "of a single feature", chosen as an informative
    /// frequency index.
    pub fn top_variance_indices(&self, k: usize) -> Vec<usize> {
        let vars = self.column_variances();
        let mut idx: Vec<usize> = (0..vars.len()).collect();
        idx.sort_by(|&a, &b| vars[b].total_cmp(&vars[a]).then(a.cmp(&b)));
        idx.truncate(k);
        idx
    }

    /// Projects onto the given column indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_columns(&self, indices: &[usize]) -> FeatureMatrix {
        let rows = self
            .rows
            .iter()
            .map(|r| indices.iter().map(|&j| r[j]).collect())
            .collect();
        FeatureMatrix {
            rows,
            n_features: indices.len(),
        }
    }

    /// Scales all values into `[0, 1]` using a single global min/max
    /// (preserving the *relative* magnitudes across bins, which is what
    /// the conditional density comparison in Algorithm 3 relies on).
    /// Returns the `(min, max)` used so test data can be scaled
    /// identically.
    pub fn minmax_scale_global(&mut self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for row in &self.rows {
            for &v in row {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return (0.0, 1.0);
        }
        let span = hi - lo;
        for row in &mut self.rows {
            for v in row {
                *v = (*v - lo) / span;
            }
        }
        (lo, hi)
    }

    /// Applies a previously fitted `(min, max)` scaling, clamping into
    /// `[0, 1]`.
    pub fn apply_minmax(&mut self, lo: f64, hi: f64) {
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        for row in &mut self.rows {
            for v in row {
                *v = ((*v - lo) / span).clamp(0.0, 1.0);
            }
        }
    }
}

/// The `f_X`/`f_Y` pipeline: energy flow (audio samples) → bounded
/// frame-by-bin feature matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureExtractor {
    bins: FrequencyBins,
    frame_len: usize,
    hop: usize,
    scaling: ScalingKind,
    analysis: AnalysisKind,
}

impl FeatureExtractor {
    /// Creates an extractor.
    ///
    /// # Panics
    ///
    /// Panics if `frame_len == 0` or `hop == 0`.
    pub fn new(bins: FrequencyBins, frame_len: usize, hop: usize, scaling: ScalingKind) -> Self {
        Self::with_analysis(bins, frame_len, hop, scaling, AnalysisKind::Cwt)
    }

    /// Creates an extractor with an explicit time-frequency analysis
    /// (CWT, as in the paper, or STFT for the ablation).
    ///
    /// # Panics
    ///
    /// Panics if `frame_len == 0` or `hop == 0`.
    pub fn with_analysis(
        bins: FrequencyBins,
        frame_len: usize,
        hop: usize,
        scaling: ScalingKind,
        analysis: AnalysisKind,
    ) -> Self {
        assert!(frame_len > 0, "frame_len must be positive");
        assert!(hop > 0, "hop must be positive");
        Self {
            bins,
            frame_len,
            hop,
            scaling,
            analysis,
        }
    }

    /// The paper's configuration: 100 log bins in [50, 5000] Hz, 1024-sample
    /// frames with 50% overlap, min-max scaled.
    pub fn paper_default() -> Self {
        Self::new(
            FrequencyBins::paper_default(),
            1024,
            512,
            ScalingKind::MinMax,
        )
    }

    /// The frequency binning in use.
    pub fn bins(&self) -> &FrequencyBins {
        &self.bins
    }

    /// The time-frequency analysis in use.
    pub fn analysis(&self) -> AnalysisKind {
        self.analysis
    }

    /// Frame length in samples.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Hop size in samples.
    pub fn hop(&self) -> usize {
        self.hop
    }

    /// Number of complete frames for a signal of `n` samples.
    pub fn frame_count(&self, n: usize) -> usize {
        if n < self.frame_len {
            0
        } else {
            (n - self.frame_len) / self.hop + 1
        }
    }

    /// Runs `f_X` then `f_Y`'s scaling: time-frequency analysis at the
    /// bin centers, per-frame mean magnitude per bin, then the configured
    /// normalization.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate <= 0`.
    pub fn extract(&self, signal: &[f64], sample_rate: f64) -> FeatureMatrix {
        let n_frames = self.frame_count(signal.len());
        if n_frames == 0 {
            return FeatureMatrix::from_rows(Vec::new());
        }
        let rows = match self.analysis {
            AnalysisKind::Cwt => self.extract_cwt_rows(signal, sample_rate, n_frames),
            AnalysisKind::Stft => self.extract_stft_rows(signal, sample_rate, n_frames),
        };
        let mut fm = FeatureMatrix::from_rows(rows);
        if self.scaling == ScalingKind::MinMax {
            fm.minmax_scale_global();
        }
        fm
    }

    /// [`FeatureExtractor::extract`] through the planned DSP front end:
    /// the CWT plan for this signal shape is taken from (or built into)
    /// `plans`, so repeat extractions over equal-length segments skip
    /// the per-call twiddle/daughter-spectrum setup entirely. Output is
    /// bit-identical to [`FeatureExtractor::extract`] at any thread
    /// count; STFT-backed extractors fall through to the unplanned path.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate <= 0`.
    pub fn extract_planned(
        &self,
        signal: &[f64],
        sample_rate: f64,
        plans: &PlanCache,
    ) -> FeatureMatrix {
        if self.analysis != AnalysisKind::Cwt {
            return self.extract(signal, sample_rate);
        }
        let n_frames = self.frame_count(signal.len());
        if n_frames == 0 {
            return FeatureMatrix::from_rows(Vec::new());
        }
        let cwt = MorletCwt::standard(self.bins.centers());
        let plan = plans.cwt_plan(&cwt, signal.len(), sample_rate);
        let scal = plan.transform(signal);
        let rows = gansec_parallel::par_map_indexed(n_frames, |f| {
            let start = f * self.hop;
            scal.mean_per_frequency_in(start, start + self.frame_len)
        });
        let mut fm = FeatureMatrix::from_rows(rows);
        if self.scaling == ScalingKind::MinMax {
            fm.minmax_scale_global();
        }
        fm
    }

    /// The hop-blocked offline reference for streaming ingest: the
    /// signal is partitioned into hop-sized blocks by absolute sample
    /// index, each block is CWT-transformed **once** (so overlapping
    /// frames never re-transform shared samples), and frame rows are
    /// per-bin means over the concatenated block magnitudes.
    ///
    /// This is deliberately *not* bit-identical to
    /// [`FeatureExtractor::extract_planned`]: the planned path runs one
    /// FFT circular convolution over the whole signal, so every output
    /// sample depends on every input sample — a shape no incremental
    /// extractor can reproduce without buffering the entire stream.
    /// Blocking the convolution at hop boundaries makes the output a
    /// pure function of each hop block, which is exactly what lets
    /// `gansec-stream` produce bit-identical rows for *any* chunking of
    /// the same samples. This function is the canonical offline batch
    /// path those parity tests compare against; the per-frame arithmetic
    /// is shared through [`frame_mean_per_bin`].
    ///
    /// A final partial block (fewer than `hop` samples) is transformed
    /// with its own shorter plan, matching the streaming extractor's
    /// flush at session close. Total transforms: `ceil(n / hop)` — the
    /// "≤ 1 transform per hop" contract.
    ///
    /// Output is bit-identical at any thread count: block transforms and
    /// frame rows are independent units stitched in index order.
    /// STFT-backed extractors fall through to the unplanned path.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate <= 0`.
    pub fn extract_streamed(
        &self,
        signal: &[f64],
        sample_rate: f64,
        plans: &PlanCache,
    ) -> FeatureMatrix {
        if self.analysis != AnalysisKind::Cwt {
            return self.extract(signal, sample_rate);
        }
        let n_frames = self.frame_count(signal.len());
        if n_frames == 0 {
            return FeatureMatrix::from_rows(Vec::new());
        }
        let cwt = MorletCwt::standard(self.bins.centers());
        let n = signal.len();
        let n_blocks = n.div_ceil(self.hop);
        let blocks = gansec_parallel::par_map_indexed(n_blocks, |b| {
            let start = b * self.hop;
            let end = (start + self.hop).min(n);
            let plan = plans.cwt_plan(&cwt, end - start, sample_rate);
            plan.transform(&signal[start..end])
        });
        let n_bins = self.bins.n_bins();
        let mut mags: Vec<Vec<f64>> = vec![Vec::with_capacity(n); n_bins];
        for block in &blocks {
            for (bin, mag) in mags.iter_mut().enumerate() {
                mag.extend_from_slice(block.row(bin));
            }
        }
        let rows = gansec_parallel::par_map_indexed(n_frames, |f| {
            frame_mean_per_bin(&mags, f * self.hop, self.frame_len)
        });
        let mut fm = FeatureMatrix::from_rows(rows);
        if self.scaling == ScalingKind::MinMax {
            fm.minmax_scale_global();
        }
        fm
    }

    fn extract_cwt_rows(&self, signal: &[f64], sample_rate: f64, n_frames: usize) -> Vec<Vec<f64>> {
        let cwt = MorletCwt::standard(self.bins.centers());
        let scal = cwt.transform(signal, sample_rate);
        // Per-frame rows are independent reads of the shared scalogram;
        // fan out over frames and stitch in frame order.
        gansec_parallel::par_map_indexed(n_frames, |f| {
            let start = f * self.hop;
            scal.mean_per_frequency_in(start, start + self.frame_len)
        })
    }

    fn extract_stft_rows(
        &self,
        signal: &[f64],
        sample_rate: f64,
        n_frames: usize,
    ) -> Vec<Vec<f64>> {
        let stft = Stft::new(self.frame_len, self.hop, Window::Hann);
        let spec = stft.spectrogram(signal, sample_rate);
        let n_fft_bins = self.frame_len / 2 + 1;
        let freqs: Vec<f64> = (0..n_fft_bins).map(|b| spec.bin_frequency(b)).collect();
        let mut rows = Vec::with_capacity(n_frames);
        for frame in spec.magnitudes().iter().take(n_frames) {
            rows.push(self.bins.bin_spectrum(&freqs, frame));
        }
        // Spectrogram framing matches frame_count by construction, but
        // guard against rounding by padding with silence rows.
        while rows.len() < n_frames {
            rows.push(vec![0.0; self.bins.n_bins()]);
        }
        rows
    }
}

impl Default for FeatureExtractor {
    /// The paper's configuration (see [`FeatureExtractor::paper_default`]).
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One frame row of the hop-blocked feature path: the per-bin mean of
/// `mags[bin][start .. start + frame_len]`, summed strictly left to
/// right.
///
/// Shared by [`FeatureExtractor::extract_streamed`] and the incremental
/// extractor in `gansec-stream` so both sides execute the *same*
/// floating-point operation sequence — the foundation of the
/// streamed-vs-offline bit-identity contract. `start` is relative to
/// the magnitude buffers, which lets the streaming side pass a trimmed
/// window of its history.
///
/// # Panics
///
/// Panics if any bin buffer is shorter than `start + frame_len`.
pub fn frame_mean_per_bin(mags: &[Vec<f64>], start: usize, frame_len: usize) -> Vec<f64> {
    mags.iter()
        .map(|bin| bin[start..start + frame_len].iter().sum::<f64>() / frame_len as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (std::f64::consts::TAU * freq * i as f64 / fs).sin())
            .collect()
    }

    fn small_extractor() -> FeatureExtractor {
        FeatureExtractor::new(
            FrequencyBins::log_spaced(20, 50.0, 4000.0),
            512,
            256,
            ScalingKind::MinMax,
        )
    }

    #[test]
    fn extract_shapes() {
        let fs = 8000.0;
        let fx = small_extractor();
        let fm = fx.extract(&tone(440.0, fs, 2048), fs);
        assert_eq!(fm.n_features(), 20);
        assert_eq!(fm.n_rows(), fx.frame_count(2048));
        assert!(fm.n_rows() > 0);
    }

    #[test]
    fn minmax_scaling_bounds_values() {
        let fs = 8000.0;
        let fm = small_extractor().extract(&tone(1000.0, fs, 4096), fs);
        for row in fm.rows() {
            for &v in row {
                assert!((0.0..=1.0).contains(&v), "value {v} out of [0,1]");
            }
        }
    }

    #[test]
    fn tone_energy_lands_in_right_bin() {
        let fs = 8000.0;
        let fx = FeatureExtractor::new(
            FrequencyBins::log_spaced(20, 50.0, 4000.0),
            512,
            256,
            ScalingKind::None,
        );
        let fm = fx.extract(&tone(1000.0, fs, 4096), fs);
        let mean: Vec<f64> = (0..fm.n_features())
            .map(|j| {
                let c = fm.column(j);
                c.iter().sum::<f64>() / c.len() as f64
            })
            .collect();
        let peak = mean
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let peak_freq = fx.bins().centers()[peak];
        assert!(
            (peak_freq / 1000.0).ln().abs() < 0.3,
            "peak bin center {peak_freq} Hz"
        );
    }

    #[test]
    fn top_variance_selects_informative_bins() {
        // Alternate two tones across time; the two active bins should have
        // the highest variance.
        let fs = 8000.0;
        let mut sig = tone(300.0, fs, 4096);
        sig.extend(tone(2000.0, fs, 4096));
        let fx = small_extractor();
        let fm = fx.extract(&sig, fs);
        let top = fm.top_variance_indices(2);
        let c0 = fx.bins().centers()[top[0]];
        let c1 = fx.bins().centers()[top[1]];
        let near = |c: f64, f: f64| (c / f).ln().abs() < 0.5;
        assert!(
            (near(c0, 300.0) || near(c0, 2000.0)) && (near(c1, 300.0) || near(c1, 2000.0)),
            "top bins at {c0} Hz and {c1} Hz"
        );
    }

    #[test]
    fn short_signal_yields_empty_matrix() {
        let fm = small_extractor().extract(&[0.0; 100], 8000.0);
        assert_eq!(fm.n_rows(), 0);
        assert_eq!(fm.n_features(), 0);
    }

    #[test]
    fn select_columns_projects() {
        let fm = FeatureMatrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let s = fm.select_columns(&[2, 0]);
        assert_eq!(s.rows(), &[vec![3.0, 1.0], vec![6.0, 4.0]]);
    }

    #[test]
    fn apply_minmax_clamps() {
        let mut fm = FeatureMatrix::from_rows(vec![vec![-1.0, 0.5, 2.0]]);
        fm.apply_minmax(0.0, 1.0);
        assert_eq!(fm.rows()[0], vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn constant_matrix_scales_safely() {
        let mut fm = FeatureMatrix::from_rows(vec![vec![5.0, 5.0], vec![5.0, 5.0]]);
        let (lo, hi) = fm.minmax_scale_global();
        assert_eq!((lo, hi), (0.0, 1.0));
        assert_eq!(fm.rows()[0], vec![5.0, 5.0]); // unchanged
    }

    #[test]
    fn stft_variant_matches_shapes() {
        let fs = 8000.0;
        let fx = FeatureExtractor::with_analysis(
            FrequencyBins::log_spaced(20, 50.0, 4000.0),
            512,
            256,
            ScalingKind::MinMax,
            AnalysisKind::Stft,
        );
        let fm = fx.extract(&tone(440.0, fs, 2048), fs);
        assert_eq!(fm.n_features(), 20);
        assert_eq!(fm.n_rows(), fx.frame_count(2048));
        for row in fm.rows() {
            for &v in row {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn stft_variant_finds_the_tone() {
        let fs = 8000.0;
        let fx = FeatureExtractor::with_analysis(
            FrequencyBins::log_spaced(20, 50.0, 4000.0),
            512,
            256,
            ScalingKind::None,
            AnalysisKind::Stft,
        );
        let fm = fx.extract(&tone(1000.0, fs, 4096), fs);
        let mean: Vec<f64> = (0..fm.n_features())
            .map(|j| {
                let c = fm.column(j);
                c.iter().sum::<f64>() / c.len() as f64
            })
            .collect();
        let peak = mean
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let peak_freq = fx.bins().centers()[peak];
        assert!((peak_freq / 1000.0).ln().abs() < 0.3, "peak {peak_freq} Hz");
    }

    #[test]
    fn planned_extract_is_bit_identical_to_unplanned() {
        let fs = 8000.0;
        let fx = small_extractor();
        let mut sig = tone(440.0, fs, 2048);
        sig.extend(tone(1500.0, fs, 2048));
        let plans = PlanCache::new();
        let planned = fx.extract_planned(&sig, fs, &plans);
        let unplanned = fx.extract(&sig, fs);
        assert_eq!(planned.n_rows(), unplanned.n_rows());
        for (a, b) in planned.rows().iter().zip(unplanned.rows()) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
            }
        }
        assert_eq!(plans.len(), 1);
        // A second extraction reuses the cached plan and stays identical.
        let again = fx.extract_planned(&sig, fs, &plans);
        assert_eq!(plans.len(), 1);
        assert_eq!(again, planned);
    }

    #[test]
    fn planned_extract_stft_falls_through() {
        let fs = 8000.0;
        let fx = FeatureExtractor::with_analysis(
            FrequencyBins::log_spaced(20, 50.0, 4000.0),
            512,
            256,
            ScalingKind::MinMax,
            AnalysisKind::Stft,
        );
        let sig = tone(440.0, fs, 2048);
        let plans = PlanCache::new();
        assert_eq!(fx.extract_planned(&sig, fs, &plans), fx.extract(&sig, fs));
        assert!(plans.is_empty());
    }

    #[test]
    fn planned_extract_short_signal_is_empty() {
        let plans = PlanCache::new();
        let fm = small_extractor().extract_planned(&[0.0; 100], 8000.0, &plans);
        assert_eq!(fm.n_rows(), 0);
        assert!(plans.is_empty());
    }

    #[test]
    fn streamed_extract_shapes_match_planned() {
        let fs = 8000.0;
        let fx = small_extractor();
        let mut sig = tone(440.0, fs, 2048);
        sig.extend(tone(1500.0, fs, 1500)); // non-multiple of hop: partial tail block
        let plans = PlanCache::new();
        let streamed = fx.extract_streamed(&sig, fs, &plans);
        assert_eq!(streamed.n_rows(), fx.frame_count(sig.len()));
        assert_eq!(streamed.n_features(), 20);
        // Two plan shapes at most: the hop block and the partial tail.
        assert!(plans.len() <= 2, "plans: {}", plans.len());
        // Deterministic: a second run is bit-identical.
        let again = fx.extract_streamed(&sig, fs, &plans);
        assert_eq!(again, streamed);
    }

    #[test]
    fn streamed_extract_is_thread_count_invariant() {
        let fs = 8000.0;
        let fx = FeatureExtractor::new(
            FrequencyBins::log_spaced(20, 50.0, 4000.0),
            512,
            256,
            ScalingKind::None,
        );
        let sig = tone(700.0, fs, 3000);
        let plans = PlanCache::new();
        gansec_parallel::set_threads(1);
        let serial = fx.extract_streamed(&sig, fs, &plans);
        gansec_parallel::set_threads(4);
        let parallel = fx.extract_streamed(&sig, fs, &plans);
        gansec_parallel::set_threads(0);
        for (a, b) in serial.rows().iter().zip(parallel.rows()) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn streamed_extract_short_signal_is_empty() {
        let plans = PlanCache::new();
        let fm = small_extractor().extract_streamed(&[0.0; 100], 8000.0, &plans);
        assert_eq!(fm.n_rows(), 0);
        assert!(plans.is_empty());
    }

    #[test]
    fn frame_mean_per_bin_is_the_sequential_mean() {
        let mags = vec![vec![1.0, 2.0, 3.0, 4.0], vec![0.5, 0.5, 0.5, 0.5]];
        let row = frame_mean_per_bin(&mags, 1, 2);
        assert_eq!(row, vec![2.5, 0.5]);
    }

    #[test]
    fn analysis_kind_accessor() {
        assert_eq!(small_extractor().analysis(), AnalysisKind::Cwt);
        assert_eq!(AnalysisKind::default(), AnalysisKind::Cwt);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = FeatureMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }
}
