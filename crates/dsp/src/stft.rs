//! Short-time Fourier transform.
//!
//! The paper uses a wavelet transform for its features; the STFT here
//! serves two purposes: it is the ablation baseline (`fig8`-style densities
//! computed from STFT features instead of CWT features), and it provides
//! the spectrogram view used by the simulator's own tests to verify motor
//! signatures land at the intended frequencies.

use serde::{Deserialize, Serialize};

use crate::{fft_real, RealFftPlan, Window};

/// Configuration for a short-time Fourier transform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stft {
    frame_len: usize,
    hop: usize,
    window: Window,
}

impl Stft {
    /// Creates an STFT with the given frame length and hop size.
    ///
    /// # Panics
    ///
    /// Panics if `frame_len == 0` or `hop == 0`.
    pub fn new(frame_len: usize, hop: usize, window: Window) -> Self {
        assert!(frame_len > 0, "frame_len must be positive");
        assert!(hop > 0, "hop must be positive");
        Self {
            frame_len,
            hop,
            window,
        }
    }

    /// Frame length in samples.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Hop size in samples.
    pub fn hop(&self) -> usize {
        self.hop
    }

    /// Number of complete frames available in a signal of length `n`.
    pub fn frame_count(&self, n: usize) -> usize {
        if n < self.frame_len {
            0
        } else {
            (n - self.frame_len) / self.hop + 1
        }
    }

    /// Computes the magnitude spectrogram of `signal` sampled at
    /// `sample_rate` Hz. Only the non-negative-frequency half of each
    /// spectrum is kept.
    pub fn spectrogram(&self, signal: &[f64], sample_rate: f64) -> Spectrogram {
        let n_frames = self.frame_count(signal.len());
        let n_bins = self.frame_len / 2 + 1;
        let mut mags = Vec::with_capacity(n_frames);
        let mut frame = vec![0.0; self.frame_len];
        // One packed real-input plan shared by every frame (power-of-two
        // frame lengths only; odd sizes fall back to the ad-hoc path).
        let plan = (n_frames > 0 && self.frame_len > 1 && self.frame_len.is_power_of_two())
            .then(|| RealFftPlan::new(self.frame_len));
        for f in 0..n_frames {
            let start = f * self.hop;
            frame.copy_from_slice(&signal[start..start + self.frame_len]);
            self.window.apply(&mut frame);
            let spec = match &plan {
                Some(p) => p.forward(&frame),
                None => fft_real(&frame),
            };
            mags.push(spec[..n_bins].iter().map(|c| c.abs()).collect());
        }
        let bin_hz = sample_rate / self.frame_len as f64;
        Spectrogram {
            magnitudes: mags,
            bin_hz,
            hop_seconds: self.hop as f64 / sample_rate,
        }
    }
}

impl Default for Stft {
    /// 1024-sample Hann frames with 50% overlap.
    fn default() -> Self {
        Self::new(1024, 512, Window::Hann)
    }
}

/// Magnitude spectrogram: `magnitudes[frame][bin]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Spectrogram {
    magnitudes: Vec<Vec<f64>>,
    bin_hz: f64,
    hop_seconds: f64,
}

impl Spectrogram {
    /// Magnitudes indexed as `[frame][bin]`.
    pub fn magnitudes(&self) -> &[Vec<f64>] {
        &self.magnitudes
    }

    /// Width of one frequency bin in Hz.
    pub fn bin_hz(&self) -> f64 {
        self.bin_hz
    }

    /// Time step between frames in seconds.
    pub fn hop_seconds(&self) -> f64 {
        self.hop_seconds
    }

    /// Number of frames.
    pub fn n_frames(&self) -> usize {
        self.magnitudes.len()
    }

    /// Center frequency of bin `b` in Hz.
    pub fn bin_frequency(&self, b: usize) -> f64 {
        b as f64 * self.bin_hz
    }

    /// Average magnitude per bin across all frames (the marginal spectrum).
    pub fn mean_spectrum(&self) -> Vec<f64> {
        if self.magnitudes.is_empty() {
            return Vec::new();
        }
        let n_bins = self.magnitudes[0].len();
        let mut acc = vec![0.0; n_bins];
        for frame in &self.magnitudes {
            for (a, &m) in acc.iter_mut().zip(frame) {
                *a += m;
            }
        }
        let n = self.magnitudes.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }

    /// Frequency (Hz) of the strongest bin in the mean spectrum, skipping
    /// the DC bin; `None` when empty.
    pub fn dominant_frequency(&self) -> Option<f64> {
        let mean = self.mean_spectrum();
        if mean.len() < 2 {
            return None;
        }
        let (idx, _) = mean
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.total_cmp(b.1))?;
        Some(self.bin_frequency(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, sample_rate: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (std::f64::consts::TAU * freq * i as f64 / sample_rate).sin())
            .collect()
    }

    #[test]
    fn frame_count_math() {
        let stft = Stft::new(4, 2, Window::Rectangular);
        assert_eq!(stft.frame_count(3), 0);
        assert_eq!(stft.frame_count(4), 1);
        assert_eq!(stft.frame_count(6), 2);
        assert_eq!(stft.frame_count(8), 3);
    }

    #[test]
    fn pure_tone_dominates_correct_bin() {
        let fs = 8000.0;
        let sig = tone(1000.0, fs, 8192);
        let spec = Stft::new(1024, 512, Window::Hann).spectrogram(&sig, fs);
        let dom = spec.dominant_frequency().unwrap();
        assert!((dom - 1000.0).abs() < spec.bin_hz(), "dominant {dom}");
    }

    #[test]
    fn two_tones_both_visible() {
        let fs = 8000.0;
        let a = tone(500.0, fs, 8192);
        let b = tone(2000.0, fs, 8192);
        let sig: Vec<f64> = a.iter().zip(&b).map(|(&x, &y)| x + 0.5 * y).collect();
        let spec = Stft::default().spectrogram(&sig, fs);
        let mean = spec.mean_spectrum();
        let bin = |f: f64| (f / spec.bin_hz()).round() as usize;
        let background = mean[bin(3500.0)];
        assert!(mean[bin(500.0)] > 10.0 * background);
        assert!(mean[bin(2000.0)] > 10.0 * background);
    }

    #[test]
    fn short_signal_yields_empty_spectrogram() {
        let spec = Stft::default().spectrogram(&[0.0; 10], 8000.0);
        assert_eq!(spec.n_frames(), 0);
        assert!(spec.mean_spectrum().is_empty());
        assert_eq!(spec.dominant_frequency(), None);
    }

    #[test]
    #[should_panic(expected = "hop must be positive")]
    fn zero_hop_rejected() {
        let _ = Stft::new(16, 0, Window::Hann);
    }
}
