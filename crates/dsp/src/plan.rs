//! Precomputed transform plans: the repeat-call fast path of the DSP
//! front end.
//!
//! The streaming workload transforms thousands of equal-length frames
//! with identical parameters, yet [`fft`](crate::fft) re-derives the
//! twiddle factors on every call and [`MorletCwt::transform`] rebuilds
//! the angular-frequency table and every daughter-wavelet spectrum per
//! signal. A plan hoists all of that work into construction:
//!
//! * [`FftPlan`]: cached bit-reversal and per-stage twiddle tables with
//!   an in-place execute. The tables are built with the *same* running-
//!   product recurrence as the ad-hoc kernel, so planned transforms are
//!   bit-identical to [`fft`](crate::fft)/[`ifft`](crate::ifft) — and
//!   the table lookup also removes the serial `w *= wlen` dependency
//!   chain from the butterfly loop.
//! * [`RealFftPlan`]: a packed real-input forward transform that runs
//!   one half-length complex FFT instead of widening every sample.
//! * [`CwtPlan`]: precomputed daughter spectra and a scratch-buffer
//!   pool, reducing per-signal work to one forward FFT, a per-bin
//!   multiply and inverse FFT each, with zero steady-state allocations.
//!   Output is bit-identical to the unplanned [`MorletCwt::transform`].
//! * [`PlanCache`]: a thread-safe map from CWT parameters to shared
//!   plans, for batch extraction over many equal-length segments.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::{next_power_of_two, Complex, MorletCwt};

/// Locks a mutex, recovering the guard if a panicking thread poisoned it
/// (plan state is read-only or a buffer pool, so poison is harmless).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A planned power-of-two FFT: cached bit-reversal permutation plus
/// per-stage twiddle tables for both directions.
///
/// [`FftPlan::forward`] and [`FftPlan::inverse_norm`] are bit-identical
/// to [`fft`](crate::fft) and [`ifft`](crate::ifft) on the same input:
/// the tables store exactly the values the ad-hoc kernel's running
/// product visits, and the butterflies apply them in the same order.
#[derive(Debug)]
pub struct FftPlan {
    n: usize,
    bitrev: Vec<usize>,
    // Twiddles stored planar (split real/imaginary) so the split-layout
    // execute reads contiguous f64 streams the compiler can vectorize;
    // the interleaved execute reassembles the same bitwise values.
    fwd_re: Vec<f64>,
    fwd_im: Vec<f64>,
    inv_re: Vec<f64>,
    inv_im: Vec<f64>,
}

/// Stage-major twiddle tables matching the ad-hoc kernel's running
/// product: for each stage `len = 2, 4, .., n` the `len/2` successive
/// powers of `exp(sign * i * TAU / len)`, accumulated by repeated
/// multiplication exactly as `fft_in_place` does, so every stored value
/// is bitwise the one the unplanned butterfly loop would compute.
/// Returned as planar `(re, im)` arrays.
fn stage_twiddles(n: usize, inverse: bool) -> (Vec<f64>, Vec<f64>) {
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out_re = Vec::with_capacity(n.saturating_sub(1));
    let mut out_im = Vec::with_capacity(n.saturating_sub(1));
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex::from_angle(ang);
        let mut w = Complex::ONE;
        for _ in 0..len / 2 {
            out_re.push(w.re);
            out_im.push(w.im);
            w *= wlen;
        }
        len <<= 1;
    }
    (out_re, out_im)
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "planned radix-2 FFT requires power-of-two length"
        );
        let bitrev = if n <= 1 {
            Vec::new()
        } else {
            let bits = n.trailing_zeros();
            (0..n)
                .map(|i| (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1))
                .collect()
        };
        let (fwd_re, fwd_im) = stage_twiddles(n, false);
        let (inv_re, inv_im) = stage_twiddles(n, true);
        Self {
            n,
            bitrev,
            fwd_re,
            fwd_im,
            inv_re,
            inv_im,
        }
    }

    /// Transform length the plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: plans exist only for lengths `>= 1`.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward DFT; bit-identical to [`fft`](crate::fft).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the planned length.
    pub fn forward(&self, buf: &mut [Complex]) {
        self.execute(buf, &self.fwd_re, &self.fwd_im);
    }

    /// In-place unnormalized inverse DFT (no `1/n` factor); the raw
    /// building block for callers that fold the normalization into
    /// later work.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the planned length.
    pub fn inverse(&self, buf: &mut [Complex]) {
        self.execute(buf, &self.inv_re, &self.inv_im);
    }

    /// In-place forward DFT over split (planar) real/imaginary storage;
    /// component-for-component bit-identical to [`FftPlan::forward`],
    /// but the contiguous `f64` lanes let the compiler vectorize the
    /// butterflies. This is the hot path used by [`CwtPlan`].
    ///
    /// # Panics
    ///
    /// Panics if `re.len()` or `im.len()` differs from the planned
    /// length.
    pub fn forward_split(&self, re: &mut [f64], im: &mut [f64]) {
        self.execute_split(re, im, &self.fwd_re, &self.fwd_im);
    }

    /// In-place unnormalized inverse DFT over split storage; the planar
    /// counterpart of [`FftPlan::inverse`].
    ///
    /// # Panics
    ///
    /// Panics if `re.len()` or `im.len()` differs from the planned
    /// length.
    pub fn inverse_split(&self, re: &mut [f64], im: &mut [f64]) {
        self.execute_split(re, im, &self.inv_re, &self.inv_im);
    }

    /// Unnormalized planar inverse DFT of a buffer whose contents were
    /// written directly into bit-reversed positions (see
    /// [`FftPlan::bitrev_positions`]), skipping the permutation sweep.
    /// Bit-identical to permuting then calling the stage sweep.
    fn inverse_split_prepermuted(&self, re: &mut [f64], im: &mut [f64]) {
        let n = self.n;
        assert_eq!(re.len(), n, "planned FFT length mismatch");
        assert_eq!(im.len(), n, "planned FFT length mismatch");
        if n <= 1 {
            return;
        }
        self.stages_split(re, im, &self.inv_re, &self.inv_im);
    }

    /// The bit-reversal permutation table: natural index `k` belongs at
    /// position `bitrev_positions()[k]` of a pre-permuted buffer (empty
    /// for `n <= 1`, where the permutation is the identity).
    fn bitrev_positions(&self) -> &[usize] {
        &self.bitrev
    }

    /// In-place normalized inverse DFT; bit-identical to
    /// [`ifft`](crate::ifft).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the planned length.
    pub fn inverse_norm(&self, buf: &mut [Complex]) {
        self.execute(buf, &self.inv_re, &self.inv_im);
        let scale = 1.0 / self.n as f64;
        for c in buf {
            *c = c.scale(scale);
        }
    }

    /// The shared butterfly schedule over interleaved [`Complex`]
    /// storage: bit-reversal permutation from the cached table, then the
    /// standard radix-2 stages reading twiddles from the planar tables
    /// instead of a serial running product.
    fn execute(&self, buf: &mut [Complex], twr: &[f64], twi: &[f64]) {
        let n = self.n;
        assert_eq!(buf.len(), n, "planned FFT length mismatch");
        if n <= 1 {
            return;
        }
        for (i, &j) in self.bitrev.iter().enumerate() {
            if i < j {
                buf.swap(i, j);
            }
        }
        let mut len = 2;
        let mut offset = 0;
        while len <= n {
            let half = len / 2;
            let tw_re = &twr[offset..offset + half];
            let tw_im = &twi[offset..offset + half];
            let mut i = 0;
            while i < n {
                let (lo, hi) = buf[i..i + len].split_at_mut(half);
                for (j, (a, b)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
                    let u = *a;
                    let v = *b * Complex::new(tw_re[j], tw_im[j]);
                    *a = u + v;
                    *b = u - v;
                }
                i += len;
            }
            offset += half;
            len <<= 1;
        }
    }

    /// The same butterfly schedule over split (planar) storage. Every
    /// scalar expression matches the interleaved path exactly — `v.re =
    /// b.re * w.re - b.im * w.im` and so on in the same order — so the
    /// two layouts produce bitwise identical results; the planar lanes
    /// are simply contiguous and therefore vectorizable.
    fn execute_split(&self, re: &mut [f64], im: &mut [f64], twr: &[f64], twi: &[f64]) {
        let n = self.n;
        assert_eq!(re.len(), n, "planned FFT length mismatch");
        assert_eq!(im.len(), n, "planned FFT length mismatch");
        if n <= 1 {
            return;
        }
        for (i, &j) in self.bitrev.iter().enumerate() {
            if i < j {
                re.swap(i, j);
                im.swap(i, j);
            }
        }
        self.stages_split(re, im, twr, twi);
    }

    /// The radix-2 stage sweep alone (no bit-reversal permutation), for
    /// callers that already produced the buffer in bit-reversed order.
    /// The first three stages (`len = 2, 4, 8`) are fused into a single
    /// pass over 8-element blocks: each block's butterflies run while
    /// the data sits in registers, saving two full-array memory sweeps
    /// and the short-loop overhead of the worst-vectorizing stages.
    /// Each element still sees the identical operation sequence, so the
    /// fusion is bit-transparent.
    fn stages_split(&self, re: &mut [f64], im: &mut [f64], twr: &[f64], twi: &[f64]) {
        let n = self.n;
        let mut len = 2;
        let mut offset = 0;
        if n >= 8 {
            let w4 = [(twr[1], twi[1]), (twr[2], twi[2])];
            let w8 = [
                (twr[3], twi[3]),
                (twr[4], twi[4]),
                (twr[5], twi[5]),
                (twr[6], twi[6]),
            ];
            let mut b = 0;
            while b < n {
                let r = &mut re[b..b + 8];
                let q = &mut im[b..b + 8];
                // Stage len = 2: pairs (0,1), (2,3), (4,5), (6,7).
                for p in [0usize, 2, 4, 6] {
                    butterfly(r, q, p, p + 1, twr[0], twi[0]);
                }
                // Stage len = 4: (0,2), (1,3) then (4,6), (5,7).
                for base in [0usize, 4] {
                    for (j, &(wr, wi)) in w4.iter().enumerate() {
                        butterfly(r, q, base + j, base + j + 2, wr, wi);
                    }
                }
                // Stage len = 8: (j, j+4).
                for (j, &(wr, wi)) in w8.iter().enumerate() {
                    butterfly(r, q, j, j + 4, wr, wi);
                }
                b += 8;
            }
            len = 16;
            offset = 7;
        }
        while len <= n {
            let half = len / 2;
            let tw_re = &twr[offset..offset + half];
            let tw_im = &twi[offset..offset + half];
            let mut i = 0;
            while i < n {
                let (lre, hre) = re[i..i + len].split_at_mut(half);
                let (lim, him) = im[i..i + len].split_at_mut(half);
                for j in 0..half {
                    let br = hre[j];
                    let bi = him[j];
                    let vr = br * tw_re[j] - bi * tw_im[j];
                    let vi = br * tw_im[j] + bi * tw_re[j];
                    let ur = lre[j];
                    let ui = lim[j];
                    lre[j] = ur + vr;
                    lim[j] = ui + vi;
                    hre[j] = ur - vr;
                    him[j] = ui - vi;
                }
                i += len;
            }
            offset += half;
            len <<= 1;
        }
    }
}

/// One radix-2 butterfly on planar storage, the exact expression
/// sequence of the generic stage loop: `v = b * w`, then `a + v` /
/// `a - v` componentwise.
#[inline(always)]
fn butterfly(re: &mut [f64], im: &mut [f64], a: usize, b: usize, wr: f64, wi: f64) {
    let br = re[b];
    let bi = im[b];
    let vr = br * wr - bi * wi;
    let vi = br * wi + bi * wr;
    let ur = re[a];
    let ui = im[a];
    re[a] = ur + vr;
    im[a] = ui + vi;
    re[b] = ur - vr;
    im[b] = ui - vi;
}

/// A planned packed real-input forward FFT.
///
/// The `n` real samples are packed into `n/2` complex values
/// (even-index samples in the real part, odd-index in the imaginary), a
/// single half-length complex FFT runs, and the hermitian-symmetric
/// spectrum is untangled from the result — roughly halving the work of
/// the widen-to-complex path. The output matches the complex path to
/// rounding (it is *not* bit-identical; see
/// `real_plan_matches_complex_path` for the enforced tolerance).
#[derive(Debug)]
pub struct RealFftPlan {
    n: usize,
    half: FftPlan,
    /// Untangling twiddles `exp(-i * TAU * k / n)` for `k in 0..=n/2`.
    wk: Vec<Complex>,
}

impl RealFftPlan {
    /// Builds a plan for real inputs of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "planned real FFT requires power-of-two length"
        );
        let wk = (0..=n / 2)
            .map(|k| Complex::from_angle(-std::f64::consts::TAU * k as f64 / n as f64))
            .collect();
        Self {
            n,
            half: FftPlan::new((n / 2).max(1)),
            wk,
        }
    }

    /// Input length the plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: plans exist only for lengths `>= 1`.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Full `n`-point spectrum of a real signal (hermitian upper half
    /// mirrored from the lower, as [`fft`](crate::fft) would return).
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the planned length.
    pub fn forward(&self, input: &[f64]) -> Vec<Complex> {
        assert_eq!(input.len(), self.n, "planned real FFT length mismatch");
        if self.n == 1 {
            return vec![Complex::from_real(input[0])];
        }
        let h = self.n / 2;
        let mut z_re: Vec<f64> = (0..h).map(|j| input[2 * j]).collect();
        let mut z_im: Vec<f64> = (0..h).map(|j| input[2 * j + 1]).collect();
        self.half.forward_split(&mut z_re, &mut z_im);
        let z = |k: usize| Complex::new(z_re[k], z_im[k]);
        let mut out = vec![Complex::ZERO; self.n];
        for (k, o) in out.iter_mut().enumerate().take(h + 1) {
            let zk = z(k % h);
            let zm = z((h - k) % h).conj();
            // Even/odd sample spectra: F_e = (Z[k] + conj(Z[h-k])) / 2,
            // F_o = (Z[k] - conj(Z[h-k])) / (2i); X[k] = F_e + W^k F_o.
            let fe = (zk + zm).scale(0.5);
            let fo_i = (zk - zm).scale(0.5);
            let fo = Complex::new(fo_i.im, -fo_i.re);
            *o = fe + self.wk[k] * fo;
        }
        for k in h + 1..self.n {
            out[k] = out[self.n - k].conj();
        }
        out
    }
}

/// A planned Morlet CWT for one `(signal length, sample rate,
/// frequencies, omega0)` shape.
///
/// Construction precomputes everything [`MorletCwt::transform`] derives
/// per call — the padded [`FftPlan`] and every daughter-wavelet
/// spectrum — and owns a scratch-buffer pool, so a warm
/// [`CwtPlan::transform`] performs one forward FFT plus one per-bin
/// multiply/inverse-FFT pass with no steady-state allocations beyond
/// the output. Magnitudes are bit-identical to the unplanned transform,
/// which stays the reference oracle.
#[derive(Debug)]
pub struct CwtPlan {
    frequencies_hz: Vec<f64>,
    sample_rate: f64,
    n: usize,
    m: usize,
    fft: FftPlan,
    /// Daughter spectra, `n_bins` rows of `m/2` values row-major; entry
    /// `j` of a row is the daughter at FFT bin `k = j + 1` (the analytic
    /// Morlet is zero at DC and for negative frequencies, i.e. outside
    /// `1 <= k <= m/2`).
    daughters: Vec<f64>,
    /// Bit-reversed destination of FFT bin `k = j + 1` for `j` in
    /// `0..m/2`: daughter products are scattered straight into the
    /// inverse transform's post-permutation layout, so each per-bin
    /// inverse FFT skips its bit-reversal sweep.
    scatter: Vec<usize>,
    /// Pooled pairs of planar (real, imaginary) work buffers, each of
    /// length `m`.
    scratch: Mutex<Vec<(Vec<f64>, Vec<f64>)>>,
}

impl CwtPlan {
    /// Plans `cwt.transform(signal, sample_rate)` for signals of exactly
    /// `signal_len` samples.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate <= 0`.
    pub fn new(cwt: &MorletCwt, signal_len: usize, sample_rate: f64) -> Self {
        assert!(sample_rate > 0.0, "sample_rate must be positive");
        let n = signal_len;
        let m = next_power_of_two(n);
        let dt = 1.0 / sample_rate;
        let half = m / 2;
        let omega0 = cwt.omega0();
        let norm_pi = std::f64::consts::PI.powf(-0.25);
        // Same arithmetic, expression for expression, as the per-call
        // loop in `MorletCwt::transform`, evaluated once per plan.
        let rows = gansec_parallel::par_map(cwt.frequencies_hz(), |&f| {
            let s = cwt.frequency_to_scale(f);
            let norm = (std::f64::consts::TAU * s / dt).sqrt() * norm_pi;
            let mut row = vec![0.0; half];
            for (j, d) in row.iter_mut().enumerate() {
                let w = std::f64::consts::TAU * (j + 1) as f64 / (m as f64 * dt);
                let e = -(s * w - omega0).powi(2) / 2.0;
                // exp underflows harmlessly to zero far from the band.
                *d = norm * e.exp();
            }
            row
        });
        let fft = FftPlan::new(m);
        let scatter = if m > 1 {
            fft.bitrev_positions()[1..half + 1].to_vec()
        } else {
            Vec::new()
        };
        Self {
            frequencies_hz: cwt.frequencies_hz().to_vec(),
            sample_rate,
            n,
            m,
            fft,
            daughters: rows.concat(),
            scatter,
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// Center frequencies (Hz), one scalogram row per entry.
    pub fn frequencies_hz(&self) -> &[f64] {
        &self.frequencies_hz
    }

    /// Sample rate the plan was built for.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Signal length the plan was built for.
    pub fn signal_len(&self) -> usize {
        self.n
    }

    /// Padded FFT length.
    pub fn fft_len(&self) -> usize {
        self.m
    }

    /// Scratch buffers currently pooled (grows to the worker count on
    /// first use, then stays flat).
    pub fn pooled_buffers(&self) -> usize {
        lock_unpoisoned(&self.scratch).len()
    }

    fn acquire(&self) -> (Vec<f64>, Vec<f64>) {
        lock_unpoisoned(&self.scratch)
            .pop()
            .unwrap_or_else(|| (vec![0.0; self.m], vec![0.0; self.m]))
    }

    fn release(&self, buf: (Vec<f64>, Vec<f64>)) {
        lock_unpoisoned(&self.scratch).push(buf);
    }

    /// Scalogram of `signal`, bit-identical to the unplanned
    /// [`MorletCwt::transform`] at any thread count, in flat row-major
    /// storage.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len()` differs from the planned length.
    pub fn transform(&self, signal: &[f64]) -> FlatScalogram {
        assert_eq!(
            signal.len(),
            self.n,
            "planned CWT signal length mismatch: plan {} vs signal {}",
            self.n,
            signal.len()
        );
        let n_bins = self.frequencies_hz.len();
        if self.n == 0 {
            return FlatScalogram {
                frequencies_hz: self.frequencies_hz.clone(),
                data: Vec::new(),
                n_times: 0,
                sample_rate: self.sample_rate,
            };
        }
        let (mut spec_re, mut spec_im) = self.acquire();
        // Planar image of the unplanned path's `Complex::from_real`
        // widening: the signal in the real lane, zeros everywhere else.
        spec_re[..self.n].copy_from_slice(signal);
        spec_re[self.n..].fill(0.0);
        spec_im.fill(0.0);
        self.fft.forward_split(&mut spec_re, &mut spec_im);

        let half = self.m / 2;
        let inv_m = 1.0 / self.m as f64;
        let mut data = vec![0.0; n_bins * self.n];
        // One contiguous output row per bin; rows are independent, so
        // they fan out across threads exactly like the unplanned
        // per-frequency loop.
        gansec_parallel::par_fill_chunks(&mut data, self.n, |bin, out| {
            let row = &self.daughters[bin * half..(bin + 1) * half];
            let (mut prod_re, mut prod_im) = self.acquire();
            prod_re.fill(0.0);
            prod_im.fill(0.0);
            // `spectrum[k].scale(d)` for `k = 1..=m/2`, planar, written
            // straight into bit-reversed order so the inverse FFT can
            // skip its permutation sweep (same products, same slots).
            let src_re = &spec_re[1..half + 1];
            let src_im = &spec_im[1..half + 1];
            for j in 0..half {
                let p = self.scatter[j];
                prod_re[p] = src_re[j] * row[j];
                prod_im[p] = src_im[j] * row[j];
            }
            self.fft
                .inverse_split_prepermuted(&mut prod_re, &mut prod_im);
            // `c.scale(inv_m).abs()` on the first `n` coefficients.
            for (o, (&r, &i)) in out
                .iter_mut()
                .zip(prod_re[..self.n].iter().zip(&prod_im[..self.n]))
            {
                *o = (r * inv_m).hypot(i * inv_m);
            }
            self.release((prod_re, prod_im));
        });
        self.release((spec_re, spec_im));
        FlatScalogram {
            frequencies_hz: self.frequencies_hz.clone(),
            data,
            n_times: self.n,
            sample_rate: self.sample_rate,
        }
    }
}

/// CWT magnitudes in one flat row-major buffer, `[frequency][time]`.
///
/// The planned counterpart of [`Scalogram`](crate::Scalogram): same
/// accessors and identical (bitwise) values, but a single allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatScalogram {
    frequencies_hz: Vec<f64>,
    data: Vec<f64>,
    n_times: usize,
    sample_rate: f64,
}

impl FlatScalogram {
    /// Center frequencies (Hz), one per magnitude row.
    pub fn frequencies_hz(&self) -> &[f64] {
        &self.frequencies_hz
    }

    /// Number of frequency rows.
    pub fn n_bins(&self) -> usize {
        self.frequencies_hz.len()
    }

    /// Number of time samples per row.
    pub fn n_times(&self) -> usize {
        self.n_times
    }

    /// Sample rate of the analyzed signal.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// The flat row-major magnitude buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Magnitudes of frequency row `bin`.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= self.n_bins()`.
    pub fn row(&self, bin: usize) -> &[f64] {
        &self.data[bin * self.n_times..(bin + 1) * self.n_times]
    }

    /// Mean magnitude of each frequency row over the whole signal.
    pub fn mean_per_frequency(&self) -> Vec<f64> {
        self.mean_per_frequency_in(0, self.n_times)
    }

    /// Mean magnitude of each frequency row within `[start, end)` time
    /// samples, clamped to the available range. Same arithmetic — and
    /// therefore bitwise the same result — as
    /// [`Scalogram::mean_per_frequency_in`](crate::Scalogram::mean_per_frequency_in).
    pub fn mean_per_frequency_in(&self, start: usize, end: usize) -> Vec<f64> {
        let n = self.n_times;
        let start = start.min(n);
        let end = end.min(n).max(start);
        (0..self.n_bins())
            .map(|bin| {
                if end == start {
                    0.0
                } else {
                    let row = self.row(bin);
                    row[start..end].iter().sum::<f64>() / (end - start) as f64
                }
            })
            .collect()
    }
}

/// Interned CWT-plan key: float parameters compared bitwise.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CwtKey {
    n: usize,
    sample_rate: u64,
    omega0: u64,
    frequencies: Vec<u64>,
}

impl CwtKey {
    fn new(cwt: &MorletCwt, signal_len: usize, sample_rate: f64) -> Self {
        Self {
            n: signal_len,
            sample_rate: sample_rate.to_bits(),
            omega0: cwt.omega0().to_bits(),
            frequencies: cwt.frequencies_hz().iter().map(|f| f.to_bits()).collect(),
        }
    }
}

/// A thread-safe cache of [`CwtPlan`]s keyed on their full parameter
/// shape, so batch extraction over many equal-length segments builds
/// each plan once and shares it across threads.
#[derive(Debug, Default)]
pub struct PlanCache {
    cwt: Mutex<HashMap<CwtKey, Arc<CwtPlan>>>,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached CWT plans.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.cwt).len()
    }

    /// True when nothing has been planned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shared plan for `cwt.transform` over `signal_len`-sample
    /// signals at `sample_rate`, building it on first request.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate <= 0`.
    pub fn cwt_plan(&self, cwt: &MorletCwt, signal_len: usize, sample_rate: f64) -> Arc<CwtPlan> {
        let key = CwtKey::new(cwt, signal_len, sample_rate);
        if let Some(plan) = lock_unpoisoned(&self.cwt).get(&key) {
            return Arc::clone(plan);
        }
        // Built outside the lock: planning is expensive and concurrent
        // misses on the same key are rare (the loser's build is dropped
        // in favor of the canonical entry).
        let plan = Arc::new(CwtPlan::new(cwt, signal_len, sample_rate));
        Arc::clone(lock_unpoisoned(&self.cwt).entry(key).or_insert(plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cwt, fft, ifft};

    fn bits(c: Complex) -> (u64, u64) {
        (c.re.to_bits(), c.im.to_bits())
    }

    fn test_signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64 * 0.73).sin(), (i as f64 * 1.31).cos() * 0.4))
            .collect()
    }

    #[test]
    fn planned_forward_is_bit_identical_to_fft() {
        for n in [1usize, 2, 4, 8, 64, 256, 1024] {
            let x = test_signal(n);
            let plan = FftPlan::new(n);
            let mut buf = x.clone();
            plan.forward(&mut buf);
            let reference = fft(&x);
            for (a, b) in buf.iter().zip(&reference) {
                assert_eq!(bits(*a), bits(*b), "n = {n}");
            }
        }
    }

    #[test]
    fn planned_inverse_is_bit_identical_to_ifft() {
        for n in [1usize, 2, 16, 128, 512] {
            let x = test_signal(n);
            let plan = FftPlan::new(n);
            let mut buf = x.clone();
            plan.inverse_norm(&mut buf);
            let reference = ifft(&x);
            for (a, b) in buf.iter().zip(&reference) {
                assert_eq!(bits(*a), bits(*b), "n = {n}");
            }
        }
    }

    #[test]
    fn split_execute_is_bit_identical_to_interleaved() {
        for n in [1usize, 2, 4, 32, 256, 1024] {
            let x = test_signal(n);
            let plan = FftPlan::new(n);
            let mut re: Vec<f64> = x.iter().map(|c| c.re).collect();
            let mut im: Vec<f64> = x.iter().map(|c| c.im).collect();
            plan.forward_split(&mut re, &mut im);
            let reference = fft(&x);
            for (k, b) in reference.iter().enumerate() {
                assert_eq!(re[k].to_bits(), b.re.to_bits(), "n = {n}");
                assert_eq!(im[k].to_bits(), b.im.to_bits(), "n = {n}");
            }
            let mut re: Vec<f64> = x.iter().map(|c| c.re).collect();
            let mut im: Vec<f64> = x.iter().map(|c| c.im).collect();
            plan.inverse_split(&mut re, &mut im);
            let mut inv = x.clone();
            plan.inverse(&mut inv);
            for (k, b) in inv.iter().enumerate() {
                assert_eq!(re[k].to_bits(), b.re.to_bits(), "n = {n}");
                assert_eq!(im[k].to_bits(), b.im.to_bits(), "n = {n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plan_rejects_non_power_of_two() {
        let _ = FftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn plan_rejects_wrong_buffer_length() {
        let plan = FftPlan::new(8);
        let mut buf = vec![Complex::ZERO; 4];
        plan.forward(&mut buf);
    }

    #[test]
    fn real_plan_matches_complex_path() {
        for n in [1usize, 2, 4, 8, 64, 256, 1024] {
            let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin() + 0.2).collect();
            let plan = RealFftPlan::new(n);
            let packed = plan.forward(&xs);
            let widened: Vec<Complex> = xs.iter().map(|&v| Complex::from_real(v)).collect();
            let reference = fft(&widened);
            let scale = 1.0 + xs.len() as f64;
            for (i, (a, b)) in packed.iter().zip(&reference).enumerate() {
                assert!(
                    (*a - *b).abs() < 1e-12 * scale,
                    "n = {n} bin {i}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn real_plan_output_is_hermitian() {
        let n = 64;
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 1.7).cos()).collect();
        let spec = RealFftPlan::new(n).forward(&xs);
        for k in 1..n {
            let mirror = spec[n - k].conj();
            assert!((spec[k] - mirror).abs() < 1e-12 * n as f64);
        }
    }

    #[test]
    fn planned_cwt_is_bit_identical_to_unplanned() {
        let fs = 8000.0;
        let n = 1000; // pads to 1024
        let signal: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                (std::f64::consts::TAU * 440.0 * t).sin()
                    + 0.5 * (std::f64::consts::TAU * 1320.0 * t).cos()
            })
            .collect();
        let freqs = vec![100.0, 250.0, 440.0, 1000.0, 2500.0];
        let reference = cwt(&signal, fs, &freqs);
        let plan = CwtPlan::new(&MorletCwt::standard(freqs.clone()), n, fs);
        let flat = plan.transform(&signal);
        assert_eq!(flat.n_bins(), freqs.len());
        assert_eq!(flat.n_times(), n);
        for (bin, row) in reference.magnitudes().iter().enumerate() {
            for (t, (a, b)) in row.iter().zip(flat.row(bin)).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "bin {bin} t {t}: {a} vs {b}");
            }
        }
        // Aggregations agree bitwise too.
        assert_eq!(
            reference.mean_per_frequency_in(100, 612),
            flat.mean_per_frequency_in(100, 612)
        );
        assert_eq!(reference.mean_per_frequency(), flat.mean_per_frequency());
    }

    #[test]
    fn planned_cwt_exact_power_of_two_length() {
        let fs = 4000.0;
        let n = 512; // no padding: n == m
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let freqs = vec![50.0, 500.0];
        let reference = cwt(&signal, fs, &freqs);
        let flat = CwtPlan::new(&MorletCwt::standard(freqs), n, fs).transform(&signal);
        for (bin, row) in reference.magnitudes().iter().enumerate() {
            for (a, b) in row.iter().zip(flat.row(bin)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn planned_cwt_empty_signal() {
        let plan = CwtPlan::new(&MorletCwt::standard(vec![100.0, 200.0]), 0, 8000.0);
        let flat = plan.transform(&[]);
        assert_eq!(flat.n_times(), 0);
        assert_eq!(flat.n_bins(), 2);
        assert_eq!(flat.mean_per_frequency(), vec![0.0, 0.0]);
    }

    #[test]
    fn scratch_pool_recycles_buffers() {
        let n = 256;
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin()).collect();
        let plan = CwtPlan::new(&MorletCwt::standard(vec![100.0, 300.0, 900.0]), n, 8000.0);
        assert_eq!(plan.pooled_buffers(), 0);
        let first = plan.transform(&signal);
        let warm = plan.pooled_buffers();
        assert!(warm > 0, "transform should return buffers to the pool");
        let second = plan.transform(&signal);
        // Steady state: reuse, no pool growth, identical output.
        assert!(plan.pooled_buffers() <= warm.max(gansec_parallel::threads() + 1));
        assert_eq!(first, second);
    }

    #[test]
    fn plan_cache_shares_plans_by_key() {
        let cache = PlanCache::new();
        let cwt_a = MorletCwt::standard(vec![100.0, 200.0]);
        let p1 = cache.cwt_plan(&cwt_a, 1000, 8000.0);
        let p2 = cache.cwt_plan(&cwt_a, 1000, 8000.0);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.len(), 1);
        // Any parameter change is a different plan.
        let p3 = cache.cwt_plan(&cwt_a, 1001, 8000.0);
        assert!(!Arc::ptr_eq(&p1, &p3));
        let p4 = cache.cwt_plan(&cwt_a, 1000, 16000.0);
        let cwt_b = MorletCwt::standard(vec![100.0, 250.0]);
        let p5 = cache.cwt_plan(&cwt_b, 1000, 8000.0);
        assert!(!Arc::ptr_eq(&p1, &p4));
        assert!(!Arc::ptr_eq(&p1, &p5));
        assert_eq!(cache.len(), 4);
        assert!(!cache.is_empty());
    }
}
