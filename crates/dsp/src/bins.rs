//! Non-uniform frequency binning.
//!
//! §IV-B: "We obtain a non-uniformly distributed 100 bins
//! `Freq = [freq_1, ..., freq_100]` between 50 and 5000 Hz (this range may
//! be changed for further security analysis purposes)." Log-spacing is the
//! natural non-uniform layout for rotating-machinery acoustics (dense at
//! low frequency where stepper fundamentals live, sparse at high frequency
//! where only harmonics remain), and is what this type produces by
//! default; linear spacing is provided for ablations.

use serde::{Deserialize, Serialize};

/// A partition of a frequency range into contiguous bins.
///
/// # Example
///
/// ```
/// use gansec_dsp::FrequencyBins;
///
/// // The paper's layout: 100 log-spaced bins in [50, 5000] Hz.
/// let bins = FrequencyBins::paper_default();
/// assert_eq!(bins.n_bins(), 100);
/// assert_eq!(bins.bin_index(1600.0).is_some(), true);
/// assert_eq!(bins.bin_index(10.0), None); // below the band
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyBins {
    /// Bin edges, `n_bins + 1` ascending values.
    edges: Vec<f64>,
}

impl FrequencyBins {
    /// The paper's default layout: 100 log-spaced bins in [50, 5000] Hz.
    pub fn paper_default() -> Self {
        Self::log_spaced(100, 50.0, 5000.0)
    }

    /// `n_bins` logarithmically spaced bins between `fmin` and `fmax` Hz.
    ///
    /// # Panics
    ///
    /// Panics if `n_bins == 0` or `0 < fmin < fmax` does not hold.
    pub fn log_spaced(n_bins: usize, fmin: f64, fmax: f64) -> Self {
        assert!(n_bins > 0, "n_bins must be positive");
        assert!(
            fmin > 0.0 && fmin < fmax,
            "need 0 < fmin < fmax, got [{fmin}, {fmax}]"
        );
        let lmin = fmin.ln();
        let lmax = fmax.ln();
        let edges = (0..=n_bins)
            .map(|i| (lmin + (lmax - lmin) * i as f64 / n_bins as f64).exp())
            .collect();
        Self { edges }
    }

    /// `n_bins` linearly spaced bins between `fmin` and `fmax` Hz.
    ///
    /// # Panics
    ///
    /// Panics if `n_bins == 0` or `fmin >= fmax`.
    pub fn linear_spaced(n_bins: usize, fmin: f64, fmax: f64) -> Self {
        assert!(n_bins > 0, "n_bins must be positive");
        assert!(fmin < fmax, "need fmin < fmax, got [{fmin}, {fmax}]");
        let edges = (0..=n_bins)
            .map(|i| fmin + (fmax - fmin) * i as f64 / n_bins as f64)
            .collect();
        Self { edges }
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.edges.len() - 1
    }

    /// Bin edges (`n_bins + 1` ascending frequencies in Hz).
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Lowest covered frequency.
    pub fn fmin(&self) -> f64 {
        self.edges[0]
    }

    /// Highest covered frequency.
    pub fn fmax(&self) -> f64 {
        *self.edges.last().expect("edges nonempty by construction")
    }

    /// Geometric center frequency of each bin; these are the CWT scale
    /// targets in the feature pipeline.
    pub fn centers(&self) -> Vec<f64> {
        self.edges
            .windows(2)
            .map(|w| (w[0] * w[1]).sqrt())
            .collect()
    }

    /// The bin containing frequency `f`, or `None` outside the range.
    /// The final edge is inclusive so `fmax` maps to the last bin.
    pub fn bin_index(&self, f: f64) -> Option<usize> {
        if f < self.fmin() || f > self.fmax() {
            return None;
        }
        // partition_point: first edge > f, minus one edge = containing bin.
        let idx = self.edges.partition_point(|&e| e <= f);
        Some(idx.saturating_sub(1).min(self.n_bins() - 1))
    }

    /// Accumulates a sampled spectrum `(freqs, mags)` into per-bin mean
    /// magnitudes. Samples outside the range are dropped; empty bins are 0.
    ///
    /// # Panics
    ///
    /// Panics if `freqs` and `mags` differ in length.
    pub fn bin_spectrum(&self, freqs: &[f64], mags: &[f64]) -> Vec<f64> {
        assert_eq!(
            freqs.len(),
            mags.len(),
            "freqs and mags must be parallel arrays"
        );
        let mut acc = vec![0.0; self.n_bins()];
        let mut count = vec![0usize; self.n_bins()];
        for (&f, &m) in freqs.iter().zip(mags) {
            if let Some(b) = self.bin_index(f) {
                acc[b] += m;
                count[b] += 1;
            }
        }
        for (a, &c) in acc.iter_mut().zip(&count) {
            if c > 0 {
                *a /= c as f64;
            }
        }
        acc
    }
}

impl Default for FrequencyBins {
    /// The paper's 100-bin log layout over [50, 5000] Hz.
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_spec() {
        let bins = FrequencyBins::paper_default();
        assert_eq!(bins.n_bins(), 100);
        assert!((bins.fmin() - 50.0).abs() < 1e-9);
        assert!((bins.fmax() - 5000.0).abs() < 1e-6);
    }

    #[test]
    fn log_spacing_is_nonuniform_and_increasing() {
        let bins = FrequencyBins::log_spaced(10, 50.0, 5000.0);
        let e = bins.edges();
        for w in e.windows(2) {
            assert!(w[1] > w[0]);
        }
        let first_width = e[1] - e[0];
        let last_width = e[10] - e[9];
        assert!(
            last_width > 10.0 * first_width,
            "widths {first_width} vs {last_width}"
        );
    }

    #[test]
    fn log_spacing_has_constant_ratio() {
        let bins = FrequencyBins::log_spaced(5, 100.0, 3200.0);
        let e = bins.edges();
        let r0 = e[1] / e[0];
        for w in e.windows(2) {
            assert!((w[1] / w[0] - r0).abs() < 1e-9);
        }
    }

    #[test]
    fn linear_spacing_has_constant_width() {
        let bins = FrequencyBins::linear_spaced(4, 0.0, 100.0);
        let e = bins.edges();
        for w in e.windows(2) {
            assert!((w[1] - w[0] - 25.0).abs() < 1e-9);
        }
    }

    #[test]
    fn bin_index_covers_range() {
        let bins = FrequencyBins::log_spaced(100, 50.0, 5000.0);
        assert_eq!(bins.bin_index(49.9), None);
        assert_eq!(bins.bin_index(5000.1), None);
        assert_eq!(bins.bin_index(50.0), Some(0));
        assert_eq!(bins.bin_index(5000.0), Some(99));
        // Every center falls inside its own bin.
        for (i, c) in bins.centers().iter().enumerate() {
            assert_eq!(bins.bin_index(*c), Some(i), "center {c}");
        }
    }

    #[test]
    fn centers_are_within_edges() {
        let bins = FrequencyBins::log_spaced(20, 50.0, 5000.0);
        for (i, c) in bins.centers().iter().enumerate() {
            assert!(*c > bins.edges()[i] && *c < bins.edges()[i + 1]);
        }
    }

    #[test]
    fn bin_spectrum_averages_within_bins() {
        let bins = FrequencyBins::linear_spaced(2, 0.0, 10.0);
        let freqs = [1.0, 2.0, 7.0, 20.0];
        let mags = [2.0, 4.0, 8.0, 100.0];
        let out = bins.bin_spectrum(&freqs, &mags);
        assert_eq!(out, vec![3.0, 8.0]); // 20 Hz sample dropped
    }

    #[test]
    fn bin_spectrum_empty_bins_are_zero() {
        let bins = FrequencyBins::linear_spaced(3, 0.0, 3.0);
        let out = bins.bin_spectrum(&[0.5], &[5.0]);
        assert_eq!(out, vec![5.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "fmin < fmax")]
    fn rejects_inverted_range() {
        let _ = FrequencyBins::log_spaced(10, 5000.0, 50.0);
    }

    #[test]
    #[should_panic(expected = "n_bins")]
    fn rejects_zero_bins() {
        let _ = FrequencyBins::linear_spaced(0, 0.0, 1.0);
    }
}
