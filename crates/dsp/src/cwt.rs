//! Continuous wavelet transform with the analytic Morlet wavelet.
//!
//! §IV-B of the paper: "we convert the time-domain acoustic energy flows
//! values into frequency domain values using continuous-wavelet
//! transforms, which preserves the high-frequency resolution in
//! time-domain". The implementation follows the FFT-based formulation of
//! Torrence & Compo (1998): for each scale the daughter wavelet is
//! constructed in the frequency domain, multiplied with the signal
//! spectrum, and inverse-transformed.

use serde::{Deserialize, Serialize};

use crate::{fft, ifft, next_power_of_two, Complex};

/// Morlet continuous wavelet transform evaluated at a caller-chosen list
/// of center frequencies (the paper's non-uniform bins map directly onto
/// this — one wavelet scale per bin center).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MorletCwt {
    omega0: f64,
    frequencies_hz: Vec<f64>,
}

impl MorletCwt {
    /// Creates a transform targeting the given center frequencies (Hz).
    ///
    /// `omega0` is the Morlet non-dimensional frequency; 6.0 is the
    /// standard admissibility-respecting choice.
    ///
    /// # Panics
    ///
    /// Panics if `frequencies_hz` is empty, contains non-positive values,
    /// or `omega0 <= 0`.
    pub fn new(omega0: f64, frequencies_hz: Vec<f64>) -> Self {
        assert!(omega0 > 0.0, "omega0 must be positive: {omega0}");
        assert!(
            !frequencies_hz.is_empty(),
            "at least one center frequency required"
        );
        assert!(
            frequencies_hz.iter().all(|&f| f > 0.0),
            "center frequencies must be positive"
        );
        Self {
            omega0,
            frequencies_hz,
        }
    }

    /// Standard Morlet (`omega0 = 6`) at the given center frequencies.
    pub fn standard(frequencies_hz: Vec<f64>) -> Self {
        Self::new(6.0, frequencies_hz)
    }

    /// Target center frequencies in Hz.
    pub fn frequencies_hz(&self) -> &[f64] {
        &self.frequencies_hz
    }

    /// The Morlet non-dimensional frequency.
    pub fn omega0(&self) -> f64 {
        self.omega0
    }

    /// Converts a center frequency (Hz) to a Morlet scale in seconds,
    /// using the Torrence & Compo Fourier-period relation.
    pub fn frequency_to_scale(&self, freq_hz: f64) -> f64 {
        let w0 = self.omega0;
        (w0 + (2.0 + w0 * w0).sqrt()) / (4.0 * std::f64::consts::PI * freq_hz)
    }

    /// Computes the scalogram of `signal` sampled at `sample_rate` Hz.
    ///
    /// Returns magnitudes indexed `[frequency][time]`, one row per center
    /// frequency in declaration order. An empty signal yields empty rows.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate <= 0`.
    pub fn transform(&self, signal: &[f64], sample_rate: f64) -> Scalogram {
        assert!(sample_rate > 0.0, "sample_rate must be positive");
        let n = signal.len();
        if n == 0 {
            return Scalogram {
                frequencies_hz: self.frequencies_hz.clone(),
                magnitudes: vec![Vec::new(); self.frequencies_hz.len()],
                sample_rate,
            };
        }
        let m = next_power_of_two(n);
        let dt = 1.0 / sample_rate;

        let mut padded: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
        padded.resize(m, Complex::ZERO);
        let spectrum = fft(&padded);

        // Angular frequency of each FFT bin (positive half only matters
        // for the analytic Morlet; the daughter is zero for w <= 0).
        let ang: Vec<f64> = (0..m)
            .map(|k| {
                if k <= m / 2 {
                    std::f64::consts::TAU * k as f64 / (m as f64 * dt)
                } else {
                    -std::f64::consts::TAU * (m - k) as f64 / (m as f64 * dt)
                }
            })
            .collect();

        let norm_pi = std::f64::consts::PI.powf(-0.25);
        // Each frequency row is an independent daughter-wavelet product +
        // inverse FFT over the shared spectrum, so rows fan out across
        // threads; results are stitched in declaration order, identical
        // to the serial loop.
        let magnitudes = gansec_parallel::par_map(&self.frequencies_hz, |&f| {
            let s = self.frequency_to_scale(f);
            let norm = (std::f64::consts::TAU * s / dt).sqrt() * norm_pi;
            let mut prod = vec![Complex::ZERO; m];
            for k in 0..m {
                let w = ang[k];
                if w > 0.0 {
                    let e = -(s * w - self.omega0).powi(2) / 2.0;
                    // exp underflows harmlessly to zero far from the band.
                    let daughter = norm * e.exp();
                    prod[k] = spectrum[k].scale(daughter);
                }
            }
            let coeffs = ifft(&prod);
            coeffs[..n].iter().map(Complex::abs).collect()
        });
        Scalogram {
            frequencies_hz: self.frequencies_hz.clone(),
            magnitudes,
            sample_rate,
        }
    }
}

/// One-call convenience: standard Morlet CWT of `signal` at `freqs_hz`.
pub fn cwt(signal: &[f64], sample_rate: f64, freqs_hz: &[f64]) -> Scalogram {
    MorletCwt::standard(freqs_hz.to_vec()).transform(signal, sample_rate)
}

/// CWT magnitudes indexed `[frequency][time]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scalogram {
    frequencies_hz: Vec<f64>,
    magnitudes: Vec<Vec<f64>>,
    sample_rate: f64,
}

impl Scalogram {
    /// Center frequencies (Hz), one per magnitude row.
    pub fn frequencies_hz(&self) -> &[f64] {
        &self.frequencies_hz
    }

    /// Magnitudes indexed `[frequency][time]`.
    pub fn magnitudes(&self) -> &[Vec<f64>] {
        &self.magnitudes
    }

    /// Sample rate of the analyzed signal.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Number of time samples per row.
    pub fn n_times(&self) -> usize {
        self.magnitudes.first().map_or(0, Vec::len)
    }

    /// Mean magnitude of each frequency row over the whole signal.
    pub fn mean_per_frequency(&self) -> Vec<f64> {
        self.magnitudes
            .iter()
            .map(|row| {
                if row.is_empty() {
                    0.0
                } else {
                    row.iter().sum::<f64>() / row.len() as f64
                }
            })
            .collect()
    }

    /// Mean magnitude of each frequency row within `[start, end)` time
    /// samples, clamped to the available range; used for per-frame feature
    /// construction.
    pub fn mean_per_frequency_in(&self, start: usize, end: usize) -> Vec<f64> {
        let n = self.n_times();
        let start = start.min(n);
        let end = end.min(n).max(start);
        self.magnitudes
            .iter()
            .map(|row| {
                if end == start {
                    0.0
                } else {
                    row[start..end].iter().sum::<f64>() / (end - start) as f64
                }
            })
            .collect()
    }

    /// Index of the frequency row with the largest mean magnitude;
    /// `None` when empty.
    pub fn dominant_frequency_hz(&self) -> Option<f64> {
        let means = self.mean_per_frequency();
        let (idx, _) = means.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))?;
        self.frequencies_hz.get(idx).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (std::f64::consts::TAU * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn pure_tone_peaks_at_matching_scale() {
        let fs = 10_000.0;
        let sig = tone(440.0, fs, 4096);
        let freqs: Vec<f64> = (1..50).map(|i| i as f64 * 50.0).collect();
        let scal = cwt(&sig, fs, &freqs);
        let dom = scal.dominant_frequency_hz().unwrap();
        assert!((dom - 450.0).abs() <= 50.0, "dominant {dom}");
    }

    #[test]
    fn chirp_moves_energy_over_time() {
        // Linear chirp 200 Hz -> 2000 Hz: early frames should peak low,
        // late frames high. This is the time-resolution property the paper
        // cites as the reason for choosing CWT.
        let fs = 8000.0;
        let n = 8192;
        let sig: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let f = 200.0 + (2000.0 - 200.0) * t / (n as f64 / fs);
                (std::f64::consts::TAU * f * t / 2.0).sin()
            })
            .collect();
        let freqs: Vec<f64> = (1..40).map(|i| i as f64 * 60.0).collect();
        let scal = cwt(&sig, fs, &freqs);
        let early = scal.mean_per_frequency_in(0, n / 8);
        let late = scal.mean_per_frequency_in(7 * n / 8, n);
        let peak = |v: &[f64]| {
            v.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0
        };
        assert!(
            peak(&late) > peak(&early),
            "early peak {} late peak {}",
            peak(&early),
            peak(&late)
        );
    }

    #[test]
    fn frequency_to_scale_is_monotone_decreasing() {
        let cwt = MorletCwt::standard(vec![100.0]);
        let s100 = cwt.frequency_to_scale(100.0);
        let s1000 = cwt.frequency_to_scale(1000.0);
        assert!(s100 > s1000);
        assert!((s100 / s1000 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_signal_yields_empty_rows() {
        let scal = cwt(&[], 8000.0, &[100.0, 200.0]);
        assert_eq!(scal.n_times(), 0);
        assert_eq!(scal.magnitudes().len(), 2);
        assert_eq!(scal.mean_per_frequency(), vec![0.0, 0.0]);
    }

    #[test]
    fn silence_produces_near_zero_magnitudes() {
        let scal = cwt(&vec![0.0; 1024], 8000.0, &[100.0, 1000.0]);
        for row in scal.magnitudes() {
            assert!(row.iter().all(|&m| m.abs() < 1e-12));
        }
    }

    #[test]
    fn magnitudes_scale_linearly_with_amplitude() {
        let fs = 8000.0;
        let a = tone(500.0, fs, 2048);
        let b: Vec<f64> = a.iter().map(|&x| 3.0 * x).collect();
        let fa = cwt(&a, fs, &[500.0]).mean_per_frequency()[0];
        let fb = cwt(&b, fs, &[500.0]).mean_per_frequency()[0];
        assert!((fb / fa - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "center frequencies must be positive")]
    fn rejects_nonpositive_frequency() {
        let _ = MorletCwt::standard(vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one center frequency")]
    fn rejects_empty_frequency_list() {
        let _ = MorletCwt::standard(vec![]);
    }
}
