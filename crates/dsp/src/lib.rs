//! Signal-processing substrate for the GAN-Sec reproduction.
//!
//! The paper converts the 3D printer's time-domain acoustic energy flow
//! into frequency-domain features "using continuous-wavelet transforms,
//! which preserves the high-frequency resolution in time-domain", then
//! reduces the result to **100 non-uniformly distributed bins between 50
//! and 5000 Hz** (§IV-B). This crate implements that pipeline from
//! scratch:
//!
//! * [`Complex`] arithmetic and radix-2 / Bluestein [`fft`] kernels;
//! * window functions and a short-time Fourier transform ([`Stft`]) used
//!   as an ablation baseline against the wavelet features;
//! * a Morlet continuous wavelet transform ([`cwt`], [`MorletCwt`]);
//! * [`FrequencyBins`]: the paper's non-uniform binning of spectra;
//! * [`FeatureExtractor`]: the paper's `f_X` (feature construction) and
//!   `f_Y` (feature extraction/selection) maps from energy flows to
//!   bounded feature vectors.
//!
//! # Example
//!
//! ```
//! use gansec_dsp::{fft, Complex};
//!
//! // A pure tone lands its energy in a single FFT bin.
//! let n = 64;
//! let signal: Vec<Complex> = (0..n)
//!     .map(|i| Complex::new((std::f64::consts::TAU * 8.0 * i as f64 / n as f64).cos(), 0.0))
//!     .collect();
//! let spectrum = fft(&signal);
//! // Only the non-negative-frequency half (the mirror bin is symmetric).
//! let mags: Vec<f64> = spectrum[..n / 2].iter().map(Complex::abs).collect();
//! let peak = mags.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
//! assert_eq!(peak, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod bins;
mod complex;
mod cwt;
mod features;
mod fft;
mod plan;
mod stft;
mod window;

pub use bins::FrequencyBins;
pub use complex::Complex;
pub use cwt::{cwt, MorletCwt, Scalogram};
pub use features::{
    frame_mean_per_bin, AnalysisKind, FeatureExtractor, FeatureMatrix, ScalingKind,
};
pub use fft::{fft, fft_real, ifft, next_power_of_two};
pub use plan::{CwtPlan, FftPlan, FlatScalogram, PlanCache, RealFftPlan};
pub use stft::{Spectrogram, Stft};
pub use window::Window;
