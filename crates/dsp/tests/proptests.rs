//! Property-based tests for the DSP kernels: the Fourier identities and
//! binning invariants that the feature pipeline (and hence every
//! experiment) silently relies on.

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use gansec_dsp::{fft, ifft, Complex, FeatureMatrix, FrequencyBins};
use proptest::prelude::*;

fn complex_signal(len: usize) -> impl Strategy<Value = Vec<Complex>> {
    proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

proptest! {
    #[test]
    fn fft_round_trip_power_of_two(x in complex_signal(32)) {
        let back = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_round_trip_arbitrary_len(x in complex_signal(21)) {
        let back = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-8);
        }
    }

    #[test]
    fn fft_is_linear(x in complex_signal(16), y in complex_signal(16), a in -3.0..3.0f64) {
        let combo: Vec<Complex> = x.iter().zip(&y).map(|(&u, &v)| u.scale(a) + v).collect();
        let f_combo = fft(&combo);
        let fx = fft(&x);
        let fy = fft(&y);
        for i in 0..16 {
            let expected = fx[i].scale(a) + fy[i];
            prop_assert!((f_combo[i] - expected).abs() < 1e-8);
        }
    }

    #[test]
    fn parseval_holds(x in complex_signal(64)) {
        let spec = fft(&x);
        let te: f64 = x.iter().map(Complex::norm_sq).sum();
        let fe: f64 = spec.iter().map(Complex::norm_sq).sum::<f64>() / 64.0;
        prop_assert!((te - fe).abs() < 1e-7 * (1.0 + te));
    }

    #[test]
    fn dc_bin_is_signal_sum(x in complex_signal(16)) {
        let spec = fft(&x);
        let sum = x.iter().fold(Complex::ZERO, |acc, &c| acc + c);
        prop_assert!((spec[0] - sum).abs() < 1e-9);
    }

    #[test]
    fn log_bins_monotone_and_bounded(
        n in 2usize..64,
        fmin in 1.0..100.0f64,
        ratio in 1.5..100.0f64,
    ) {
        let fmax = fmin * ratio;
        let bins = FrequencyBins::log_spaced(n, fmin, fmax);
        prop_assert_eq!(bins.n_bins(), n);
        let edges = bins.edges();
        for w in edges.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        prop_assert!((bins.fmin() - fmin).abs() < 1e-9 * fmin);
        prop_assert!((bins.fmax() - fmax).abs() < 1e-6 * fmax);
    }

    #[test]
    fn every_in_range_freq_has_a_bin(
        f in 50.0..5000.0f64,
    ) {
        let bins = FrequencyBins::paper_default();
        let idx = bins.bin_index(f);
        prop_assert!(idx.is_some());
        let b = idx.unwrap();
        prop_assert!(f >= bins.edges()[b] - 1e-9);
        prop_assert!(f <= bins.edges()[b + 1] + 1e-9);
    }

    #[test]
    fn bin_spectrum_total_bounded_by_max_mag(
        samples in proptest::collection::vec((50.0..5000.0f64, 0.0..10.0f64), 1..50),
    ) {
        let bins = FrequencyBins::paper_default();
        let freqs: Vec<f64> = samples.iter().map(|s| s.0).collect();
        let mags: Vec<f64> = samples.iter().map(|s| s.1).collect();
        let out = bins.bin_spectrum(&freqs, &mags);
        let max_mag = mags.iter().copied().fold(0.0, f64::max);
        // Each bin is a mean of member magnitudes, so no bin exceeds max.
        prop_assert!(out.iter().all(|&v| v <= max_mag + 1e-12));
    }

    #[test]
    fn minmax_scaling_is_idempotent_on_bounds(
        rows in proptest::collection::vec(
            proptest::collection::vec(-100.0..100.0f64, 4),
            2..10,
        ),
    ) {
        let mut fm = FeatureMatrix::from_rows(rows.clone());
        let distinct = {
            let flat: Vec<f64> = rows.iter().flatten().copied().collect();
            flat.iter().any(|&v| (v - flat[0]).abs() > 1e-12)
        };
        fm.minmax_scale_global();
        if distinct {
            let flat: Vec<f64> = fm.rows().iter().flatten().copied().collect();
            let lo = flat.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = flat.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(lo.abs() < 1e-12);
            prop_assert!((hi - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn top_variance_returns_distinct_sorted_by_variance(
        rows in proptest::collection::vec(
            proptest::collection::vec(-10.0..10.0f64, 6),
            3..12,
        ),
        k in 1usize..6,
    ) {
        let fm = FeatureMatrix::from_rows(rows);
        let top = fm.top_variance_indices(k);
        prop_assert_eq!(top.len(), k.min(6));
        let vars = fm.column_variances();
        for w in top.windows(2) {
            prop_assert!(vars[w[0]] >= vars[w[1]] - 1e-12);
        }
        let mut sorted = top.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), top.len());
    }
}
