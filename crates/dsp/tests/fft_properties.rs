//! Property tests for the FFT layer, written as seeded deterministic
//! sweeps: many pseudo-random signals per length régime, checking the
//! identities (round-trip, Parseval) and a naive-DFT oracle across
//! power-of-two (radix-2), prime (Bluestein), and the degenerate
//! length-0/length-1 inputs — including the planned and packed-real
//! paths.

#![allow(clippy::unwrap_used)] // test/example code may panic freely

use gansec_dsp::{fft, fft_real, ifft, Complex, FftPlan, RealFftPlan};

/// Power-of-two lengths (radix-2 path) plus the degenerate cases.
const POW2_LENGTHS: &[usize] = &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256];
/// Prime lengths: all exercise the Bluestein chirp-z path.
const PRIME_LENGTHS: &[usize] = &[3, 5, 7, 11, 13, 31, 127, 251];

/// splitmix64: the repo's standard tiny deterministic generator.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[-10, 10)`.
    fn value(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 20.0 - 10.0
    }

    fn complex_signal(&mut self, n: usize) -> Vec<Complex> {
        (0..n)
            .map(|_| Complex::new(self.value(), self.value()))
            .collect()
    }

    fn real_signal(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.value()).collect()
    }
}

fn naive_dft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let ang = -std::f64::consts::TAU * (k * j) as f64 / n as f64;
                acc += x * Complex::from_angle(ang);
            }
            acc
        })
        .collect()
}

/// Magnitude budget for relative tolerances.
fn mass(x: &[Complex]) -> f64 {
    1.0 + x.iter().map(Complex::abs).sum::<f64>()
}

fn for_each_case(lengths: &[usize], cases: usize, mut f: impl FnMut(usize, Vec<Complex>)) {
    let mut rng = Rng(0x5eed_0ff7);
    for &n in lengths {
        for _ in 0..cases {
            f(n, rng.complex_signal(n));
        }
    }
}

#[test]
fn fft_matches_naive_dft_power_of_two() {
    for_each_case(POW2_LENGTHS, 8, |n, x| {
        let spec = fft(&x);
        let oracle = naive_dft(&x);
        assert_eq!(spec.len(), oracle.len());
        let tol = 1e-10 * mass(&x);
        for (k, (a, b)) in spec.iter().zip(&oracle).enumerate() {
            assert!((*a - *b).abs() < tol, "n {n} bin {k}: {a:?} vs {b:?}");
        }
    });
}

#[test]
fn fft_matches_naive_dft_prime_bluestein() {
    for_each_case(PRIME_LENGTHS, 8, |n, x| {
        let spec = fft(&x);
        let oracle = naive_dft(&x);
        let tol = 1e-9 * mass(&x);
        for (k, (a, b)) in spec.iter().zip(&oracle).enumerate() {
            assert!((*a - *b).abs() < tol, "n {n} bin {k}: {a:?} vs {b:?}");
        }
    });
}

#[test]
fn ifft_round_trips_all_regimes() {
    for_each_case(&[POW2_LENGTHS, PRIME_LENGTHS].concat(), 8, |n, x| {
        let back = ifft(&fft(&x));
        assert_eq!(back.len(), x.len());
        let tol = 1e-10 * mass(&x);
        for (i, (a, b)) in x.iter().zip(&back).enumerate() {
            assert!((*a - *b).abs() < tol, "n {n} sample {i}: {a:?} vs {b:?}");
        }
    });
}

#[test]
fn parseval_holds_all_regimes() {
    for_each_case(&[POW2_LENGTHS, PRIME_LENGTHS].concat(), 8, |n, x| {
        if n == 0 {
            assert!(fft(&x).is_empty());
            return;
        }
        let spec = fft(&x);
        let time_energy: f64 = x.iter().map(Complex::norm_sq).sum();
        let freq_energy: f64 = spec.iter().map(Complex::norm_sq).sum::<f64>() / n as f64;
        assert!(
            (time_energy - freq_energy).abs() < 1e-8 * (1.0 + time_energy),
            "n {n}: {time_energy} vs {freq_energy}"
        );
    });
}

#[test]
fn degenerate_lengths_are_identities() {
    // Length 0: empty in, empty out, everywhere.
    assert!(fft(&[]).is_empty());
    assert!(ifft(&[]).is_empty());
    assert!(fft_real(&[]).is_empty());
    // Length 1: the DFT is the identity map.
    let x = [Complex::new(3.25, -1.5)];
    assert_eq!(fft(&x), x.to_vec());
    assert_eq!(ifft(&x), x.to_vec());
    let mut buf = x.to_vec();
    let plan = FftPlan::new(1);
    plan.forward(&mut buf);
    assert_eq!(buf, x.to_vec());
    plan.inverse_norm(&mut buf);
    assert_eq!(buf, x.to_vec());
    assert_eq!(
        RealFftPlan::new(1).forward(&[4.5]),
        vec![Complex::from_real(4.5)]
    );
}

#[test]
fn planned_fft_bit_identical_across_regimes() {
    let mut rng = Rng(0x9_1a2b);
    for &n in POW2_LENGTHS {
        if n == 0 {
            continue;
        }
        let plan = FftPlan::new(n);
        for _ in 0..4 {
            let x = rng.complex_signal(n);
            let mut fwd = x.clone();
            plan.forward(&mut fwd);
            let reference = fft(&x);
            for (a, b) in fwd.iter().zip(&reference) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
            let mut inv = x.clone();
            plan.inverse_norm(&mut inv);
            let reference = ifft(&x);
            for (a, b) in inv.iter().zip(&reference) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }
}

#[test]
fn packed_real_matches_widened_complex() {
    let mut rng = Rng(0xfeed);
    for &n in &[0usize, 1, 2, 4, 8, 64, 256, 3, 7, 12, 100, 127] {
        for _ in 0..4 {
            let x = rng.real_signal(n);
            let packed = fft_real(&x);
            let widened: Vec<Complex> = x.iter().map(|&v| Complex::from_real(v)).collect();
            let reference = fft(&widened);
            assert_eq!(packed.len(), reference.len());
            let tol = 1e-11 * mass(&widened);
            for (k, (a, b)) in packed.iter().zip(&reference).enumerate() {
                assert!((*a - *b).abs() < tol, "n {n} bin {k}: {a:?} vs {b:?}");
            }
        }
    }
}
