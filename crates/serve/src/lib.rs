//! # gansec-serve
//!
//! The networked half of the train/serve split: a dependency-light,
//! multi-threaded HTTP/1.1 server that loads a sealed
//! [`gansec::ModelBundle`] into an immutable
//! [`gansec_engine::ScoringEngine`] and scores acoustic frames *online*
//! — integrity/availability attacks on the printer are flagged while
//! the job is running, which is how GAN-based CPS detectors deploy in
//! practice (MAD-GAN, G-IDS).
//!
//! ## Architecture
//!
//! ```text
//! acceptor ──▶ bounded conn queue ──▶ N worker threads (parse + route)
//!                                          │  score/detect jobs
//!                                          ▼
//!                              bounded frame queue (backpressure: 503)
//!                                          │  drain ≤ max_batch frames
//!                                          ▼            or linger deadline
//!                                  scorer thread ──▶ engine.score_frames
//!                                  (one Arc<ScoringEngine> read per batch)
//! ```
//!
//! * **Micro-batching** — scoring requests enqueue their frames on one
//!   bounded queue; a single scorer thread drains up to
//!   [`ServeConfig::max_batch`] frames (or gives up waiting at the
//!   [`ServeConfig::batch_linger_ms`] deadline) and scores them as one
//!   block-parallel [`gansec_engine::ScoringEngine::score_frames`] call,
//!   amortizing scratch reuse across connections. Per-frame scores are
//!   bit-identical to a direct engine call at any batch composition,
//!   because every frame's accumulation order is internal to its row.
//! * **Backpressure** — a full frame queue rejects with `503` and a
//!   `Retry-After` header instead of queueing unboundedly; a connection
//!   cap does the same at the accept loop.
//! * **Atomic hot reload** — `POST /admin/reload` parses, lints, and
//!   strictly validates a new bundle before swapping the
//!   `Arc<ScoringEngine>`; in-flight batches keep scoring against the
//!   engine they started with.
//! * **Graceful drain** — shutdown (the `POST /admin/shutdown` endpoint
//!   or [`ServerHandle::trigger_shutdown`]) stops accepting, lets
//!   workers finish their connections, flushes every queued job through
//!   the scorer, and joins all threads. (OS signal handlers need
//!   `unsafe` FFI, which this workspace forbids; supervisors should use
//!   the admin endpoint as the stop hook — the drain path is the same.)
//! * **Scorer supervision** — the scorer runs under a watchdog that
//!   polls its liveness every [`ServeConfig::heartbeat_ms`]. A panicked
//!   (or, with [`ServeConfig::scorer_stall_ms`], hung) incarnation is
//!   replaced with exponential backoff after the replacement engine is
//!   re-validated against the served bundle, so post-recovery scores
//!   stay bit-identical; worker panics are likewise contained to their
//!   connection.
//! * **Degraded-mode serving** — `/healthz` reports a tri-state
//!   `ok` / `degraded` / `draining`; a circuit breaker trips after
//!   [`ServeConfig::breaker_threshold`] consecutive scoring failures and
//!   sheds load with `503` + `Retry-After` until a half-open probe
//!   succeeds. Non-finite frames are quarantined with a typed `422`
//!   instead of poisoning co-batched requests.
//!
//! The server threads are long-lived blocking I/O loops, so they use
//! `std::thread` directly; all numeric work still fans out through
//! `gansec-parallel` inside the engine, keeping the deterministic
//! fork-join model for the hot path.
//!
//! ## Endpoints
//!
//! | Route | Method | Body | Reply |
//! |-------|--------|------|-------|
//! | `/v1/score` | POST | [`api::ScoreRequest`] | [`api::ScoreResponse`] |
//! | `/v1/detect` | POST | [`api::DetectRequest`] | [`api::DetectResponse`] |
//! | `/v1/classify` | POST | [`api::ClassifyRequest`] | [`api::ClassifyResponse`] |
//! | `/v1/stream/{id}/samples` | POST | [`api::StreamIngestRequest`] | [`api::StreamIngestResponse`] |
//! | `/v1/stream/{id}/close` | POST | — | [`api::StreamCloseResponse`] |
//! | `/v1/stream/{id}/stats` | GET | — | [`api::StreamStatsResponse`] |
//! | `/healthz` | GET | — | bundle provenance JSON |
//! | `/metrics` | GET | — | Prometheus text format |
//! | `/admin/reload` | POST | [`api::ReloadRequest`] (optional) | [`api::ReloadResponse`] |
//! | `/admin/shutdown` | POST | — | ack, then graceful drain |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod api;
mod batch;
mod breaker;
pub mod client;
pub mod http;
pub mod loadgen;
mod metrics;
mod server;

pub use metrics::{Metrics, StreamGauges};
pub use server::{Server, ServerHandle};

/// Everything the server's behavior is configured by. The CLI's
/// `gansec serve` flags map onto these fields one-to-one, and
/// [`ServeConfig::lint_spec`] hands the same numbers to `gansec check`'s
/// `GS05xx` pass (and [`ServeConfig::stream_lint_spec`] to the `GS09xx`
/// stream pass) before a socket is ever bound.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878`. Port `0` asks the OS for an
    /// ephemeral port (useful in tests, flagged by lint for production).
    pub addr: String,
    /// Connection-handling worker threads.
    pub workers: usize,
    /// Frames the scorer drains into one batch at most.
    pub max_batch: usize,
    /// How long the scorer waits for more frames after the first job of
    /// a batch arrives, in milliseconds. `0` dispatches immediately.
    pub batch_linger_ms: u64,
    /// Frame-queue capacity; a request that would push the queued frame
    /// count past this is rejected with `503` + `Retry-After`.
    pub queue_frames: usize,
    /// Maximum simultaneously accepted connections (queued + in
    /// service); excess connections get an immediate `503`.
    pub max_conns: usize,
    /// Per-connection read timeout in milliseconds (`0` = unlimited).
    pub read_timeout_ms: u64,
    /// Per-connection write timeout in milliseconds (`0` = unlimited).
    pub write_timeout_ms: u64,
    /// Largest accepted request body; beyond it the server answers
    /// `413` without reading the payload.
    pub max_body_bytes: usize,
    /// Watchdog poll interval over the scorer thread, in milliseconds.
    pub heartbeat_ms: u64,
    /// How long one batch may stay in flight before the watchdog calls
    /// the scorer hung and replaces it (`0` = never; a hang is then only
    /// visible as rising queue depth).
    pub scorer_stall_ms: u64,
    /// How many times the watchdog restarts a dead scorer before giving
    /// up and serving degraded forever. Attempts reset once a restarted
    /// scorer completes a batch.
    pub restart_attempts: u32,
    /// Base delay between scorer restarts, in milliseconds; doubles per
    /// consecutive failure up to a 5 s cap.
    pub restart_backoff_ms: u64,
    /// Consecutive scoring-batch failures that trip the circuit breaker
    /// (clamped to at least 1).
    pub breaker_threshold: u32,
    /// How long a tripped breaker rejects scoring traffic before letting
    /// one half-open probe batch through, in milliseconds.
    pub breaker_cooldown_ms: u64,
    /// Streaming analysis window length in samples.
    pub stream_frame_len: usize,
    /// Streaming hop between frame starts in samples.
    pub stream_hop: usize,
    /// Maximum concurrently open streaming sessions.
    pub stream_max_sessions: usize,
    /// Per-chunk streaming backpressure cap, in samples.
    pub stream_max_chunk_samples: usize,
    /// Streaming sessions idle longer than this are evicted, in
    /// milliseconds.
    pub stream_idle_timeout_ms: u64,
    /// Recalibration reservoir capacity per streaming session.
    pub stream_reservoir: usize,
    /// Scores a session must observe before a recalibrated threshold is
    /// reported.
    pub stream_warmup: usize,
    /// EWMA smoothing factor for the streaming drift statistic, in
    /// `(0, 1]`.
    pub stream_drift_alpha: f64,
    /// Whether streaming sessions compute (and report — never apply) a
    /// live recalibrated threshold.
    pub stream_recalibrate: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            max_batch: 64,
            batch_linger_ms: 2,
            queue_frames: 1024,
            max_conns: 64,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            max_body_bytes: 1 << 20,
            heartbeat_ms: 100,
            scorer_stall_ms: 10_000,
            restart_attempts: 5,
            restart_backoff_ms: 50,
            breaker_threshold: 5,
            breaker_cooldown_ms: 1_000,
            stream_frame_len: 1024,
            stream_hop: 512,
            stream_max_sessions: 64,
            stream_max_chunk_samples: 1 << 16,
            stream_idle_timeout_ms: 30_000,
            stream_reservoir: 512,
            stream_warmup: 64,
            stream_drift_alpha: 0.05,
            stream_recalibrate: false,
        }
    }
}

impl ServeConfig {
    /// The `gansec-lint` [`gansec_lint::ServeSpec`] describing this
    /// configuration, for the `GS05xx` server-sanity pass.
    pub fn lint_spec(&self) -> gansec_lint::ServeSpec {
        gansec_lint::ServeSpec {
            port: self.addr.rsplit(':').next().and_then(|p| p.parse().ok()),
            workers: self.workers,
            max_batch: self.max_batch,
            batch_linger_ms: self.batch_linger_ms,
            queue_frames: self.queue_frames,
            max_conns: self.max_conns,
            read_timeout_ms: self.read_timeout_ms,
            write_timeout_ms: self.write_timeout_ms,
            heartbeat_ms: self.heartbeat_ms,
            scorer_stall_ms: self.scorer_stall_ms,
            restart_attempts: self.restart_attempts,
            breaker_threshold: self.breaker_threshold,
            // Whether a chaos plan is in play is a runtime property the
            // CLI knows, not a config field; it fills these in before
            // gating on the report.
            chaos_plan: false,
            chaos_built: cfg!(feature = "chaos"),
        }
    }

    /// The `gansec-lint` [`gansec_lint::StreamSpec`] describing the
    /// streaming knobs, for the `GS09xx` stream-ingest pass.
    pub fn stream_lint_spec(&self) -> gansec_lint::StreamSpec {
        gansec_lint::StreamSpec {
            frame_len: self.stream_frame_len,
            hop: self.stream_hop,
            max_sessions: self.stream_max_sessions,
            idle_timeout_ms: self.stream_idle_timeout_ms,
            reservoir: self.stream_reservoir,
            warmup: self.stream_warmup,
            drift_alpha: self.stream_drift_alpha,
        }
    }

    /// The [`gansec_stream::StreamConfig`] these knobs select. `seed` is
    /// the serving bundle's run seed, so per-session RNG streams are
    /// reproducible per deployment.
    pub fn stream_config(&self, seed: u64) -> gansec_stream::StreamConfig {
        gansec_stream::StreamConfig {
            frame_len: self.stream_frame_len,
            hop: self.stream_hop,
            max_sessions: self.stream_max_sessions,
            max_chunk_samples: self.stream_max_chunk_samples,
            idle_timeout_ms: self.stream_idle_timeout_ms,
            reservoir: self.stream_reservoir,
            warmup: self.stream_warmup,
            drift_alpha: self.stream_drift_alpha,
            recalibrate: self.stream_recalibrate,
            seed,
            ..gansec_stream::StreamConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_lint_clean() {
        let cfg = ServeConfig::default();
        let report = gansec_lint::check(
            &gansec_lint::CheckInput::new()
                .with_serve(cfg.lint_spec())
                .with_stream(cfg.stream_lint_spec()),
        );
        assert!(
            report.diagnostics().is_empty(),
            "{:?}",
            report.diagnostics()
        );
    }

    #[test]
    fn stream_config_carries_the_knobs_and_seed() {
        let cfg = ServeConfig {
            stream_frame_len: 256,
            stream_hop: 128,
            stream_recalibrate: true,
            ..ServeConfig::default()
        };
        let sc = cfg.stream_config(42);
        assert_eq!(sc.frame_len, 256);
        assert_eq!(sc.hop, 128);
        assert_eq!(sc.seed, 42);
        assert!(sc.recalibrate);
        assert_eq!(sc.max_sessions, cfg.stream_max_sessions);
    }

    #[test]
    fn lint_spec_parses_the_port() {
        let cfg = ServeConfig {
            addr: "0.0.0.0:9100".into(),
            ..ServeConfig::default()
        };
        assert_eq!(cfg.lint_spec().port, Some(9100));
        let cfg = ServeConfig {
            addr: "garbage".into(),
            ..ServeConfig::default()
        };
        assert_eq!(cfg.lint_spec().port, None);
    }
}
