//! The JSON wire types of the scoring endpoints.
//!
//! Both directions derive `Serialize` and `Deserialize` so the server,
//! the test suite, and the load generator share one schema. Floats ride
//! on `serde_json`'s `float_roundtrip`, so a score survives the wire
//! bit-exactly — the property the serve-vs-offline identity tests pin.

use serde::{Deserialize, Serialize};

/// Body of `POST /v1/score` and `POST /v1/detect`: frame rows plus the
/// condition each frame claims to be running under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreRequest {
    /// Feature rows, each exactly `n_bins` wide (the bundle's framing).
    pub frames: Vec<Vec<f64>>,
    /// Claimed condition rows, one per frame, each exactly the bundled
    /// encoding's cardinality wide.
    pub conds: Vec<Vec<f64>>,
}

/// Reply of `POST /v1/score`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreResponse {
    /// Per-frame consistency scores, in request order; bit-identical to
    /// a direct `ScoringEngine::score_frames` call on the same rows.
    pub scores: Vec<f64>,
}

/// Body of `POST /v1/detect`: the [`ScoreRequest`] shape plus an
/// optional evidence selection. A body without `evidence` is exactly a
/// `ScoreRequest`, so pre-evidence clients keep working verbatim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectRequest {
    /// Feature rows, each exactly `n_bins` wide (the bundle's framing).
    pub frames: Vec<Vec<f64>>,
    /// Claimed condition rows, one per frame.
    pub conds: Vec<Vec<f64>>,
    /// Which evidence channels to combine for the verdicts. Omitted =
    /// the default KDE-only path, bit-identical to the pre-evidence
    /// server.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub evidence: Option<EvidenceRequest>,
}

/// The evidence selection of a [`DetectRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvidenceRequest {
    /// Evidence kinds to combine: `"kde"`, `"disc"`, and/or `"recon"`.
    pub kinds: Vec<String>,
    /// Combination weights, one per kind; empty = uniform.
    #[serde(default)]
    pub weights: Vec<f64>,
}

/// Reply of `POST /v1/detect`: scores plus the calibrated verdicts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectResponse {
    /// The alarm threshold the verdicts used — the bundled KDE threshold
    /// on the default path, the combined-axis threshold when an
    /// evidence stack was requested.
    pub threshold: f64,
    /// Number of frames flagged as attacks.
    pub flagged: usize,
    /// Per-frame scores on the verdict axis, in request order (raw KDE
    /// scores on the default path, combined evidence otherwise).
    pub scores: Vec<f64>,
    /// Per-frame verdicts (`true` = attack).
    pub verdicts: Vec<bool>,
    /// Per-channel breakdown, present only when the request selected an
    /// evidence stack.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub evidence: Option<EvidenceBreakdown>,
}

/// Per-channel evidence detail on a [`DetectResponse`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvidenceBreakdown {
    /// Channel kinds, in stack order.
    pub kinds: Vec<String>,
    /// Normalized combination weights, in stack order.
    pub weights: Vec<f64>,
    /// Raw per-channel alarm thresholds, in stack order.
    pub thresholds: Vec<f64>,
    /// Raw per-channel scores, `per_evidence[channel][frame]`.
    pub per_evidence: Vec<Vec<f64>>,
    /// Typed degradation notices (e.g. a legacy v1 bundle falling back
    /// to KDE-only evidence), rendered as sentences.
    #[serde(default)]
    pub warnings: Vec<String>,
}

/// Body of `POST /v1/classify`: frames without claimed conditions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifyRequest {
    /// Feature rows, each exactly `n_bins` wide.
    pub frames: Vec<Vec<f64>>,
}

/// Reply of `POST /v1/classify`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifyResponse {
    /// Maximum-likelihood condition index per frame.
    pub conditions: Vec<usize>,
    /// Per-frame, per-condition joint log-likelihoods
    /// (`log_likelihoods[frame][condition]`).
    pub log_likelihoods: Vec<Vec<f64>>,
}

/// Body of `POST /v1/stream/{session}/samples`: one chunk of raw
/// signal for a sensor session, plus the condition the live G-code
/// channel currently claims.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamIngestRequest {
    /// Raw time-domain samples, in capture order. Any chunking is
    /// legal — one sample, a half-frame, many frames — and never
    /// changes the emitted scores.
    pub samples: Vec<f64>,
    /// The session's current condition row, exactly the bundled
    /// encoding's cardinality wide; repeated for every frame this chunk
    /// completes.
    pub cond: Vec<f64>,
    /// Sample rate in Hz; fixed at session creation, later chunks must
    /// agree.
    pub sample_rate: f64,
}

/// Drift + recalibration summary attached to streaming replies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamDriftStatus {
    /// Whether the serving bundle sealed calibration stats; without
    /// them the drift channel is disabled.
    pub calibrated: bool,
    /// Current EWMA of standardised scores.
    pub ewma: f64,
    /// `"stable"` or `"drifting"`.
    pub state: String,
    /// The bundle's sealed alarm threshold, when calibrated.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sealed_threshold: Option<f64>,
    /// Live recalibrated threshold — reported only, never applied to
    /// verdicts.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub recalibrated_threshold: Option<f64>,
    /// Scores folded into the session statistics so far.
    pub scored_frames: u64,
    /// Running mean of raw session scores.
    pub score_mean: f64,
    /// Running population variance of raw session scores.
    pub score_variance: f64,
}

/// Reply of `POST /v1/stream/{session}/samples`: verdicts for every
/// frame this chunk completed, plus the session's drift report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamIngestResponse {
    /// The session id from the path.
    pub session: String,
    /// Frames the session had emitted before this chunk (stable frame
    /// indexing across chunks).
    pub frames_before: u64,
    /// Scores for the frames this chunk completed (may be empty when
    /// the chunk did not fill a frame); bit-identical to the offline
    /// blocked extractor on the same sample stream.
    pub scores: Vec<f64>,
    /// Per-frame verdicts (`true` = attack), always against the sealed
    /// threshold.
    pub verdicts: Vec<bool>,
    /// The sealed alarm threshold the verdicts used.
    pub threshold: f64,
    /// Frames flagged in this chunk.
    pub flagged: usize,
    /// Session drift + recalibration summary after this chunk.
    pub drift: StreamDriftStatus,
}

/// Reply of `POST /v1/stream/{session}/close`: the flushed tail frames
/// and the session's final statistics. The session is removed after
/// this reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamCloseResponse {
    /// The session id from the path.
    pub session: String,
    /// Frames the session had emitted before the flush.
    pub frames_before: u64,
    /// Scores for the final frames the tail flush completed.
    pub scores: Vec<f64>,
    /// Per-frame verdicts for the tail frames.
    pub verdicts: Vec<bool>,
    /// The sealed alarm threshold the verdicts used.
    pub threshold: f64,
    /// Tail frames flagged.
    pub flagged: usize,
    /// Final drift + recalibration summary.
    pub drift: StreamDriftStatus,
}

/// Reply of `GET /v1/stream/{session}/stats`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStatsResponse {
    /// The session id from the path.
    pub session: String,
    /// Raw samples accepted so far.
    pub samples: u64,
    /// Feature frames emitted so far.
    pub frames: u64,
    /// CWT transforms executed so far (at most one per hop block).
    pub transforms: u64,
    /// Samples buffered awaiting a full hop block.
    pub pending_samples: usize,
    /// The session's sample rate in Hz.
    pub sample_rate: f64,
    /// The session's current condition row.
    pub condition: Vec<f64>,
    /// Milliseconds since the session last ingested.
    pub idle_ms: u64,
    /// Whether the session was flushed by a close.
    pub closed: bool,
    /// Drift + recalibration summary.
    pub drift: StreamDriftStatus,
}

/// Body of `POST /admin/reload`. An empty request body reloads the
/// bundle path the server was started with.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReloadRequest {
    /// Path of the bundle to load instead of the startup path.
    #[serde(default)]
    pub bundle: Option<String>,
}

/// Reply of a successful `POST /admin/reload`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReloadResponse {
    /// The path the new engine was loaded from.
    pub bundle: String,
    /// The new bundle's schema version.
    pub schema_version: u32,
    /// The new bundle's run seed.
    pub seed: u64,
    /// The new bundle's config fingerprint, `{:016x}`-rendered.
    pub config_fingerprint: String,
}

/// Reply of `GET /healthz`: tri-state health plus the provenance of the
/// bundle currently serving.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthResponse {
    /// `"ok"`, `"degraded"` (scorer down, breaker open, or quarantine
    /// active — reads still work), or `"draining"` (shutting down).
    pub status: String,
    /// The path the serving bundle was loaded from.
    pub bundle: String,
    /// The serving bundle's schema version.
    pub schema_version: u32,
    /// The serving bundle's run seed.
    pub seed: u64,
    /// The serving bundle's config fingerprint, `{:016x}`-rendered.
    pub config_fingerprint: String,
    /// The calibrated alarm threshold in force.
    pub threshold: f64,
    /// Whether a live scorer incarnation is draining the batch queue.
    pub scorer_alive: bool,
    /// Scorer incarnations the watchdog has replaced since startup.
    pub scorer_restarts: u64,
    /// Circuit-breaker phase: `"closed"`, `"open"`, or `"half_open"`.
    pub breaker: String,
    /// Non-finite frames quarantined since startup, across all bundles.
    pub quarantined_frames: u64,
}

/// Error reply body used by every non-2xx JSON response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// What went wrong, in one sentence.
    pub error: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Offline stub builds ship a serde_json whose deserializer always
    /// errors; tests that need a real JSON round-trip probe for it first.
    fn json_roundtrip_available() -> bool {
        serde_json::from_str::<serde_json::Value>("null").is_ok()
    }

    #[test]
    fn score_request_round_trips_floats_bit_exactly() {
        if !json_roundtrip_available() {
            return;
        }
        let req = ScoreRequest {
            frames: vec![vec![0.1 + 0.2, f64::MIN_POSITIVE, -1.0 / 3.0]],
            conds: vec![vec![1.0, 0.0, 0.0]],
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: ScoreRequest = serde_json::from_str(&json).unwrap();
        for (a, b) in req.frames[0].iter().zip(&back.frames[0]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn detect_request_without_evidence_parses_a_plain_score_body() {
        if !json_roundtrip_available() {
            return;
        }
        let body = serde_json::to_string(&ScoreRequest {
            frames: vec![vec![0.5, 0.25]],
            conds: vec![vec![1.0, 0.0]],
        })
        .unwrap();
        let req: DetectRequest = serde_json::from_str(&body).unwrap();
        assert!(req.evidence.is_none());
        assert_eq!(req.frames, vec![vec![0.5, 0.25]]);
        let explicit: DetectRequest = serde_json::from_str(
            "{\"frames\":[[0.5,0.25]],\"conds\":[[1.0,0.0]],\
             \"evidence\":{\"kinds\":[\"kde\",\"disc\"]}}",
        )
        .unwrap();
        let evidence = explicit.evidence.expect("evidence parsed");
        assert_eq!(evidence.kinds, vec!["kde", "disc"]);
        assert!(evidence.weights.is_empty());
    }

    #[test]
    fn stream_ingest_round_trips_and_elides_absent_thresholds() {
        if !json_roundtrip_available() {
            return;
        }
        let reply = StreamIngestResponse {
            session: "s1".into(),
            frames_before: 3,
            scores: vec![-12.5, 0.1 + 0.2],
            verdicts: vec![false, true],
            threshold: -14.0,
            flagged: 1,
            drift: StreamDriftStatus {
                calibrated: false,
                ewma: 0.0,
                state: "stable".into(),
                sealed_threshold: None,
                recalibrated_threshold: None,
                scored_frames: 5,
                score_mean: -6.2,
                score_variance: 0.4,
            },
        };
        let json = serde_json::to_string(&reply).unwrap();
        assert!(!json.contains("sealed_threshold"), "absent fields elided");
        let back: StreamIngestResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.scores[1].to_bits(), reply.scores[1].to_bits());
        assert_eq!(back, reply);
    }

    #[test]
    fn reload_request_accepts_an_empty_object() {
        if !json_roundtrip_available() {
            return;
        }
        let req: ReloadRequest = serde_json::from_str("{}").unwrap();
        assert_eq!(req, ReloadRequest::default());
    }
}
