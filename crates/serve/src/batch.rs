//! The micro-batching queue between connection workers and the scorer.
//!
//! Workers submit [`ScoreJob`]s — flattened frame/condition rows plus a
//! reply channel — onto one bounded, frame-counted queue. A single
//! scorer thread drains up to `max_batch` frames per pass, waiting out a
//! short linger window for co-batching, and answers each job over its
//! reply channel. Jobs stay *in* the queue during the linger, so the
//! queue depth reflects real backpressure and a saturated queue rejects
//! deterministically.

use std::collections::VecDeque;
use std::fmt;
use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use gansec_engine::EvidenceKind;

/// Why one job's reply is an error instead of scores. Each variant maps
/// to a distinct HTTP status so callers can tell their own bad input
/// (quarantine, `422`) from server-side trouble (`503`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The served bundle was hot-swapped to different frame/condition
    /// widths between submit and scoring (→ `409`).
    Reshaped {
        /// Frame width the engine now expects.
        frame_width: usize,
        /// Condition width the engine now expects.
        cond_width: usize,
    },
    /// The job carries a NaN or infinite value; it is quarantined before
    /// scoring so it cannot poison co-batched requests (→ `422`).
    NonFinite {
        /// Zero-based frame index within the job.
        row: usize,
        /// `"feature"` or `"condition"`.
        kind: &'static str,
    },
    /// The evidence stack this job asked for cannot be built against
    /// the engine now serving — a hot reload swapped in a bundle
    /// without the requested channels between submit and scoring
    /// (→ `409`, verdict-less: not a breaker failure).
    EvidenceUnavailable(String),
    /// The engine rejected the whole batch — model poison, not client
    /// input (→ `503`, counts against the circuit breaker).
    ScoringFailed(String),
    /// The scorer died (or was shut down) before answering (→ `503`).
    ScorerLost,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Reshaped {
                frame_width,
                cond_width,
            } => write!(
                f,
                "bundle was reloaded mid-flight: resend for frame width {frame_width}, \
                 condition width {cond_width}"
            ),
            JobError::NonFinite { row, kind } => write!(
                f,
                "frame {row} holds a non-finite {kind} value; the request was quarantined"
            ),
            JobError::EvidenceUnavailable(msg) => write!(
                f,
                "bundle was reloaded mid-flight and cannot serve the requested evidence: {msg}"
            ),
            JobError::ScoringFailed(msg) => write!(f, "scoring failed: {msg}"),
            JobError::ScorerLost => f.write_str("scorer thread went away"),
        }
    }
}

impl JobError {
    /// The HTTP status this error renders as.
    pub fn status(&self) -> u16 {
        match self {
            JobError::Reshaped { .. } | JobError::EvidenceUnavailable(_) => 409,
            JobError::NonFinite { .. } => 422,
            JobError::ScoringFailed(_) | JobError::ScorerLost => 503,
        }
    }
}

/// Which evidence channels a job wants combined, pre-validated by the
/// submitting worker. Jobs with identical selections co-batch into one
/// engine call; `None` rides the default KDE path untouched.
#[derive(Debug, Clone, PartialEq)]
pub struct EvidenceSelection {
    /// Evidence kinds, in request order.
    pub kinds: Vec<EvidenceKind>,
    /// Combination weights, one per kind; empty = uniform.
    pub weights: Vec<f64>,
}

/// Per-channel detail riding back on an evidence-selecting job's reply.
#[derive(Debug, Clone, PartialEq)]
pub struct EvidenceDetail {
    /// Channel kinds, in stack order.
    pub kinds: Vec<EvidenceKind>,
    /// Normalized combination weights, in stack order.
    pub weights: Vec<f64>,
    /// Raw per-channel alarm thresholds, in stack order.
    pub thresholds: Vec<f64>,
    /// The combined-axis alarm threshold the verdicts used.
    pub threshold: f64,
    /// Raw per-channel scores for this job's frames,
    /// `per_evidence[channel][frame]`.
    pub per_evidence: Vec<Vec<f64>>,
    /// Per-frame verdicts for this job (`true` = attack).
    pub verdicts: Vec<bool>,
}

/// A successful scoring reply: verdict-axis scores, plus the evidence
/// breakdown when the job selected a stack.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReply {
    /// Per-frame scores on the verdict axis, in job order (raw KDE on
    /// the default path, combined evidence otherwise).
    pub scores: Vec<f64>,
    /// The per-channel breakdown; `None` on the default path.
    pub evidence: Option<EvidenceDetail>,
}

/// One scoring request's worth of frames, flattened row-major.
#[derive(Debug)]
pub struct ScoreJob {
    /// `rows * frame_width` feature values.
    pub features: Vec<f64>,
    /// `rows * cond_width` claimed-condition values.
    pub conds: Vec<f64>,
    /// Number of frames in this job.
    pub rows: usize,
    /// The evidence stack to score through; `None` = the default KDE
    /// path, bit-identical to the pre-evidence server.
    pub evidence: Option<EvidenceSelection>,
    /// Where the per-frame scores (or a rejection) go. The sender is
    /// rendezvous-buffered by the submitting worker, which blocks on
    /// `recv` — the scorer never blocks sending.
    pub reply: SyncSender<Result<JobReply, JobError>>,
}

/// Why a job was not accepted.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Accepting the job would push queued frames past capacity.
    QueueFull {
        /// Frames currently queued.
        depth: usize,
        /// The configured frame capacity.
        capacity: usize,
    },
    /// The queue is closed; the server is shutting down.
    Closed,
    /// The job itself holds more frames than the queue can ever hold.
    TooLarge {
        /// Frames in the rejected job.
        rows: usize,
        /// The configured frame capacity.
        capacity: usize,
    },
}

#[derive(Debug)]
struct QueueState {
    jobs: VecDeque<ScoreJob>,
    /// Total frames across `jobs` (the capacity unit).
    frames: usize,
    closed: bool,
}

/// Bounded MPSC frame queue with condvar wakeups.
#[derive(Debug)]
pub struct BatchQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    capacity_frames: usize,
}

impl BatchQueue {
    /// A queue admitting at most `capacity_frames` queued frames.
    pub fn new(capacity_frames: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                frames: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity_frames,
        }
    }

    /// Frames currently queued (the `/metrics` gauge).
    pub fn depth_frames(&self) -> usize {
        self.state.lock().expect("batch queue lock poisoned").frames
    }

    /// Enqueues `job` unless the queue is full or closed.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] on backpressure (→ `503`),
    /// [`SubmitError::TooLarge`] if the job can never fit (→ `422`), and
    /// [`SubmitError::Closed`] during shutdown (→ `503`).
    pub fn submit(&self, job: ScoreJob) -> Result<(), SubmitError> {
        if job.rows > self.capacity_frames {
            return Err(SubmitError::TooLarge {
                rows: job.rows,
                capacity: self.capacity_frames,
            });
        }
        let mut state = self.state.lock().expect("batch queue lock poisoned");
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.frames + job.rows > self.capacity_frames {
            return Err(SubmitError::QueueFull {
                depth: state.frames,
                capacity: self.capacity_frames,
            });
        }
        state.frames += job.rows;
        state.jobs.push_back(job);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Closes the queue: future submits fail, and `drain` returns `None`
    /// once the backlog is empty.
    pub fn close(&self) {
        self.state.lock().expect("batch queue lock poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Closes the queue *and* fails every queued job with
    /// [`JobError::ScorerLost`] — the supervisor's give-up path, where no
    /// scorer will ever drain the backlog. Returns how many jobs were
    /// failed.
    pub fn close_and_fail_pending(&self) -> usize {
        let mut state = self.state.lock().expect("batch queue lock poisoned");
        state.closed = true;
        let orphans: Vec<ScoreJob> = state.jobs.drain(..).collect();
        state.frames = 0;
        drop(state);
        self.not_empty.notify_all();
        let failed = orphans.len();
        for job in orphans {
            // The worker may itself have timed out and dropped the
            // receiver; that is fine.
            let _ = job.reply.send(Err(JobError::ScorerLost));
        }
        failed
    }

    /// Blocks for the next batch: waits for a first job, then lingers up
    /// to `linger` for more, and returns up to `max_batch` frames' worth
    /// of whole jobs. Returns `None` only when the queue is closed *and*
    /// fully drained — the graceful-shutdown contract.
    pub fn drain(&self, max_batch: usize, linger: Duration) -> Option<Vec<ScoreJob>> {
        let mut state = self.state.lock().expect("batch queue lock poisoned");
        // Phase 1: wait (indefinitely) for any work or for closure.
        while state.jobs.is_empty() {
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .expect("batch queue lock poisoned");
        }
        // Phase 2: linger for co-batching, unless the batch is already
        // full or the queue is closing.
        let deadline = Instant::now() + linger;
        while !state.closed && state.frames < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, timeout) = self
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("batch queue lock poisoned");
            state = next;
            if timeout.timed_out() {
                break;
            }
        }
        // Phase 3: pop whole jobs until the next would overflow the
        // batch. The first job always ships, even if it alone exceeds
        // `max_batch` — a job is never split across batches.
        let mut batch = Vec::new();
        let mut frames = 0usize;
        while let Some(job) = state.jobs.front() {
            if !batch.is_empty() && frames + job.rows > max_batch {
                break;
            }
            frames += job.rows;
            let job = state.jobs.pop_front().expect("front was Some");
            state.frames -= job.rows;
            batch.push(job);
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;
    use std::sync::Arc;

    fn job(
        rows: usize,
    ) -> (
        ScoreJob,
        std::sync::mpsc::Receiver<Result<JobReply, JobError>>,
    ) {
        let (tx, rx) = sync_channel(1);
        (
            ScoreJob {
                features: vec![0.0; rows * 3],
                conds: vec![0.0; rows * 2],
                rows,
                evidence: None,
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn rejects_when_frames_exceed_capacity() {
        let q = BatchQueue::new(8);
        let (j, _rx) = job(5);
        q.submit(j).unwrap();
        assert_eq!(q.depth_frames(), 5);
        let (j, _rx2) = job(4);
        assert_eq!(
            q.submit(j),
            Err(SubmitError::QueueFull {
                depth: 5,
                capacity: 8
            })
        );
        let (j, _rx3) = job(3);
        q.submit(j).unwrap();
        assert_eq!(q.depth_frames(), 8);
    }

    #[test]
    fn oversized_job_is_too_large_even_when_empty() {
        let q = BatchQueue::new(8);
        let (j, _rx) = job(9);
        assert_eq!(
            q.submit(j),
            Err(SubmitError::TooLarge {
                rows: 9,
                capacity: 8
            })
        );
    }

    #[test]
    fn drain_respects_max_batch_and_keeps_jobs_whole() {
        let q = BatchQueue::new(100);
        let mut rxs = Vec::new();
        for rows in [4, 4, 4] {
            let (j, rx) = job(rows);
            q.submit(j).unwrap();
            rxs.push(rx);
        }
        let batch = q.drain(8, Duration::ZERO).unwrap();
        assert_eq!(batch.iter().map(|j| j.rows).sum::<usize>(), 8);
        assert_eq!(q.depth_frames(), 4);
        let batch = q.drain(8, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn first_job_ships_even_when_larger_than_max_batch() {
        let q = BatchQueue::new(100);
        let (j, _rx) = job(50);
        q.submit(j).unwrap();
        let batch = q.drain(8, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].rows, 50);
    }

    #[test]
    fn close_drains_backlog_then_returns_none() {
        let q = Arc::new(BatchQueue::new(100));
        let (j, _rx) = job(2);
        q.submit(j).unwrap();
        q.close();
        let (j2, _rx2) = job(1);
        assert_eq!(q.submit(j2), Err(SubmitError::Closed));
        assert!(q.drain(8, Duration::from_millis(50)).is_some());
        assert!(q.drain(8, Duration::from_millis(50)).is_none());
    }

    #[test]
    fn linger_collects_a_late_job() {
        let q = Arc::new(BatchQueue::new(100));
        let (j, _rx) = job(2);
        q.submit(j).unwrap();
        let q2 = Arc::clone(&q);
        let late = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let (j, rx) = job(3);
            q2.submit(j).unwrap();
            rx
        });
        let batch = q.drain(64, Duration::from_millis(500)).unwrap();
        let _rx2 = late.join().unwrap();
        assert_eq!(batch.iter().map(|j| j.rows).sum::<usize>(), 5);
    }

    #[test]
    fn close_and_fail_pending_answers_every_queued_job() {
        let q = BatchQueue::new(100);
        let (j1, rx1) = job(2);
        let (j2, rx2) = job(3);
        q.submit(j1).unwrap();
        q.submit(j2).unwrap();
        assert_eq!(q.close_and_fail_pending(), 2);
        assert_eq!(rx1.recv().unwrap(), Err(JobError::ScorerLost));
        assert_eq!(rx2.recv().unwrap(), Err(JobError::ScorerLost));
        assert_eq!(q.depth_frames(), 0);
        let (j3, _rx3) = job(1);
        assert_eq!(q.submit(j3), Err(SubmitError::Closed));
    }

    #[test]
    fn job_error_statuses_separate_client_from_server_faults() {
        assert_eq!(
            JobError::Reshaped {
                frame_width: 6,
                cond_width: 3
            }
            .status(),
            409
        );
        assert_eq!(
            JobError::NonFinite {
                row: 0,
                kind: "feature"
            }
            .status(),
            422
        );
        assert_eq!(JobError::EvidenceUnavailable("x".into()).status(), 409);
        assert_eq!(JobError::ScoringFailed("x".into()).status(), 503);
        assert_eq!(JobError::ScorerLost.status(), 503);
    }

    #[test]
    fn close_wakes_a_blocked_drain() {
        let q = Arc::new(BatchQueue::new(100));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.drain(8, Duration::from_secs(60)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(waiter.join().unwrap().is_none());
    }
}
