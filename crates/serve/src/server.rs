//! The server proper: acceptor, connection workers, routing, the scorer
//! thread, hot reload, and graceful shutdown.
//!
//! Thread topology (all plain `std::thread` blocking loops):
//!
//! * **acceptor** — accepts sockets, enforces the connection cap, sets
//!   per-connection timeouts, and hands streams to the workers over a
//!   bounded channel. Woken for shutdown by a dummy self-connection.
//! * **workers** — parse one request per connection, route it, and
//!   reply. Scoring requests park on a reply channel while their frames
//!   ride the batch queue.
//! * **batcher** — drains the queue into micro-batches and runs the
//!   engine's block-parallel scorer once per batch.
//!
//! Teardown order is the graceful-drain contract: join the acceptor
//! (no new connections), drop the stream channel (workers finish their
//! in-flight requests and exit), close the batch queue (the batcher
//! flushes every queued job), then join the batcher.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gansec::ModelBundle;
use gansec_engine::ScoringEngine;
use gansec_tensor::Matrix;

use crate::api::{
    ClassifyRequest, ClassifyResponse, DetectResponse, HealthResponse, ReloadRequest,
    ReloadResponse, ScoreRequest, ScoreResponse,
};
use crate::batch::{BatchQueue, ScoreJob, SubmitError};
use crate::http::{self, ReadError, Request};
use crate::metrics::Metrics;
use crate::ServeConfig;

/// State shared by every server thread.
struct Shared {
    config: ServeConfig,
    /// The bound listen address (resolved, so port 0 shows the real
    /// port); the shutdown wake-up connects here.
    listen_addr: SocketAddr,
    /// The serving engine; swapped whole by `/admin/reload`, read once
    /// per request/batch so in-flight work keeps its snapshot.
    engine: RwLock<Arc<ScoringEngine>>,
    /// Where the serving bundle came from (reload may repoint it).
    bundle_path: Mutex<String>,
    metrics: Metrics,
    queue: BatchQueue,
    active_conns: AtomicUsize,
    shutting_down: AtomicBool,
}

impl Shared {
    /// The current engine snapshot.
    fn engine(&self) -> Arc<ScoringEngine> {
        Arc::clone(&self.engine.read().expect("engine lock poisoned"))
    }

    /// Flags shutdown (idempotent) and wakes the blocked acceptor with a
    /// throwaway self-connection.
    fn trigger_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        drop(TcpStream::connect(self.listen_addr));
    }
}

/// A running online-detection server. Dropping the struct does not stop
/// the threads; call [`Server::shutdown`] (or serve a
/// `POST /admin/shutdown` and then [`Server::join`]).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

/// A cloneable remote control for a running [`Server`] — safe to hand
/// to supervisor threads while the owner blocks in [`Server::join`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address (resolved, so port 0 shows the real port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.listen_addr
    }

    /// Starts a graceful shutdown without waiting for it to finish.
    pub fn trigger_shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Batches the scorer has dispatched so far.
    pub fn batches(&self) -> u64 {
        self.shared.metrics.batches()
    }

    /// Frames scored so far.
    pub fn frames_scored(&self) -> u64 {
        self.shared.metrics.frames_scored()
    }
}

impl Server {
    /// Binds `config.addr` and spawns the acceptor, worker, and scorer
    /// threads around `engine`. `bundle_path` is advertised by
    /// `/healthz` and is the default target of `/admin/reload`.
    ///
    /// # Errors
    ///
    /// Returns a message when the address cannot be bound.
    pub fn start(
        config: ServeConfig,
        engine: ScoringEngine,
        bundle_path: impl Into<String>,
    ) -> Result<Self, String> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("cannot resolve bound address: {e}"))?;

        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: BatchQueue::new(config.queue_frames),
            config,
            listen_addr: addr,
            engine: RwLock::new(Arc::new(engine)),
            bundle_path: Mutex::new(bundle_path.into()),
            metrics: Metrics::new(),
            active_conns: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
        });

        let (conn_tx, conn_rx) = sync_channel::<TcpStream>(shared.config.max_conns.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gansec-serve-accept".into())
                .spawn(move || accept_loop(&shared, &listener, &conn_tx))
                .map_err(|e| format!("cannot spawn acceptor: {e}"))?
        };
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let conn_rx = Arc::clone(&conn_rx);
                std::thread::Builder::new()
                    .name(format!("gansec-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &conn_rx))
                    .map_err(|e| format!("cannot spawn worker: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gansec-serve-batcher".into())
                .spawn(move || batcher_loop(&shared))
                .map_err(|e| format!("cannot spawn batcher: {e}"))?
        };

        Ok(Self {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers: worker_handles,
            batcher: Some(batcher),
        })
    }

    /// The bound address (resolved, so port 0 shows the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable remote control for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Blocks until the server shuts down (via `POST /admin/shutdown`
    /// or [`ServerHandle::trigger_shutdown`]), then drains and joins
    /// every thread in teardown order.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            drop(acceptor.join());
        }
        for worker in self.workers.drain(..) {
            drop(worker.join());
        }
        self.shared.queue.close();
        if let Some(batcher) = self.batcher.take() {
            drop(batcher.join());
        }
    }

    /// Triggers a graceful shutdown and waits for the drain to finish.
    pub fn shutdown(self) {
        self.shared.trigger_shutdown();
        self.join();
    }
}

/// Accepts connections until shutdown: enforces the connection cap,
/// stamps per-connection timeouts, and hands streams to the workers.
/// Dropping `conn_tx` on exit is what releases the workers.
fn accept_loop(shared: &Shared, listener: &TcpListener, conn_tx: &SyncSender<TcpStream>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        set_timeouts(&stream, &shared.config);
        if shared.active_conns.load(Ordering::SeqCst) >= shared.config.max_conns.max(1) {
            shared.metrics.observe_over_capacity();
            http::write_error(
                &mut stream,
                503,
                "connection capacity reached",
                &[("Retry-After", "1".to_string())],
            );
            continue;
        }
        shared.active_conns.fetch_add(1, Ordering::SeqCst);
        if conn_tx.send(stream).is_err() {
            break;
        }
    }
}

fn set_timeouts(stream: &TcpStream, config: &ServeConfig) {
    let to = |ms: u64| (ms > 0).then(|| Duration::from_millis(ms));
    drop(stream.set_read_timeout(to(config.read_timeout_ms)));
    drop(stream.set_write_timeout(to(config.write_timeout_ms)));
}

/// Services connections off the shared channel until the acceptor drops
/// its sender; each already-queued connection still gets a full reply,
/// which is half of the graceful-drain guarantee.
fn worker_loop(shared: &Shared, conn_rx: &Arc<Mutex<Receiver<TcpStream>>>) {
    loop {
        let stream = conn_rx.lock().expect("connection channel poisoned").recv();
        let Ok(mut stream) = stream else { break };
        handle_connection(shared, &mut stream);
        shared.active_conns.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(shared: &Shared, stream: &mut TcpStream) {
    let started = Instant::now();
    let request = match http::read_request(stream, shared.config.max_body_bytes) {
        Ok(request) => request,
        Err(ReadError::Disconnected) => return,
        Err(ReadError::BadRequest(msg)) => {
            http::write_error(stream, 400, &msg, &[]);
            shared
                .metrics
                .observe_request("(malformed)", 400, started.elapsed());
            return;
        }
        Err(ReadError::LengthRequired) => {
            http::write_error(stream, 411, "Content-Length required", &[]);
            shared
                .metrics
                .observe_request("(malformed)", 411, started.elapsed());
            return;
        }
        Err(ReadError::PayloadTooLarge { declared, cap }) => {
            http::write_error(
                stream,
                413,
                &format!("declared body of {declared} bytes exceeds the {cap}-byte cap"),
                &[],
            );
            shared
                .metrics
                .observe_request("(malformed)", 413, started.elapsed());
            return;
        }
    };
    route(shared, stream, &request, started);
}

/// `(label, allowed method)` for every published route; the label
/// doubles as the metrics route tag.
const ROUTES: &[(&str, &str)] = &[
    ("/healthz", "GET"),
    ("/metrics", "GET"),
    ("/v1/score", "POST"),
    ("/v1/detect", "POST"),
    ("/v1/classify", "POST"),
    ("/admin/reload", "POST"),
    ("/admin/shutdown", "POST"),
];

/// The route table. Every known path gets a static metrics label; a
/// known path with the wrong method is `405`, everything else `404`.
fn route(shared: &Shared, stream: &mut TcpStream, request: &Request, started: Instant) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => handle_health(shared, stream, started),
        ("GET", "/metrics") => handle_metrics(shared, stream, started),
        ("POST", "/v1/score") => handle_score(shared, stream, request, started),
        ("POST", "/v1/detect") => handle_detect(shared, stream, request, started),
        ("POST", "/v1/classify") => handle_classify(shared, stream, request, started),
        ("POST", "/admin/reload") => handle_reload(shared, stream, request, started),
        ("POST", "/admin/shutdown") => handle_shutdown(shared, stream, started),
        (_, path) => match ROUTES.iter().find(|(label, _)| *label == path) {
            Some(&(label, allowed)) => {
                http::write_error(
                    stream,
                    405,
                    &format!("use {allowed}"),
                    &[("Allow", allowed.to_string())],
                );
                shared
                    .metrics
                    .observe_request(label, 405, started.elapsed());
            }
            None => {
                http::write_error(stream, 404, &format!("no route {path}"), &[]);
                shared
                    .metrics
                    .observe_request("(unknown)", 404, started.elapsed());
            }
        },
    }
}

/// Serializes `body` and writes a JSON `200`; serialization failure
/// degrades to a `500`.
fn reply_json<T: serde::Serialize>(
    shared: &Shared,
    stream: &mut TcpStream,
    route: &'static str,
    body: &T,
    started: Instant,
) {
    match serde_json::to_string(body) {
        Ok(json) => {
            http::write_response(stream, 200, "application/json", json.as_bytes(), &[]);
            shared
                .metrics
                .observe_request(route, 200, started.elapsed());
        }
        Err(e) => reply_error(
            shared,
            stream,
            route,
            500,
            &format!("serialization failed: {e}"),
            started,
        ),
    }
}

fn reply_error(
    shared: &Shared,
    stream: &mut TcpStream,
    route: &'static str,
    status: u16,
    message: &str,
    started: Instant,
) {
    if status == 503 {
        // Backpressure replies tell well-behaved clients when to retry.
        http::write_error(stream, status, message, &[("Retry-After", "1".to_string())]);
    } else {
        http::write_error(stream, status, message, &[]);
    }
    shared
        .metrics
        .observe_request(route, status, started.elapsed());
}

fn handle_health(shared: &Shared, stream: &mut TcpStream, started: Instant) {
    let engine = shared.engine();
    let body = HealthResponse {
        status: "ok".to_string(),
        bundle: shared
            .bundle_path
            .lock()
            .expect("bundle path poisoned")
            .clone(),
        schema_version: engine.schema_version(),
        seed: engine.seed(),
        config_fingerprint: format!("{:016x}", engine.config_fingerprint()),
        threshold: engine.threshold(),
    };
    reply_json(shared, stream, "/healthz", &body, started);
}

fn handle_metrics(shared: &Shared, stream: &mut TcpStream, started: Instant) {
    let text = shared.metrics.render(
        shared.queue.depth_frames(),
        shared.active_conns.load(Ordering::SeqCst),
    );
    http::write_response(
        stream,
        200,
        "text/plain; version=0.0.4",
        text.as_bytes(),
        &[],
    );
    shared
        .metrics
        .observe_request("/metrics", 200, started.elapsed());
}

/// Parses and shape-checks a score/detect body against the current
/// engine, returning flattened rows ready for the batch queue.
fn parse_scoring_body(
    body: &[u8],
    engine: &ScoringEngine,
) -> Result<(Vec<f64>, Vec<f64>, usize), (u16, String)> {
    let req: ScoreRequest =
        serde_json::from_slice(body).map_err(|e| (400, format!("invalid JSON body: {e}")))?;
    let frame_width = engine.config().n_bins;
    let cond_width = engine.config().encoding.dim();
    if req.frames.len() != req.conds.len() {
        return Err((
            422,
            format!(
                "{} frames but {} claimed conditions",
                req.frames.len(),
                req.conds.len()
            ),
        ));
    }
    let rows = req.frames.len();
    let mut features = Vec::with_capacity(rows * frame_width);
    let mut conds = Vec::with_capacity(rows * cond_width);
    for (i, frame) in req.frames.iter().enumerate() {
        if frame.len() != frame_width {
            return Err((
                422,
                format!(
                    "frame {i} is {} wide; the serving bundle frames are {frame_width} bins",
                    frame.len()
                ),
            ));
        }
        features.extend_from_slice(frame);
    }
    for (i, cond) in req.conds.iter().enumerate() {
        if cond.len() != cond_width {
            return Err((
                422,
                format!(
                    "condition {i} is {} wide; the serving encoding is {cond_width} wide",
                    cond.len()
                ),
            ));
        }
        conds.extend_from_slice(cond);
    }
    Ok((features, conds, rows))
}

/// Submits flattened rows to the batch queue and blocks for the scores.
fn score_via_queue(
    shared: &Shared,
    features: Vec<f64>,
    conds: Vec<f64>,
    rows: usize,
) -> Result<Vec<f64>, (u16, String)> {
    let (reply_tx, reply_rx) = sync_channel(1);
    let job = ScoreJob {
        features,
        conds,
        rows,
        reply: reply_tx,
    };
    match shared.queue.submit(job) {
        Ok(()) => {}
        Err(SubmitError::QueueFull { depth, capacity }) => {
            shared.metrics.observe_queue_full();
            return Err((
                503,
                format!("scoring queue full ({depth} of {capacity} frames); retry shortly"),
            ));
        }
        Err(SubmitError::TooLarge { rows, capacity }) => {
            return Err((
                422,
                format!(
                    "request holds {rows} frames but the queue admits at most {capacity}; \
                     split the request"
                ),
            ));
        }
        Err(SubmitError::Closed) => {
            return Err((503, "server is shutting down".to_string()));
        }
    }
    match reply_rx.recv() {
        Ok(Ok(scores)) => Ok(scores),
        Ok(Err(msg)) => Err((409, msg)),
        Err(_) => Err((500, "scorer thread went away".to_string())),
    }
}

fn handle_score(shared: &Shared, stream: &mut TcpStream, request: &Request, started: Instant) {
    let engine = shared.engine();
    let (features, conds, rows) = match parse_scoring_body(&request.body, &engine) {
        Ok(parsed) => parsed,
        Err((status, msg)) => {
            return reply_error(shared, stream, "/v1/score", status, &msg, started)
        }
    };
    if rows == 0 {
        return reply_json(
            shared,
            stream,
            "/v1/score",
            &ScoreResponse { scores: vec![] },
            started,
        );
    }
    match score_via_queue(shared, features, conds, rows) {
        Ok(scores) => reply_json(
            shared,
            stream,
            "/v1/score",
            &ScoreResponse { scores },
            started,
        ),
        Err((status, msg)) => reply_error(shared, stream, "/v1/score", status, &msg, started),
    }
}

fn handle_detect(shared: &Shared, stream: &mut TcpStream, request: &Request, started: Instant) {
    let engine = shared.engine();
    let (features, conds, rows) = match parse_scoring_body(&request.body, &engine) {
        Ok(parsed) => parsed,
        Err((status, msg)) => {
            return reply_error(shared, stream, "/v1/detect", status, &msg, started)
        }
    };
    if rows == 0 {
        let body = DetectResponse {
            threshold: engine.threshold(),
            flagged: 0,
            scores: vec![],
            verdicts: vec![],
        };
        return reply_json(shared, stream, "/v1/detect", &body, started);
    }
    match score_via_queue(shared, features, conds, rows) {
        Ok(scores) => {
            // Verdicts come from the engine snapshot taken at request
            // time, matching what the batch was scored against.
            let verdicts: Vec<bool> = scores.iter().map(|&s| engine.is_attack(s)).collect();
            let body = DetectResponse {
                threshold: engine.threshold(),
                flagged: verdicts.iter().filter(|&&v| v).count(),
                scores,
                verdicts,
            };
            reply_json(shared, stream, "/v1/detect", &body, started);
        }
        Err((status, msg)) => reply_error(shared, stream, "/v1/detect", status, &msg, started),
    }
}

fn handle_classify(shared: &Shared, stream: &mut TcpStream, request: &Request, started: Instant) {
    let req: ClassifyRequest = match serde_json::from_slice(&request.body) {
        Ok(req) => req,
        Err(e) => {
            return reply_error(
                shared,
                stream,
                "/v1/classify",
                400,
                &format!("invalid JSON body: {e}"),
                started,
            )
        }
    };
    let engine = shared.engine();
    let frame_width = engine.config().n_bins;
    for (i, frame) in req.frames.iter().enumerate() {
        if frame.len() != frame_width {
            return reply_error(
                shared,
                stream,
                "/v1/classify",
                422,
                &format!(
                    "frame {i} is {} wide; the serving bundle frames are {frame_width} bins",
                    frame.len()
                ),
                started,
            );
        }
    }
    let rows = req.frames.len();
    let flat: Vec<f64> = req.frames.into_iter().flatten().collect();
    let Ok(features) = Matrix::from_vec(rows, frame_width, flat) else {
        return reply_error(
            shared,
            stream,
            "/v1/classify",
            500,
            "shape assembly failed",
            started,
        );
    };
    let detail = engine.classify_frames_detailed(&features);
    let body = ClassifyResponse {
        conditions: detail.conditions,
        log_likelihoods: detail.log_likelihoods,
    };
    reply_json(shared, stream, "/v1/classify", &body, started);
}

/// Loads, lints, and strictly validates a bundle for hot reload. Both
/// gates must pass before the engine swap — a tampered or incompatible
/// artifact never replaces a healthy one.
fn load_reload_bundle(path: &str) -> Result<ModelBundle, String> {
    let bundle = ModelBundle::load_unchecked(path).map_err(|e| format!("{path}: {e}"))?;
    let report =
        gansec_lint::check(&gansec_lint::CheckInput::new().with_bundle(bundle.lint_spec(None)));
    if !report.is_clean() {
        let first = report
            .diagnostics()
            .iter()
            .find(|d| d.severity == gansec_lint::Severity::Error)
            .map_or_else(|| "unknown defect".to_string(), ToString::to_string);
        return Err(format!("{path}: rejected by lint: {first}"));
    }
    bundle.validate().map_err(|e| format!("{path}: {e}"))?;
    Ok(bundle)
}

fn handle_reload(shared: &Shared, stream: &mut TcpStream, request: &Request, started: Instant) {
    let req: ReloadRequest = if request.body.is_empty() {
        ReloadRequest::default()
    } else {
        match serde_json::from_slice(&request.body) {
            Ok(req) => req,
            Err(e) => {
                return reply_error(
                    shared,
                    stream,
                    "/admin/reload",
                    400,
                    &format!("invalid JSON body: {e}"),
                    started,
                )
            }
        }
    };
    let path = req.bundle.unwrap_or_else(|| {
        shared
            .bundle_path
            .lock()
            .expect("bundle path poisoned")
            .clone()
    });
    match load_reload_bundle(&path) {
        Ok(bundle) => {
            let body = ReloadResponse {
                bundle: path.clone(),
                schema_version: bundle.schema_version,
                seed: bundle.seed,
                config_fingerprint: format!("{:016x}", bundle.config_fingerprint),
            };
            let engine = Arc::new(ScoringEngine::from_bundle(bundle));
            *shared.engine.write().expect("engine lock poisoned") = engine;
            *shared.bundle_path.lock().expect("bundle path poisoned") = path;
            shared.metrics.observe_reload();
            reply_json(shared, stream, "/admin/reload", &body, started);
        }
        Err(msg) => reply_error(shared, stream, "/admin/reload", 422, &msg, started),
    }
}

fn handle_shutdown(shared: &Shared, stream: &mut TcpStream, started: Instant) {
    // Reply first: once the drain starts this connection still deserves
    // its acknowledgment.
    http::write_response(
        stream,
        200,
        "application/json",
        b"{\"status\":\"shutting down\"}",
        &[],
    );
    shared
        .metrics
        .observe_request("/admin/shutdown", 200, started.elapsed());
    shared.trigger_shutdown();
}

/// The scorer thread: drain → validate against the current engine →
/// one block-parallel `score_frames` call → scatter replies.
fn batcher_loop(shared: &Shared) {
    let linger = Duration::from_millis(shared.config.batch_linger_ms);
    let max_batch = shared.config.max_batch.max(1);
    while let Some(batch) = shared.queue.drain(max_batch, linger) {
        if batch.is_empty() {
            continue;
        }
        let engine = shared.engine();
        let frame_width = engine.config().n_bins;
        let cond_width = engine.config().encoding.dim();

        // A reload between submit and drain can change the expected
        // widths; such jobs are rejected instead of panicking mid-batch.
        let mut jobs = Vec::with_capacity(batch.len());
        let mut rows = 0usize;
        for job in batch {
            if job.features.len() == job.rows * frame_width
                && job.conds.len() == job.rows * cond_width
            {
                rows += job.rows;
                jobs.push(job);
            } else {
                drop(job.reply.try_send(Err(
                    "bundle reloaded with different dimensions; re-shape the request".to_string(),
                )));
            }
        }
        if jobs.is_empty() {
            continue;
        }

        let mut features = Vec::with_capacity(rows * frame_width);
        let mut conds = Vec::with_capacity(rows * cond_width);
        for job in &jobs {
            features.extend_from_slice(&job.features);
            conds.extend_from_slice(&job.conds);
        }
        let (Ok(feature_matrix), Ok(cond_matrix)) = (
            Matrix::from_vec(rows, frame_width, features),
            Matrix::from_vec(rows, cond_width, conds),
        ) else {
            for job in jobs {
                drop(
                    job.reply
                        .try_send(Err("batch shape assembly failed".to_string())),
                );
            }
            continue;
        };
        let scores = engine.score_frames(&feature_matrix, &cond_matrix);
        shared.metrics.observe_batch(rows, jobs.len());
        let mut offset = 0usize;
        for job in jobs {
            let slice = scores[offset..offset + job.rows].to_vec();
            offset += job.rows;
            drop(job.reply.try_send(Ok(slice)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use gansec::{GanSecPipeline, PipelineConfig};

    fn json_roundtrip_available() -> bool {
        serde_json::from_str::<serde_json::Value>("null").is_ok()
    }

    fn smoke_engine() -> ScoringEngine {
        let pipeline = GanSecPipeline::new(PipelineConfig::smoke_test());
        let stage = pipeline.train_stage(3).expect("smoke training");
        ScoringEngine::from_bundle(stage.to_bundle())
    }

    fn test_server() -> Server {
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServeConfig::default()
        };
        Server::start(config, smoke_engine(), "test-bundle.json").expect("server starts")
    }

    #[test]
    fn routes_and_drains_gracefully() {
        let server = test_server();
        let addr = server.addr();

        let missing = client::get(addr, "/nope").expect("roundtrip");
        assert_eq!(missing.status, 404);
        let wrong_method = client::get(addr, "/v1/score").expect("roundtrip");
        assert_eq!(wrong_method.status, 405);
        let metrics = client::get(addr, "/metrics").expect("roundtrip");
        assert_eq!(metrics.status, 200);
        let text = String::from_utf8(metrics.body).expect("utf8");
        assert!(text.contains("gansec_serve_requests_total"));

        let handle = server.handle();
        handle.trigger_shutdown();
        server.join();
    }

    #[test]
    fn scores_via_http_match_the_engine() {
        if !json_roundtrip_available() {
            return;
        }
        let engine = smoke_engine();
        let pipeline = GanSecPipeline::new(engine.config().clone());
        let (_, test) = pipeline.datasets(engine.seed()).expect("datasets");
        let server = test_server();
        let addr = server.addr();

        let n = test.len().min(6);
        let frames: Vec<Vec<f64>> = (0..n).map(|i| test.features().row(i).to_vec()).collect();
        let conds: Vec<Vec<f64>> = (0..n).map(|i| test.conds().row(i).to_vec()).collect();
        let body = serde_json::to_vec(&ScoreRequest {
            frames: frames.clone(),
            conds: conds.clone(),
        })
        .expect("serialize");
        let reply = client::post(addr, "/v1/score", &body).expect("roundtrip");
        assert_eq!(
            reply.status,
            200,
            "{}",
            String::from_utf8_lossy(&reply.body)
        );
        let scored: ScoreResponse = serde_json::from_slice(&reply.body).expect("parse");
        assert_eq!(scored.scores.len(), n);
        for i in 0..n {
            assert_eq!(
                scored.scores[i].to_bits(),
                engine.score_frame(&frames[i], &conds[i]).to_bits(),
                "frame {i}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn shape_mismatches_are_422() {
        if !json_roundtrip_available() {
            return;
        }
        let server = test_server();
        let addr = server.addr();
        let body = serde_json::to_vec(&ScoreRequest {
            frames: vec![vec![0.0; 2]],
            conds: vec![vec![0.0; 2]],
        })
        .expect("serialize");
        let reply = client::post(addr, "/v1/score", &body).expect("roundtrip");
        assert_eq!(reply.status, 422);
        server.shutdown();
    }

    #[test]
    fn shutdown_endpoint_stops_the_server() {
        let server = test_server();
        let addr = server.addr();
        let ack = client::post(addr, "/admin/shutdown", b"").expect("roundtrip");
        assert_eq!(ack.status, 200);
        // join returns because the endpoint triggered the drain.
        server.join();
        assert!(client::get(addr, "/healthz").is_err());
    }
}
