//! The server proper: acceptor, connection workers, routing, the
//! supervised scorer thread, hot reload, and graceful shutdown.
//!
//! Thread topology (all plain `std::thread` blocking loops):
//!
//! * **acceptor** — accepts sockets, enforces the connection cap, sets
//!   per-connection timeouts, and hands streams to the workers over a
//!   bounded channel. Woken for shutdown by a dummy self-connection.
//! * **workers** — parse one request per connection, route it, and
//!   reply. Scoring requests park on a reply channel while their frames
//!   ride the batch queue. A panic while handling a connection is
//!   contained to that connection.
//! * **supervisor** — owns the scorer: spawns it, polls its liveness
//!   every [`ServeConfig::heartbeat_ms`], and replaces a panicked (or
//!   stalled) incarnation with exponential backoff after re-validating
//!   the serving engine, so post-recovery scores stay bit-identical.
//! * **batcher** (the supervised scorer) — drains the queue into
//!   micro-batches, quarantines non-finite jobs, and runs the engine's
//!   checked block-parallel scorer once per batch; batch verdicts feed
//!   the circuit breaker.
//!
//! Teardown order is the graceful-drain contract: join the acceptor
//! (no new connections), drop the stream channel (workers finish their
//! in-flight requests and exit), close the batch queue (the batcher
//! flushes every queued job), then join the supervisor (which joins its
//! scorer).

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gansec::{GanSecPipeline, ModelBundle};
use gansec_engine::ScoringEngine;
use gansec_stream::{Baseline, DriftReport, SessionManager, StreamError};
use gansec_tensor::Matrix;

#[cfg(feature = "chaos")]
use gansec_chaos::{BatchFault, ChaosState, ReloadFault, StreamFault};

use crate::api::{
    ClassifyRequest, ClassifyResponse, DetectRequest, DetectResponse, EvidenceBreakdown,
    EvidenceRequest, HealthResponse, ReloadRequest, ReloadResponse, ScoreRequest, ScoreResponse,
    StreamCloseResponse, StreamDriftStatus, StreamIngestRequest, StreamIngestResponse,
    StreamStatsResponse,
};
use crate::batch::{
    BatchQueue, EvidenceDetail, EvidenceSelection, JobError, JobReply, ScoreJob, SubmitError,
};
use crate::breaker::{Admission, Breaker, BreakerSnapshot};
use crate::http::{self, ReadError, Request};
use crate::metrics::{Metrics, StreamGauges};
use crate::ServeConfig;

/// Ceiling on the exponential restart backoff.
const MAX_BACKOFF_MS: u64 = 5_000;

/// State shared by every server thread.
struct Shared {
    config: ServeConfig,
    /// The bound listen address (resolved, so port 0 shows the real
    /// port); the shutdown wake-up connects here.
    listen_addr: SocketAddr,
    /// The serving engine; swapped whole by `/admin/reload`, read once
    /// per request/batch so in-flight work keeps its snapshot.
    engine: RwLock<Arc<ScoringEngine>>,
    /// Where the serving bundle came from (reload may repoint it).
    bundle_path: Mutex<String>,
    metrics: Metrics,
    queue: BatchQueue,
    breaker: Breaker,
    active_conns: AtomicUsize,
    shutting_down: AtomicBool,
    /// Whether a live scorer incarnation is draining the queue; cleared
    /// by the supervisor between a death and its replacement (and
    /// forever once restarts are exhausted).
    scorer_alive: AtomicBool,
    /// Sticky quarantine flag: set when a non-finite job is quarantined,
    /// cleared when a batch scores with nothing quarantined — the
    /// "degraded" signal that poison has been seen recently.
    quarantined: AtomicBool,
    /// Milliseconds since `started` when the scorer picked up its
    /// current batch (`0` = idle); the supervisor's stall detector.
    busy_since_ms: AtomicU64,
    /// Monotonic reference for `busy_since_ms`.
    started: Instant,
    /// The streaming session manager, built lazily on the first stream
    /// request (its bundle-derived scale needs a dataset rebuild) and
    /// reset by a hot reload (sessions are bound to the engine that
    /// opened them).
    stream: Mutex<Option<Arc<SessionManager>>>,
    /// The fault-injection schedule, when one was requested at startup.
    #[cfg(feature = "chaos")]
    chaos: Option<Arc<ChaosState>>,
}

impl Shared {
    /// The current engine snapshot. Recovers from lock poisoning: the
    /// engine `Arc` is swapped atomically, so a panicked holder cannot
    /// leave it torn.
    fn engine(&self) -> Arc<ScoringEngine> {
        Arc::clone(&self.engine.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Flags shutdown (idempotent) and wakes the blocked acceptor with a
    /// throwaway self-connection.
    fn trigger_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        drop(TcpStream::connect(self.listen_addr));
    }

    /// Milliseconds since server start (monotonic).
    fn now_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// The scorer picked up a batch.
    fn mark_scorer_busy(&self) {
        // `max(1)` keeps an instant-zero pickup distinct from "idle".
        self.busy_since_ms
            .store(self.now_ms().max(1), Ordering::SeqCst);
    }

    /// The scorer finished (or abandoned) its batch.
    fn mark_scorer_idle(&self) {
        self.busy_since_ms.store(0, Ordering::SeqCst);
    }

    /// Whether the current batch has been in flight longer than the
    /// configured stall threshold.
    fn scorer_stalled(&self) -> bool {
        let stall = self.config.scorer_stall_ms;
        if stall == 0 {
            return false;
        }
        let busy = self.busy_since_ms.load(Ordering::SeqCst);
        busy != 0 && self.now_ms().saturating_sub(busy) > stall
    }

    /// The streaming session manager, building it on first use. The
    /// manager pins the engine snapshot current at build time: the
    /// bundle's frequency binning, its sealed KDE calibration as the
    /// drift baseline, and the training dataset's fitted min-max range
    /// (rebuilt from the sealed `(seed, config)`) so streamed rows match
    /// the offline `apply_scale` path bit-for-bit.
    fn stream_manager(&self) -> Arc<SessionManager> {
        let mut slot = self.stream.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(manager) = slot.as_ref() {
            return Arc::clone(manager);
        }
        let engine = self.engine();
        let baseline = engine.evidence_seal().map(|seal| Baseline {
            mean: seal.kde.mean,
            std: seal.kde.std,
            threshold: seal.kde.threshold,
        });
        let scale = GanSecPipeline::new(engine.config().clone())
            .datasets(engine.seed())
            .ok()
            .map(|(train, _)| train.scale());
        let manager = Arc::new(SessionManager::new(
            self.config.stream_config(engine.seed()),
            engine.config().bins(),
            baseline,
            scale,
        ));
        *slot = Some(Arc::clone(&manager));
        manager
    }

    /// The streaming manager if one has been built, without building.
    fn stream_manager_if_built(&self) -> Option<Arc<SessionManager>> {
        self.stream
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Point-in-time streaming gauges for `/metrics`; all zero before
    /// the first streaming request.
    fn stream_gauges(&self) -> StreamGauges {
        match self.stream_manager_if_built() {
            None => StreamGauges::default(),
            Some(manager) => {
                let (stable, drifting) = manager.drift_counts();
                StreamGauges {
                    sessions: manager.session_count(),
                    evictions: manager.evictions(),
                    stable,
                    drifting,
                }
            }
        }
    }

    /// The tri-state health label: `draining` while shutting down,
    /// `degraded` when the scorer is down, the breaker is not closed, or
    /// quarantine is active, else `ok`.
    fn health_state(&self) -> &'static str {
        if self.shutting_down.load(Ordering::SeqCst) {
            "draining"
        } else if !self.scorer_alive.load(Ordering::SeqCst)
            || self.breaker.snapshot() != BreakerSnapshot::Closed
            || self.quarantined.load(Ordering::SeqCst)
        {
            "degraded"
        } else {
            "ok"
        }
    }
}

/// A running online-detection server. Dropping the struct does not stop
/// the threads; call [`Server::shutdown`] (or serve a
/// `POST /admin/shutdown` and then [`Server::join`]).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

/// A cloneable remote control for a running [`Server`] — safe to hand
/// to supervisor threads while the owner blocks in [`Server::join`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address (resolved, so port 0 shows the real port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.listen_addr
    }

    /// Starts a graceful shutdown without waiting for it to finish.
    pub fn trigger_shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Batches the scorer has dispatched so far.
    pub fn batches(&self) -> u64 {
        self.shared.metrics.batches()
    }

    /// Frames scored so far.
    pub fn frames_scored(&self) -> u64 {
        self.shared.metrics.frames_scored()
    }

    /// Scorer incarnations the watchdog has replaced so far.
    pub fn scorer_restarts(&self) -> u64 {
        self.shared.metrics.scorer_restarts()
    }

    /// The current tri-state health label.
    pub fn health(&self) -> &'static str {
        self.shared.health_state()
    }
}

impl Server {
    /// Binds `config.addr` and spawns the acceptor, worker, and
    /// supervised scorer threads around `engine`. `bundle_path` is
    /// advertised by `/healthz` and is the default target of
    /// `/admin/reload`.
    ///
    /// # Errors
    ///
    /// Returns a message when the address cannot be bound.
    pub fn start(
        config: ServeConfig,
        engine: ScoringEngine,
        bundle_path: impl Into<String>,
    ) -> Result<Self, String> {
        Self::start_inner(
            config,
            engine,
            bundle_path,
            #[cfg(feature = "chaos")]
            None,
        )
    }

    /// Like [`Server::start`], but with a compiled fault-injection plan
    /// the scorer and reload paths consult. Chaos builds only.
    ///
    /// # Errors
    ///
    /// Returns a message when the address cannot be bound.
    #[cfg(feature = "chaos")]
    pub fn start_with_chaos(
        config: ServeConfig,
        engine: ScoringEngine,
        bundle_path: impl Into<String>,
        chaos: Arc<ChaosState>,
    ) -> Result<Self, String> {
        Self::start_inner(config, engine, bundle_path, Some(chaos))
    }

    fn start_inner(
        config: ServeConfig,
        engine: ScoringEngine,
        bundle_path: impl Into<String>,
        #[cfg(feature = "chaos")] chaos: Option<Arc<ChaosState>>,
    ) -> Result<Self, String> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("cannot resolve bound address: {e}"))?;

        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: BatchQueue::new(config.queue_frames),
            breaker: Breaker::new(
                config.breaker_threshold,
                Duration::from_millis(config.breaker_cooldown_ms),
            ),
            config,
            listen_addr: addr,
            engine: RwLock::new(Arc::new(engine)),
            bundle_path: Mutex::new(bundle_path.into()),
            metrics: Metrics::new(),
            active_conns: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            scorer_alive: AtomicBool::new(true),
            quarantined: AtomicBool::new(false),
            busy_since_ms: AtomicU64::new(0),
            started: Instant::now(),
            stream: Mutex::new(None),
            #[cfg(feature = "chaos")]
            chaos,
        });

        let (conn_tx, conn_rx) = sync_channel::<TcpStream>(shared.config.max_conns.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gansec-serve-accept".into())
                .spawn(move || accept_loop(&shared, &listener, &conn_tx))
                .map_err(|e| format!("cannot spawn acceptor: {e}"))?
        };
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let conn_rx = Arc::clone(&conn_rx);
                std::thread::Builder::new()
                    .name(format!("gansec-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &conn_rx))
                    .map_err(|e| format!("cannot spawn worker: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gansec-serve-watchdog".into())
                .spawn(move || supervisor_loop(&shared))
                .map_err(|e| format!("cannot spawn watchdog: {e}"))?
        };

        Ok(Self {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers: worker_handles,
            supervisor: Some(supervisor),
        })
    }

    /// The bound address (resolved, so port 0 shows the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable remote control for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Blocks until the server shuts down (via `POST /admin/shutdown`
    /// or [`ServerHandle::trigger_shutdown`]), then drains and joins
    /// every thread in teardown order.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            drop(acceptor.join());
        }
        for worker in self.workers.drain(..) {
            drop(worker.join());
        }
        self.shared.queue.close();
        if let Some(supervisor) = self.supervisor.take() {
            drop(supervisor.join());
        }
    }

    /// Triggers a graceful shutdown and waits for the drain to finish.
    pub fn shutdown(self) {
        self.shared.trigger_shutdown();
        self.join();
    }
}

/// Accepts connections until shutdown: enforces the connection cap,
/// stamps per-connection timeouts, and hands streams to the workers.
/// Dropping `conn_tx` on exit is what releases the workers.
fn accept_loop(shared: &Shared, listener: &TcpListener, conn_tx: &SyncSender<TcpStream>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        set_timeouts(&stream, &shared.config);
        if shared.active_conns.load(Ordering::SeqCst) >= shared.config.max_conns.max(1) {
            shared.metrics.observe_over_capacity();
            http::write_error(
                &mut stream,
                503,
                "connection capacity reached",
                &[("Retry-After", "1".to_string())],
            );
            continue;
        }
        shared.active_conns.fetch_add(1, Ordering::SeqCst);
        if conn_tx.send(stream).is_err() {
            break;
        }
    }
}

fn set_timeouts(stream: &TcpStream, config: &ServeConfig) {
    let to = |ms: u64| (ms > 0).then(|| Duration::from_millis(ms));
    drop(stream.set_read_timeout(to(config.read_timeout_ms)));
    drop(stream.set_write_timeout(to(config.write_timeout_ms)));
}

/// Services connections off the shared channel until the acceptor drops
/// its sender; each already-queued connection still gets a full reply,
/// which is half of the graceful-drain guarantee. A panic while
/// handling one connection is caught, counted, and contained — the
/// worker lives on to serve the next connection.
fn worker_loop(shared: &Shared, conn_rx: &Arc<Mutex<Receiver<TcpStream>>>) {
    loop {
        let stream = conn_rx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .recv();
        let Ok(mut stream) = stream else { break };
        let outcome =
            std::panic::catch_unwind(AssertUnwindSafe(|| handle_connection(shared, &mut stream)));
        if outcome.is_err() {
            shared.metrics.observe_worker_panic();
        }
        shared.active_conns.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(shared: &Shared, stream: &mut TcpStream) {
    let started = Instant::now();
    // The read timeout doubles as the *overall* request deadline, so a
    // slowloris client dripping one byte per poll cannot hold a worker
    // past it.
    let deadline = (shared.config.read_timeout_ms > 0)
        .then(|| started + Duration::from_millis(shared.config.read_timeout_ms));
    let request = match http::read_request(stream, shared.config.max_body_bytes, deadline) {
        Ok(request) => request,
        Err(ReadError::Disconnected) => return,
        Err(ReadError::BadRequest(msg)) => {
            http::write_error(stream, 400, &msg, &[]);
            shared
                .metrics
                .observe_request("(malformed)", 400, started.elapsed());
            return;
        }
        Err(ReadError::LengthRequired) => {
            http::write_error(stream, 411, "Content-Length required", &[]);
            shared
                .metrics
                .observe_request("(malformed)", 411, started.elapsed());
            return;
        }
        Err(ReadError::PayloadTooLarge { declared, cap }) => {
            http::write_error(
                stream,
                413,
                &format!("declared body of {declared} bytes exceeds the {cap}-byte cap"),
                &[],
            );
            shared
                .metrics
                .observe_request("(malformed)", 413, started.elapsed());
            return;
        }
    };
    route(shared, stream, &request, started);
}

/// `(label, allowed method)` for every published route; the label
/// doubles as the metrics route tag.
const ROUTES: &[(&str, &str)] = &[
    ("/healthz", "GET"),
    ("/metrics", "GET"),
    ("/v1/score", "POST"),
    ("/v1/detect", "POST"),
    ("/v1/classify", "POST"),
    ("/admin/reload", "POST"),
    ("/admin/shutdown", "POST"),
];

/// Splits a `/v1/stream/{id}/{action}` path into `(id, action)`. The id
/// must be non-empty and slash-free; anything else falls through to the
/// 404 arm.
fn stream_route(path: &str) -> Option<(&str, &str)> {
    let rest = path.strip_prefix("/v1/stream/")?;
    let (id, action) = rest.split_once('/')?;
    (!id.is_empty() && !action.contains('/')).then_some((id, action))
}

/// The route table. Every known path gets a static metrics label; a
/// known path with the wrong method is `405`, everything else `404`.
fn route(shared: &Shared, stream: &mut TcpStream, request: &Request, started: Instant) {
    if let Some((id, action)) = stream_route(&request.path) {
        return route_stream(shared, stream, request, started, id, action);
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => handle_health(shared, stream, started),
        ("GET", "/metrics") => handle_metrics(shared, stream, started),
        ("POST", "/v1/score") => handle_score(shared, stream, request, started),
        ("POST", "/v1/detect") => handle_detect(shared, stream, request, started),
        ("POST", "/v1/classify") => handle_classify(shared, stream, request, started),
        ("POST", "/admin/reload") => handle_reload(shared, stream, request, started),
        ("POST", "/admin/shutdown") => handle_shutdown(shared, stream, started),
        (_, path) => match ROUTES.iter().find(|(label, _)| *label == path) {
            Some(&(label, allowed)) => {
                http::write_error(
                    stream,
                    405,
                    &format!("use {allowed}"),
                    &[("Allow", allowed.to_string())],
                );
                shared
                    .metrics
                    .observe_request(label, 405, started.elapsed());
            }
            None => {
                http::write_error(stream, 404, &format!("no route {path}"), &[]);
                shared
                    .metrics
                    .observe_request("(unknown)", 404, started.elapsed());
            }
        },
    }
}

/// Dispatches one parsed `/v1/stream/{id}/{action}` request: method
/// check, then the session handlers. Labels are static per action so
/// metrics stay bounded regardless of session-id cardinality.
fn route_stream(
    shared: &Shared,
    stream: &mut TcpStream,
    request: &Request,
    started: Instant,
    id: &str,
    action: &str,
) {
    match (request.method.as_str(), action) {
        ("POST", "samples") => handle_stream_samples(shared, stream, request, started, id),
        ("POST", "close") => handle_stream_close(shared, stream, started, id),
        ("GET", "stats") => handle_stream_stats(shared, stream, started, id),
        (_, "samples" | "close") => {
            http::write_error(stream, 405, "use POST", &[("Allow", "POST".to_string())]);
            shared
                .metrics
                .observe_request(stream_label(action), 405, started.elapsed());
        }
        (_, "stats") => {
            http::write_error(stream, 405, "use GET", &[("Allow", "GET".to_string())]);
            shared
                .metrics
                .observe_request("/v1/stream/{id}/stats", 405, started.elapsed());
        }
        (_, other) => {
            http::write_error(stream, 404, &format!("no stream action {other}"), &[]);
            shared
                .metrics
                .observe_request("(unknown)", 404, started.elapsed());
        }
    }
}

/// The static metrics label of a stream action.
fn stream_label(action: &str) -> &'static str {
    match action {
        "samples" => "/v1/stream/{id}/samples",
        "close" => "/v1/stream/{id}/close",
        _ => "/v1/stream/{id}/stats",
    }
}

/// One request's terminal rejection: an HTTP status, a message, and an
/// optional `Retry-After` hint (always set on shed-load `503`s).
struct Rejection {
    status: u16,
    message: String,
    retry_after_secs: Option<u64>,
}

impl Rejection {
    fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
            // Plain backpressure 503s default to the 1-second hint the
            // pre-resilience server always sent.
            retry_after_secs: (status == 503).then_some(1),
        }
    }

    fn with_retry_after(mut self, secs: u64) -> Self {
        self.retry_after_secs = Some(secs);
        self
    }
}

/// Serializes `body` and writes a JSON `200`; serialization failure
/// degrades to a `500`.
fn reply_json<T: serde::Serialize>(
    shared: &Shared,
    stream: &mut TcpStream,
    route: &'static str,
    body: &T,
    started: Instant,
) {
    reply_json_status(shared, stream, route, 200, body, started);
}

/// Like [`reply_json`] but with an explicit status (health degrades to
/// `503` while draining so load balancers pull the instance).
fn reply_json_status<T: serde::Serialize>(
    shared: &Shared,
    stream: &mut TcpStream,
    route: &'static str,
    status: u16,
    body: &T,
    started: Instant,
) {
    match serde_json::to_string(body) {
        Ok(json) => {
            http::write_response(stream, status, "application/json", json.as_bytes(), &[]);
            shared
                .metrics
                .observe_request(route, status, started.elapsed());
        }
        Err(e) => reply_error(
            shared,
            stream,
            route,
            &Rejection::new(500, format!("serialization failed: {e}")),
            started,
        ),
    }
}

fn reply_error(
    shared: &Shared,
    stream: &mut TcpStream,
    route: &'static str,
    rejection: &Rejection,
    started: Instant,
) {
    match rejection.retry_after_secs {
        Some(secs) => http::write_error(
            stream,
            rejection.status,
            &rejection.message,
            &[("Retry-After", secs.to_string())],
        ),
        None => http::write_error(stream, rejection.status, &rejection.message, &[]),
    }
    shared
        .metrics
        .observe_request(route, rejection.status, started.elapsed());
}

fn handle_health(shared: &Shared, stream: &mut TcpStream, started: Instant) {
    let engine = shared.engine();
    let health = shared.health_state();
    let body = HealthResponse {
        status: health.to_string(),
        bundle: shared
            .bundle_path
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone(),
        schema_version: engine.schema_version(),
        seed: engine.seed(),
        config_fingerprint: format!("{:016x}", engine.config_fingerprint()),
        threshold: engine.threshold(),
        scorer_alive: shared.scorer_alive.load(Ordering::SeqCst),
        scorer_restarts: shared.metrics.scorer_restarts(),
        breaker: shared.breaker.snapshot().label().to_string(),
        quarantined_frames: shared.metrics.quarantined_frames(),
    };
    // Degraded still answers 200 — reads and diagnostics work, and
    // orchestrators should not restart-loop a server that is busy
    // supervising itself back to health. Draining answers 503 so load
    // balancers stop routing to it.
    let status = if health == "draining" { 503 } else { 200 };
    reply_json_status(shared, stream, "/healthz", status, &body, started);
}

fn handle_metrics(shared: &Shared, stream: &mut TcpStream, started: Instant) {
    let text = shared.metrics.render(
        shared.queue.depth_frames(),
        shared.active_conns.load(Ordering::SeqCst),
        shared.health_state(),
        shared.breaker.snapshot().label(),
        shared.stream_gauges(),
    );
    http::write_response(
        stream,
        200,
        "text/plain; version=0.0.4",
        text.as_bytes(),
        &[],
    );
    shared
        .metrics
        .observe_request("/metrics", 200, started.elapsed());
}

/// Parses and shape-checks a score body against the current engine,
/// returning flattened rows ready for the batch queue.
fn parse_scoring_body(
    body: &[u8],
    engine: &ScoringEngine,
) -> Result<(Vec<f64>, Vec<f64>, usize), Rejection> {
    let req: ScoreRequest = serde_json::from_slice(body)
        .map_err(|e| Rejection::new(400, format!("invalid JSON body: {e}")))?;
    flatten_rows(&req.frames, &req.conds, engine)
}

/// Shape-checks frame/condition rows against the current engine and
/// flattens them row-major for the batch queue.
fn flatten_rows(
    req_frames: &[Vec<f64>],
    req_conds: &[Vec<f64>],
    engine: &ScoringEngine,
) -> Result<(Vec<f64>, Vec<f64>, usize), Rejection> {
    let frame_width = engine.config().n_bins;
    let cond_width = engine.config().encoding.dim();
    if req_frames.len() != req_conds.len() {
        return Err(Rejection::new(
            422,
            format!(
                "{} frames but {} claimed conditions",
                req_frames.len(),
                req_conds.len()
            ),
        ));
    }
    let rows = req_frames.len();
    let mut features = Vec::with_capacity(rows * frame_width);
    let mut conds = Vec::with_capacity(rows * cond_width);
    for (i, frame) in req_frames.iter().enumerate() {
        if frame.len() != frame_width {
            return Err(Rejection::new(
                422,
                format!(
                    "frame {i} is {} wide; the serving bundle frames are {frame_width} bins",
                    frame.len()
                ),
            ));
        }
        features.extend_from_slice(frame);
    }
    for (i, cond) in req_conds.iter().enumerate() {
        if cond.len() != cond_width {
            return Err(Rejection::new(
                422,
                format!(
                    "condition {i} is {} wide; the serving encoding is {cond_width} wide",
                    cond.len()
                ),
            ));
        }
        conds.extend_from_slice(cond);
    }
    Ok((features, conds, rows))
}

/// Validates a request's evidence selection against the current engine
/// snapshot, returning the parsed selection plus the warnings the
/// validation build raised (e.g. a legacy v1 bundle degrading to
/// KDE-only). A bad kind name or weight vector is the client's fault
/// (`422`); channels the serving bundle never sealed are a state
/// conflict (`409`).
fn validate_evidence(
    request: Option<&EvidenceRequest>,
    engine: &ScoringEngine,
) -> Result<Option<(EvidenceSelection, Vec<String>)>, Rejection> {
    let Some(request) = request else {
        return Ok(None);
    };
    let mut kinds = Vec::with_capacity(request.kinds.len());
    for name in &request.kinds {
        kinds.push(
            name.parse::<gansec_engine::EvidenceKind>()
                .map_err(|e| Rejection::new(422, e.to_string()))?,
        );
    }
    match engine.build_evidence(&kinds, &request.weights) {
        Ok(build) => Ok(Some((
            EvidenceSelection {
                kinds,
                weights: request.weights.clone(),
            },
            build.warnings.iter().map(ToString::to_string).collect(),
        ))),
        Err(err) => {
            let status = match err {
                gansec_engine::EvidenceError::NotSealed(_) => 409,
                _ => 422,
            };
            Err(Rejection::new(status, err.to_string()))
        }
    }
}

/// Submits flattened rows to the batch queue and blocks for the scores,
/// honoring the circuit breaker at admission. A `Probe` admission is
/// settled either by the batch verdict inside the scorer or by
/// [`Breaker::abort_probe`] here when the request never reaches one.
fn score_via_queue(
    shared: &Shared,
    features: Vec<f64>,
    conds: Vec<f64>,
    rows: usize,
    evidence: Option<EvidenceSelection>,
) -> Result<JobReply, Rejection> {
    let admission = shared.breaker.admit();
    if let Admission::Rejected { retry_after_secs } = admission {
        shared.metrics.observe_breaker_rejection();
        return Err(Rejection::new(
            503,
            "circuit breaker is open: scoring is failing and load is shed while it recovers",
        )
        .with_retry_after(retry_after_secs));
    }
    let probe = admission == Admission::Probe;
    let abort_probe_if_needed = || {
        if probe {
            shared.breaker.abort_probe();
        }
    };

    let (reply_tx, reply_rx) = sync_channel(1);
    let job = ScoreJob {
        features,
        conds,
        rows,
        evidence,
        reply: reply_tx,
    };
    match shared.queue.submit(job) {
        Ok(()) => {}
        Err(SubmitError::QueueFull { depth, capacity }) => {
            abort_probe_if_needed();
            shared.metrics.observe_queue_full();
            return Err(Rejection::new(
                503,
                format!("scoring queue full ({depth} of {capacity} frames); retry shortly"),
            ));
        }
        Err(SubmitError::TooLarge { rows, capacity }) => {
            abort_probe_if_needed();
            return Err(Rejection::new(
                422,
                format!(
                    "request holds {rows} frames but the queue admits at most {capacity}; \
                     split the request"
                ),
            ));
        }
        Err(SubmitError::Closed) => {
            abort_probe_if_needed();
            return Err(Rejection::new(
                503,
                "scoring queue is closed (server draining or scorer retired)",
            ));
        }
    }
    match reply_rx.recv() {
        Ok(Ok(reply)) => Ok(reply),
        Ok(Err(err)) => {
            // Scoring-failure verdicts already settled the breaker in
            // the scorer; verdict-less rejections release the probe.
            if !matches!(err, JobError::ScoringFailed(_)) {
                abort_probe_if_needed();
            }
            Err(Rejection::new(err.status(), err.to_string()))
        }
        Err(_) => {
            // The scorer died holding this job; the supervisor is
            // already replacing it.
            abort_probe_if_needed();
            Err(Rejection::new(
                503,
                "scorer thread died mid-batch; a replacement is being supervised in",
            ))
        }
    }
}

fn handle_score(shared: &Shared, stream: &mut TcpStream, request: &Request, started: Instant) {
    let engine = shared.engine();
    let (features, conds, rows) = match parse_scoring_body(&request.body, &engine) {
        Ok(parsed) => parsed,
        Err(rejection) => return reply_error(shared, stream, "/v1/score", &rejection, started),
    };
    if rows == 0 {
        return reply_json(
            shared,
            stream,
            "/v1/score",
            &ScoreResponse { scores: vec![] },
            started,
        );
    }
    match score_via_queue(shared, features, conds, rows, None) {
        Ok(reply) => reply_json(
            shared,
            stream,
            "/v1/score",
            &ScoreResponse {
                scores: reply.scores,
            },
            started,
        ),
        Err(rejection) => reply_error(shared, stream, "/v1/score", &rejection, started),
    }
}

fn handle_detect(shared: &Shared, stream: &mut TcpStream, request: &Request, started: Instant) {
    let engine = shared.engine();
    let req: DetectRequest = match serde_json::from_slice(&request.body) {
        Ok(req) => req,
        Err(e) => {
            return reply_error(
                shared,
                stream,
                "/v1/detect",
                &Rejection::new(400, format!("invalid JSON body: {e}")),
                started,
            )
        }
    };
    // The evidence selection is validated against the request-time
    // engine snapshot for a clean early rejection; the scorer
    // re-validates at batch time in case a reload races the queue.
    let validated = match validate_evidence(req.evidence.as_ref(), &engine) {
        Ok(validated) => validated,
        Err(rejection) => return reply_error(shared, stream, "/v1/detect", &rejection, started),
    };
    let (features, conds, rows) = match flatten_rows(&req.frames, &req.conds, &engine) {
        Ok(parsed) => parsed,
        Err(rejection) => return reply_error(shared, stream, "/v1/detect", &rejection, started),
    };
    let (selection, warnings) = match validated {
        Some((selection, warnings)) => (Some(selection), warnings),
        None => (None, Vec::new()),
    };
    if rows == 0 {
        let body = match &selection {
            None => DetectResponse {
                threshold: engine.threshold(),
                flagged: 0,
                scores: vec![],
                verdicts: vec![],
                evidence: None,
            },
            Some(selection) => {
                // Already validated above, so this build cannot fail.
                match engine.build_evidence(&selection.kinds, &selection.weights) {
                    Ok(build) => DetectResponse {
                        threshold: build.stack.combined_threshold(),
                        flagged: 0,
                        scores: vec![],
                        verdicts: vec![],
                        evidence: Some(EvidenceBreakdown {
                            kinds: build
                                .stack
                                .kinds()
                                .iter()
                                .map(ToString::to_string)
                                .collect(),
                            weights: build.stack.weights().to_vec(),
                            thresholds: build.stack.thresholds(),
                            per_evidence: vec![Vec::new(); build.stack.kinds().len()],
                            warnings,
                        }),
                    },
                    Err(e) => {
                        return reply_error(
                            shared,
                            stream,
                            "/v1/detect",
                            &Rejection::new(409, e.to_string()),
                            started,
                        )
                    }
                }
            }
        };
        return reply_json(shared, stream, "/v1/detect", &body, started);
    }
    match score_via_queue(shared, features, conds, rows, selection) {
        Ok(JobReply { scores, evidence }) => {
            let body = match evidence {
                // The scorer answered through an evidence stack: the
                // verdict axis, threshold, and verdicts all come from
                // the stack it actually scored with.
                Some(detail) => DetectResponse {
                    threshold: detail.threshold,
                    flagged: detail.verdicts.iter().filter(|&&v| v).count(),
                    scores,
                    verdicts: detail.verdicts,
                    evidence: Some(EvidenceBreakdown {
                        kinds: detail.kinds.iter().map(ToString::to_string).collect(),
                        weights: detail.weights,
                        thresholds: detail.thresholds,
                        per_evidence: detail.per_evidence,
                        warnings,
                    }),
                },
                // Verdicts come from the engine snapshot taken at
                // request time, matching what the batch was scored
                // against.
                None => {
                    let verdicts: Vec<bool> = scores.iter().map(|&s| engine.is_attack(s)).collect();
                    DetectResponse {
                        threshold: engine.threshold(),
                        flagged: verdicts.iter().filter(|&&v| v).count(),
                        scores,
                        verdicts,
                        evidence: None,
                    }
                }
            };
            reply_json(shared, stream, "/v1/detect", &body, started);
        }
        Err(rejection) => reply_error(shared, stream, "/v1/detect", &rejection, started),
    }
}

fn handle_classify(shared: &Shared, stream: &mut TcpStream, request: &Request, started: Instant) {
    let req: ClassifyRequest = match serde_json::from_slice(&request.body) {
        Ok(req) => req,
        Err(e) => {
            return reply_error(
                shared,
                stream,
                "/v1/classify",
                &Rejection::new(400, format!("invalid JSON body: {e}")),
                started,
            )
        }
    };
    let engine = shared.engine();
    let frame_width = engine.config().n_bins;
    for (i, frame) in req.frames.iter().enumerate() {
        if frame.len() != frame_width {
            return reply_error(
                shared,
                stream,
                "/v1/classify",
                &Rejection::new(
                    422,
                    format!(
                        "frame {i} is {} wide; the serving bundle frames are {frame_width} bins",
                        frame.len()
                    ),
                ),
                started,
            );
        }
    }
    let rows = req.frames.len();
    let flat: Vec<f64> = req.frames.into_iter().flatten().collect();
    let Ok(features) = Matrix::from_vec(rows, frame_width, flat) else {
        return reply_error(
            shared,
            stream,
            "/v1/classify",
            &Rejection::new(500, "shape assembly failed"),
            started,
        );
    };
    let detail = engine.classify_frames_detailed(&features);
    let body = ClassifyResponse {
        conditions: detail.conditions,
        log_likelihoods: detail.log_likelihoods,
    };
    reply_json(shared, stream, "/v1/classify", &body, started);
}

/// Maps a streaming-layer error onto an HTTP rejection: an unknown
/// session is `404`; a full session table is shed load (`503` +
/// `Retry-After`); an oversized or poisoned chunk is the client's fault
/// (`422`); a rate change or a closed session is a state conflict
/// (`409`).
fn stream_rejection(err: &StreamError) -> Rejection {
    let status = match err {
        StreamError::UnknownSession(_) => 404,
        StreamError::CapacityExhausted { .. } => 503,
        StreamError::Backpressure { .. } | StreamError::NonFiniteSample { .. } => 422,
        StreamError::SampleRateMismatch { .. } | StreamError::AlreadyClosed(_) => 409,
    };
    Rejection::new(status, err.to_string())
}

/// Converts the session manager's drift report into its wire form.
fn drift_status(report: &DriftReport) -> StreamDriftStatus {
    StreamDriftStatus {
        calibrated: report.calibrated,
        ewma: report.ewma,
        state: report.state.as_str().to_string(),
        sealed_threshold: report.sealed_threshold,
        recalibrated_threshold: report.recalibrated_threshold,
        scored_frames: report.scored_frames,
        score_mean: report.score_mean,
        score_variance: report.score_variance,
    }
}

/// Scores one ingest batch's emitted rows through the shared micro-batch
/// queue, replicating the session condition per row. Empty batches skip
/// the queue entirely.
fn score_stream_rows(
    shared: &Shared,
    rows: &[Vec<f64>],
    cond: &[f64],
) -> Result<Vec<f64>, Rejection> {
    if rows.is_empty() {
        return Ok(Vec::new());
    }
    let features: Vec<f64> = rows.iter().flatten().copied().collect();
    let mut conds = Vec::with_capacity(rows.len() * cond.len());
    for _ in 0..rows.len() {
        conds.extend_from_slice(cond);
    }
    score_via_queue(shared, features, conds, rows.len(), None).map(|reply| reply.scores)
}

fn handle_stream_samples(
    shared: &Shared,
    stream: &mut TcpStream,
    request: &Request,
    started: Instant,
    id: &str,
) {
    const ROUTE: &str = "/v1/stream/{id}/samples";
    let req: StreamIngestRequest = match serde_json::from_slice(&request.body) {
        Ok(req) => req,
        Err(e) => {
            return reply_error(
                shared,
                stream,
                ROUTE,
                &Rejection::new(400, format!("invalid JSON body: {e}")),
                started,
            )
        }
    };
    let engine = shared.engine();
    let cond_width = engine.config().encoding.dim();
    if req.cond.len() != cond_width {
        return reply_error(
            shared,
            stream,
            ROUTE,
            &Rejection::new(
                422,
                format!(
                    "condition is {} wide; the serving encoding is {cond_width} wide",
                    req.cond.len()
                ),
            ),
            started,
        );
    }
    if !(req.sample_rate.is_finite() && req.sample_rate > 0.0) {
        return reply_error(
            shared,
            stream,
            ROUTE,
            &Rejection::new(422, format!("invalid sample rate {}", req.sample_rate)),
            started,
        );
    }
    let manager = shared.stream_manager();

    // Chaos injection point: a stall freezes the handler while it holds
    // the chunk; a disconnect ingests the chunk, then drops the
    // connection before the reply is written.
    #[cfg(feature = "chaos")]
    let drop_reply = match shared.chaos.as_ref().map(|c| c.next_stream_ingest()) {
        Some(StreamFault::Stall(pause)) => {
            std::thread::sleep(pause);
            false
        }
        Some(StreamFault::Disconnect) => true,
        Some(StreamFault::None) | None => false,
    };

    let batch = match manager.ingest(
        id,
        &req.samples,
        &req.cond,
        req.sample_rate,
        shared.now_ms(),
    ) {
        Ok(batch) => batch,
        Err(e) => return reply_error(shared, stream, ROUTE, &stream_rejection(&e), started),
    };
    let scores = match score_stream_rows(shared, &batch.rows, &batch.cond) {
        Ok(scores) => scores,
        Err(rejection) => return reply_error(shared, stream, ROUTE, &rejection, started),
    };
    let report = match manager.record_scores(id, &scores) {
        Ok(report) => report,
        Err(e) => return reply_error(shared, stream, ROUTE, &stream_rejection(&e), started),
    };

    #[cfg(feature = "chaos")]
    if drop_reply {
        // The chunk landed and was scored; the client just never hears
        // about it. 499 is the conventional "client gone" tally.
        shared
            .metrics
            .observe_request(ROUTE, 499, started.elapsed());
        return;
    }

    let verdicts: Vec<bool> = scores.iter().map(|&s| engine.is_attack(s)).collect();
    let body = StreamIngestResponse {
        session: id.to_string(),
        frames_before: batch.frames_before,
        flagged: verdicts.iter().filter(|&&v| v).count(),
        scores,
        verdicts,
        threshold: engine.threshold(),
        drift: drift_status(&report),
    };
    reply_json(shared, stream, ROUTE, &body, started);
}

fn handle_stream_close(shared: &Shared, stream: &mut TcpStream, started: Instant, id: &str) {
    const ROUTE: &str = "/v1/stream/{id}/close";
    // No manager yet means no session was ever opened; don't pay the
    // manager build just to say 404.
    let Some(manager) = shared.stream_manager_if_built() else {
        return reply_error(
            shared,
            stream,
            ROUTE,
            &stream_rejection(&StreamError::UnknownSession(id.to_string())),
            started,
        );
    };
    let batch = match manager.flush(id, shared.now_ms()) {
        Ok(batch) => batch,
        Err(e) => return reply_error(shared, stream, ROUTE, &stream_rejection(&e), started),
    };
    let engine = shared.engine();
    let scores = match score_stream_rows(shared, &batch.rows, &batch.cond) {
        Ok(scores) => scores,
        Err(rejection) => return reply_error(shared, stream, ROUTE, &rejection, started),
    };
    let report = match manager.record_scores(id, &scores) {
        Ok(report) => report,
        Err(e) => return reply_error(shared, stream, ROUTE, &stream_rejection(&e), started),
    };
    manager.remove(id);
    let verdicts: Vec<bool> = scores.iter().map(|&s| engine.is_attack(s)).collect();
    let body = StreamCloseResponse {
        session: id.to_string(),
        frames_before: batch.frames_before,
        flagged: verdicts.iter().filter(|&&v| v).count(),
        scores,
        verdicts,
        threshold: engine.threshold(),
        drift: drift_status(&report),
    };
    reply_json(shared, stream, ROUTE, &body, started);
}

fn handle_stream_stats(shared: &Shared, stream: &mut TcpStream, started: Instant, id: &str) {
    const ROUTE: &str = "/v1/stream/{id}/stats";
    let Some(manager) = shared.stream_manager_if_built() else {
        return reply_error(
            shared,
            stream,
            ROUTE,
            &stream_rejection(&StreamError::UnknownSession(id.to_string())),
            started,
        );
    };
    let stats = match manager.stats(id, shared.now_ms()) {
        Ok(stats) => stats,
        Err(e) => return reply_error(shared, stream, ROUTE, &stream_rejection(&e), started),
    };
    let body = StreamStatsResponse {
        session: id.to_string(),
        samples: stats.samples,
        frames: stats.frames,
        transforms: stats.transforms,
        pending_samples: stats.pending_samples,
        sample_rate: stats.sample_rate,
        condition: stats.condition,
        idle_ms: stats.idle_ms,
        closed: stats.closed,
        drift: drift_status(&stats.drift),
    };
    reply_json(shared, stream, ROUTE, &body, started);
}

/// Loads, lints, and strictly validates a bundle for hot reload. Both
/// gates must pass before the engine swap — a tampered or incompatible
/// artifact never replaces a healthy one.
fn load_reload_bundle(path: &str) -> Result<ModelBundle, String> {
    let bundle = ModelBundle::load_unchecked(path).map_err(|e| format!("{path}: {e}"))?;
    let report =
        gansec_lint::check(&gansec_lint::CheckInput::new().with_bundle(bundle.lint_spec(None)));
    if !report.is_clean() {
        let first = report
            .diagnostics()
            .iter()
            .find(|d| d.severity == gansec_lint::Severity::Error)
            .map_or_else(|| "unknown defect".to_string(), ToString::to_string);
        return Err(format!("{path}: rejected by lint: {first}"));
    }
    bundle.validate().map_err(|e| format!("{path}: {e}"))?;
    Ok(bundle)
}

fn handle_reload(shared: &Shared, stream: &mut TcpStream, request: &Request, started: Instant) {
    // A drain is a promise that the serving snapshot is final; swapping
    // engines mid-drain would hand in-flight clients a bundle nobody
    // asked for.
    if shared.shutting_down.load(Ordering::SeqCst) {
        return reply_error(
            shared,
            stream,
            "/admin/reload",
            &Rejection::new(409, "server is draining; reload rejected"),
            started,
        );
    }
    let req: ReloadRequest = if request.body.is_empty() {
        ReloadRequest::default()
    } else {
        match serde_json::from_slice(&request.body) {
            Ok(req) => req,
            Err(e) => {
                return reply_error(
                    shared,
                    stream,
                    "/admin/reload",
                    &Rejection::new(400, format!("invalid JSON body: {e}")),
                    started,
                )
            }
        }
    };
    #[cfg(feature = "chaos")]
    if let Some(chaos) = &shared.chaos {
        match chaos.next_reload() {
            ReloadFault::Delay(pause) => std::thread::sleep(pause),
            ReloadFault::Fail => {
                return reply_error(
                    shared,
                    stream,
                    "/admin/reload",
                    &Rejection::new(422, "chaos: injected reload failure (torn artifact)"),
                    started,
                )
            }
            ReloadFault::None => {}
        }
    }
    let path = req.bundle.unwrap_or_else(|| {
        shared
            .bundle_path
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    });
    match load_reload_bundle(&path) {
        Ok(bundle) => {
            let body = ReloadResponse {
                bundle: path.clone(),
                schema_version: bundle.schema_version,
                seed: bundle.seed,
                config_fingerprint: format!("{:016x}", bundle.config_fingerprint),
            };
            let mut engine = ScoringEngine::from_bundle(bundle);
            // A hot reload replaces the model, not the serving policy:
            // the new engine keeps the precision the old one ran at.
            engine.set_precision(shared.engine().precision());
            let engine = Arc::new(engine);
            *shared
                .engine
                .write()
                .unwrap_or_else(PoisonError::into_inner) = engine;
            *shared
                .bundle_path
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = path;
            // Streaming sessions are pinned to the engine snapshot that
            // opened them (binning, baseline, scale). Drop the manager so
            // the next stream request rebuilds against the new engine.
            *shared.stream.lock().unwrap_or_else(PoisonError::into_inner) = None;
            shared.metrics.observe_reload();
            reply_json(shared, stream, "/admin/reload", &body, started);
        }
        Err(msg) => reply_error(
            shared,
            stream,
            "/admin/reload",
            &Rejection::new(422, msg),
            started,
        ),
    }
}

fn handle_shutdown(shared: &Shared, stream: &mut TcpStream, started: Instant) {
    // Flag the drain *before* acknowledging, so any request racing this
    // one observes `draining` deterministically once the ack is read
    // (the reload-during-drain 409 contract).
    shared.trigger_shutdown();
    http::write_response(
        stream,
        200,
        "application/json",
        b"{\"status\":\"draining\"}",
        &[],
    );
    shared
        .metrics
        .observe_request("/admin/shutdown", 200, started.elapsed());
}

/// Returns the quarantine error for the first non-finite value in one
/// job, if any.
fn job_poison(job: &ScoreJob, frame_width: usize, cond_width: usize) -> Option<JobError> {
    if let Some(i) = job.features.iter().position(|v| !v.is_finite()) {
        return Some(JobError::NonFinite {
            row: i / frame_width.max(1),
            kind: "feature",
        });
    }
    if let Some(i) = job.conds.iter().position(|v| !v.is_finite()) {
        return Some(JobError::NonFinite {
            row: i / cond_width.max(1),
            kind: "condition",
        });
    }
    None
}

/// The scorer thread: drain → quarantine/validate against the current
/// engine → one checked block-parallel `score_frames` call → scatter
/// replies, with batch verdicts feeding the circuit breaker. Exits only
/// when the queue is closed and fully drained.
fn batcher_loop(shared: &Shared) {
    let linger = Duration::from_millis(shared.config.batch_linger_ms);
    let max_batch = shared.config.max_batch.max(1);
    while let Some(batch) = shared.queue.drain(max_batch, linger) {
        if batch.is_empty() {
            continue;
        }
        shared.mark_scorer_busy();
        score_batch(shared, batch);
        shared.mark_scorer_idle();
    }
}

/// Scores one drained batch; factored out of [`batcher_loop`] so the
/// busy/idle bracket around it stays obvious.
fn score_batch(shared: &Shared, batch: Vec<ScoreJob>) {
    // Chaos injection point: consult the fault schedule for this batch.
    // `CorruptJob` fires *before* per-job validation (drilling the
    // quarantine) and is applied here; `PoisonBatch` fires *after* it
    // (drilling the engine's own checks and the breaker) and is applied
    // further down.
    #[cfg(feature = "chaos")]
    let (chaos_fault, batch) = {
        let mut batch = batch;
        let fault = shared
            .chaos
            .as_ref()
            .map_or(BatchFault::None, |chaos| chaos.next_batch());
        match fault {
            BatchFault::Panic => panic!("chaos: injected scorer panic"),
            BatchFault::Hang(pause) => std::thread::sleep(pause),
            BatchFault::CorruptJob => {
                if let (Some(chaos), Some(job)) = (&shared.chaos, batch.first_mut()) {
                    if !job.features.is_empty() {
                        let site = chaos.corruption_site(job.features.len());
                        job.features[site] = chaos.poison_value();
                    }
                }
            }
            BatchFault::PoisonBatch | BatchFault::None => {}
        }
        (fault, batch)
    };

    let engine = shared.engine();
    let frame_width = engine.config().n_bins;
    let cond_width = engine.config().encoding.dim();

    // Per-job gatekeeping: a reload between submit and drain can change
    // the expected widths (409), and a non-finite job is quarantined
    // (422) so it cannot poison co-batched requests. Neither is a batch
    // verdict for the breaker — the batch the engine sees excludes them.
    let mut jobs = Vec::with_capacity(batch.len());
    let mut quarantined_any = false;
    for job in batch {
        if job.features.len() != job.rows * frame_width || job.conds.len() != job.rows * cond_width
        {
            drop(job.reply.try_send(Err(JobError::Reshaped {
                frame_width,
                cond_width,
            })));
        } else if let Some(poison) = job_poison(&job, frame_width, cond_width) {
            quarantined_any = true;
            shared.quarantined.store(true, Ordering::SeqCst);
            shared
                .metrics
                .observe_quarantine(engine.config_fingerprint(), job.rows);
            drop(job.reply.try_send(Err(poison)));
        } else {
            jobs.push(job);
        }
    }
    if jobs.is_empty() {
        return;
    }

    #[cfg(feature = "chaos")]
    let jobs = {
        let mut jobs = jobs;
        if chaos_fault == BatchFault::PoisonBatch {
            if let (Some(chaos), Some(job)) = (&shared.chaos, jobs.first_mut()) {
                if !job.features.is_empty() {
                    let site = chaos.corruption_site(job.features.len());
                    job.features[site] = chaos.poison_value();
                }
            }
        }
        jobs
    };

    // Jobs with identical evidence selections co-batch into one engine
    // call each; the default (`None`) group keeps the exact
    // pre-evidence single `score_frames` call, preserving the
    // serve-vs-offline bit-identity contract.
    let mut groups: Vec<(Option<EvidenceSelection>, Vec<ScoreJob>)> = Vec::new();
    for job in jobs {
        match groups.iter_mut().find(|(sel, _)| *sel == job.evidence) {
            Some((_, members)) => members.push(job),
            None => groups.push((job.evidence.clone(), vec![job])),
        }
    }
    for (selection, group) in groups {
        score_group(shared, &engine, selection.as_ref(), group, quarantined_any);
    }
}

/// Scores one evidence-selection group of gatekept jobs: build the
/// stack (when one was selected), assemble the group into one matrix
/// pair, run the engine once, and scatter per-job reply slices. Engine
/// verdicts feed the circuit breaker; a stack that can no longer be
/// built (a reload raced the queue) is a verdict-less per-job conflict
/// instead.
fn score_group(
    shared: &Shared,
    engine: &ScoringEngine,
    selection: Option<&EvidenceSelection>,
    group: Vec<ScoreJob>,
    quarantined_any: bool,
) {
    let frame_width = engine.config().n_bins;
    let cond_width = engine.config().encoding.dim();
    let rows: usize = group.iter().map(|job| job.rows).sum();
    let stack = match selection {
        None => None,
        Some(selection) => match engine.build_evidence(&selection.kinds, &selection.weights) {
            Ok(build) => Some(build.stack),
            Err(err) => {
                for job in group {
                    drop(
                        job.reply
                            .try_send(Err(JobError::EvidenceUnavailable(err.to_string()))),
                    );
                }
                return;
            }
        },
    };
    let mut features = Vec::with_capacity(rows * frame_width);
    let mut conds = Vec::with_capacity(rows * cond_width);
    for job in &group {
        features.extend_from_slice(&job.features);
        conds.extend_from_slice(&job.conds);
    }
    let assembled = match (
        Matrix::from_vec(rows, frame_width, features),
        Matrix::from_vec(rows, cond_width, conds),
    ) {
        (Ok(f), Ok(c)) => Ok((f, c)),
        _ => Err("batch shape assembly failed".to_string()),
    };
    let outcome = assembled.and_then(|(feature_matrix, cond_matrix)| match &stack {
        None => engine
            .score_frames(&feature_matrix, &cond_matrix)
            .map(|scores| (scores, None))
            .map_err(|e| e.to_string()),
        Some(stack) => engine
            .detect_frames_detailed(&feature_matrix, &cond_matrix, stack)
            .map(|detail| (detail.combined.clone(), Some(detail)))
            .map_err(|e| e.to_string()),
    });
    match outcome {
        Ok((scores, detail)) => {
            shared.breaker.record_success();
            if !quarantined_any {
                // A fully clean batch clears the sticky quarantine flag:
                // the poison stream has (for now) stopped.
                shared.quarantined.store(false, Ordering::SeqCst);
            }
            shared.metrics.observe_batch(rows, group.len());
            let mut offset = 0usize;
            for job in group {
                let slice = scores[offset..offset + job.rows].to_vec();
                let evidence = detail.as_ref().map(|detail| EvidenceDetail {
                    kinds: detail.kinds.clone(),
                    weights: stack
                        .as_ref()
                        .expect("stack exists whenever detail does")
                        .weights()
                        .to_vec(),
                    thresholds: detail.evidence_thresholds.clone(),
                    threshold: detail.threshold,
                    per_evidence: detail
                        .per_evidence
                        .iter()
                        .map(|channel| channel[offset..offset + job.rows].to_vec())
                        .collect(),
                    verdicts: detail.verdicts[offset..offset + job.rows].to_vec(),
                });
                offset += job.rows;
                drop(job.reply.try_send(Ok(JobReply {
                    scores: slice,
                    evidence,
                })));
            }
        }
        Err(msg) => {
            // The engine rejected the whole group: a breaker-counted
            // scoring failure, not client input (that was quarantined
            // above).
            shared.metrics.observe_batch_failure();
            if shared.breaker.record_failure() {
                shared.metrics.observe_breaker_trip();
            }
            for job in group {
                drop(
                    job.reply
                        .try_send(Err(JobError::ScoringFailed(msg.clone()))),
                );
            }
        }
    }
}

/// Re-checks the serving engine before a scorer restart: its sealed
/// fingerprint must still match a recomputation over its config, and
/// the calibrated threshold must be finite. The engine is immutable
/// and shared, so a panic cannot have "moved" the model — but a
/// corrupted one must not be silently resurrected either, and a
/// replacement scorer on a revalidated engine produces bit-identical
/// scores.
fn revalidate_engine(shared: &Shared) -> Result<(), String> {
    let engine = shared.engine();
    let recomputed = gansec::config_fingerprint(engine.config());
    if recomputed != engine.config_fingerprint() {
        return Err(format!(
            "config fingerprint mismatch after scorer death: sealed {:016x}, \
             recomputed {recomputed:016x}",
            engine.config_fingerprint()
        ));
    }
    if !engine.threshold().is_finite() {
        return Err(format!(
            "calibrated threshold is not finite after scorer death: {}",
            engine.threshold()
        ));
    }
    Ok(())
}

/// Exponential backoff before restart `attempt` (1-based), capped.
fn backoff_ms(base: u64, attempt: u32) -> u64 {
    base.max(1)
        .saturating_mul(1u64 << attempt.saturating_sub(1).min(12))
        .min(MAX_BACKOFF_MS)
}

/// Sleeps up to `total`, waking early (in 25 ms slices) once shutdown
/// begins so a backoff never stalls the drain.
fn sleep_interruptible(shared: &Shared, total: Duration) {
    let deadline = Instant::now() + total;
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(25)));
    }
}

/// The watchdog: spawns the scorer and polls it every heartbeat. A
/// normal exit (queue closed and drained) ends supervision; a panic —
/// or a batch in flight past [`ServeConfig::scorer_stall_ms`] — marks
/// the scorer dead, re-validates the engine, waits out an exponential
/// backoff, and spawns a replacement. Restart attempts reset whenever a
/// batch completed since the last spawn; once they are exhausted (or
/// revalidation fails) every queued and future job is failed and the
/// server stays degraded.
fn supervisor_loop(shared: &Arc<Shared>) {
    let heartbeat = Duration::from_millis(shared.config.heartbeat_ms.max(1));
    let mut generation = 0u64;
    let Ok(mut incarnation) = spawn_batcher(shared, generation) else {
        shared.scorer_alive.store(false, Ordering::SeqCst);
        shared.queue.close_and_fail_pending();
        return;
    };
    let mut attempts = 0u32;
    let mut batches_at_spawn = shared.metrics.batches();
    loop {
        std::thread::sleep(heartbeat);
        // Piggyback the idle-session sweep on the watchdog heartbeat:
        // abandoned streaming sessions are reclaimed even if no stream
        // request ever arrives again.
        if let Some(manager) = shared.stream_manager_if_built() {
            manager.evict_idle(shared.now_ms());
        }
        let mut stalled = false;
        if incarnation.is_finished() {
            if incarnation.join().is_ok() {
                // Graceful exit: the queue was closed and fully drained.
                return;
            }
            if shared.shutting_down.load(Ordering::SeqCst) {
                // Died during the drain: answer whatever is left rather
                // than restarting into a closing server.
                shared.scorer_alive.store(false, Ordering::SeqCst);
                shared.queue.close_and_fail_pending();
                return;
            }
        } else if shared.scorer_stalled() {
            // A hung thread cannot be killed from safe code: detach the
            // zombie (if it ever wakes it will harmlessly compete for
            // the same queue, then exit at close) and supervise a fresh
            // incarnation in.
            stalled = true;
        } else {
            continue;
        }

        shared.scorer_alive.store(false, Ordering::SeqCst);
        shared.mark_scorer_idle();
        if shared.metrics.batches() > batches_at_spawn {
            // Progress since the last spawn: this is a fresh incident,
            // not the same crash loop.
            attempts = 0;
        }
        if attempts >= shared.config.restart_attempts {
            shared.queue.close_and_fail_pending();
            return;
        }
        attempts += 1;
        if revalidate_engine(shared).is_err() {
            shared.queue.close_and_fail_pending();
            return;
        }
        sleep_interruptible(
            shared,
            Duration::from_millis(backoff_ms(shared.config.restart_backoff_ms, attempts)),
        );
        shared.metrics.observe_scorer_restart(stalled);
        generation += 1;
        let Ok(replacement) = spawn_batcher(shared, generation) else {
            shared.queue.close_and_fail_pending();
            return;
        };
        incarnation = replacement;
        batches_at_spawn = shared.metrics.batches();
        shared.scorer_alive.store(true, Ordering::SeqCst);
    }
}

fn spawn_batcher(shared: &Arc<Shared>, generation: u64) -> Result<JoinHandle<()>, String> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("gansec-serve-batcher-{generation}"))
        .spawn(move || batcher_loop(&shared))
        .map_err(|e| format!("cannot spawn batcher: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use gansec::{GanSecPipeline, PipelineConfig};

    fn json_roundtrip_available() -> bool {
        serde_json::from_str::<serde_json::Value>("null").is_ok()
    }

    fn smoke_engine() -> ScoringEngine {
        let pipeline = GanSecPipeline::new(PipelineConfig::smoke_test());
        let stage = pipeline.train_stage(3).expect("smoke training");
        ScoringEngine::from_bundle(stage.to_bundle())
    }

    fn test_server() -> Server {
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServeConfig::default()
        };
        Server::start(config, smoke_engine(), "test-bundle.json").expect("server starts")
    }

    #[test]
    fn routes_and_drains_gracefully() {
        let server = test_server();
        let addr = server.addr();

        let missing = client::get(addr, "/nope").expect("roundtrip");
        assert_eq!(missing.status, 404);
        let wrong_method = client::get(addr, "/v1/score").expect("roundtrip");
        assert_eq!(wrong_method.status, 405);
        let metrics = client::get(addr, "/metrics").expect("roundtrip");
        assert_eq!(metrics.status, 200);
        let text = String::from_utf8(metrics.body).expect("utf8");
        assert!(text.contains("gansec_serve_requests_total"));
        assert!(text.contains("gansec_serve_health_state{state=\"ok\"} 1"));
        assert!(text.contains("gansec_serve_breaker_state{state=\"closed\"} 1"));
        assert!(text.contains("gansec_scorer_restarts_total 0"));

        let handle = server.handle();
        assert_eq!(handle.health(), "ok");
        handle.trigger_shutdown();
        server.join();
    }

    #[test]
    fn scores_via_http_match_the_engine() {
        if !json_roundtrip_available() {
            return;
        }
        let engine = smoke_engine();
        let pipeline = GanSecPipeline::new(engine.config().clone());
        let (_, test) = pipeline.datasets(engine.seed()).expect("datasets");
        let server = test_server();
        let addr = server.addr();

        let n = test.len().min(6);
        let frames: Vec<Vec<f64>> = (0..n).map(|i| test.features().row(i).to_vec()).collect();
        let conds: Vec<Vec<f64>> = (0..n).map(|i| test.conds().row(i).to_vec()).collect();
        let body = serde_json::to_vec(&ScoreRequest {
            frames: frames.clone(),
            conds: conds.clone(),
        })
        .expect("serialize");
        let reply = client::post(addr, "/v1/score", &body).expect("roundtrip");
        assert_eq!(
            reply.status,
            200,
            "{}",
            String::from_utf8_lossy(&reply.body)
        );
        let scored: ScoreResponse = serde_json::from_slice(&reply.body).expect("parse");
        assert_eq!(scored.scores.len(), n);
        for i in 0..n {
            assert_eq!(
                scored.scores[i].to_bits(),
                engine.score_frame(&frames[i], &conds[i]).to_bits(),
                "frame {i}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn detect_with_evidence_stack_returns_breakdown() {
        if !json_roundtrip_available() {
            return;
        }
        let engine = smoke_engine();
        let pipeline = GanSecPipeline::new(engine.config().clone());
        let (_, test) = pipeline.datasets(engine.seed()).expect("datasets");
        let server = test_server();
        let addr = server.addr();

        let n = test.len().min(4);
        let frames: Vec<Vec<f64>> = (0..n).map(|i| test.features().row(i).to_vec()).collect();
        let conds: Vec<Vec<f64>> = (0..n).map(|i| test.conds().row(i).to_vec()).collect();

        // KDE-only evidence is a passthrough: scores stay bit-identical
        // to the default path, and the breakdown is present.
        let body = serde_json::to_vec(&DetectRequest {
            frames: frames.clone(),
            conds: conds.clone(),
            evidence: Some(EvidenceRequest {
                kinds: vec!["kde".to_string()],
                weights: vec![],
            }),
        })
        .expect("serialize");
        let reply = client::post(addr, "/v1/detect", &body).expect("roundtrip");
        assert_eq!(
            reply.status,
            200,
            "{}",
            String::from_utf8_lossy(&reply.body)
        );
        let detected: DetectResponse = serde_json::from_slice(&reply.body).expect("parse");
        let breakdown = detected.evidence.expect("breakdown present");
        assert_eq!(breakdown.kinds, vec!["kde"]);
        assert_eq!(breakdown.weights, vec![1.0]);
        assert_eq!(detected.threshold.to_bits(), engine.threshold().to_bits());
        for i in 0..n {
            assert_eq!(
                detected.scores[i].to_bits(),
                engine.score_frame(&frames[i], &conds[i]).to_bits(),
                "frame {i}"
            );
            assert_eq!(
                breakdown.per_evidence[0][i].to_bits(),
                detected.scores[i].to_bits()
            );
        }

        // A full stack answers per-channel scores for every channel.
        let body = serde_json::to_vec(&DetectRequest {
            frames: frames.clone(),
            conds: conds.clone(),
            evidence: Some(EvidenceRequest {
                kinds: vec!["kde".to_string(), "disc".to_string(), "recon".to_string()],
                weights: vec![0.5, 0.3, 0.2],
            }),
        })
        .expect("serialize");
        let reply = client::post(addr, "/v1/detect", &body).expect("roundtrip");
        assert_eq!(
            reply.status,
            200,
            "{}",
            String::from_utf8_lossy(&reply.body)
        );
        let detected: DetectResponse = serde_json::from_slice(&reply.body).expect("parse");
        let breakdown = detected.evidence.expect("breakdown present");
        assert_eq!(breakdown.kinds, vec!["kde", "disc", "recon"]);
        assert_eq!(breakdown.per_evidence.len(), 3);
        assert_eq!(breakdown.thresholds.len(), 3);
        assert!(breakdown.per_evidence.iter().all(|ch| ch.len() == n));
        assert_eq!(detected.scores.len(), n);
        assert_eq!(detected.verdicts.len(), n);
        assert_eq!(
            detected.flagged,
            detected.verdicts.iter().filter(|&&v| v).count()
        );

        // A plain body stays on the default path with no breakdown.
        let body = serde_json::to_vec(&ScoreRequest {
            frames: frames.clone(),
            conds: conds.clone(),
        })
        .expect("serialize");
        let reply = client::post(addr, "/v1/detect", &body).expect("roundtrip");
        assert_eq!(reply.status, 200);
        let detected: DetectResponse = serde_json::from_slice(&reply.body).expect("parse");
        assert!(detected.evidence.is_none());
        server.shutdown();
    }

    #[test]
    fn detect_with_bad_evidence_request_is_422() {
        if !json_roundtrip_available() {
            return;
        }
        let server = test_server();
        let addr = server.addr();
        let engine_width = smoke_engine().config().n_bins;
        let cond_width = smoke_engine().config().encoding.dim();
        let body = serde_json::to_vec(&DetectRequest {
            frames: vec![vec![0.25; engine_width]],
            conds: vec![vec![1.0; cond_width]],
            evidence: Some(EvidenceRequest {
                kinds: vec!["astrology".to_string()],
                weights: vec![],
            }),
        })
        .expect("serialize");
        let reply = client::post(addr, "/v1/detect", &body).expect("roundtrip");
        assert_eq!(reply.status, 422);
        let dup = serde_json::to_vec(&DetectRequest {
            frames: vec![vec![0.25; engine_width]],
            conds: vec![vec![1.0; cond_width]],
            evidence: Some(EvidenceRequest {
                kinds: vec!["kde".to_string(), "kde".to_string()],
                weights: vec![],
            }),
        })
        .expect("serialize");
        let reply = client::post(addr, "/v1/detect", &dup).expect("roundtrip");
        assert_eq!(reply.status, 422);
        server.shutdown();
    }

    #[test]
    fn shape_mismatches_are_422() {
        if !json_roundtrip_available() {
            return;
        }
        let server = test_server();
        let addr = server.addr();
        let body = serde_json::to_vec(&ScoreRequest {
            frames: vec![vec![0.0; 2]],
            conds: vec![vec![0.0; 2]],
        })
        .expect("serialize");
        let reply = client::post(addr, "/v1/score", &body).expect("roundtrip");
        assert_eq!(reply.status, 422);
        server.shutdown();
    }

    #[test]
    fn non_finite_frames_are_quarantined_not_scored() {
        if !json_roundtrip_available() {
            return;
        }
        let engine = smoke_engine();
        let frame_width = engine.config().n_bins;
        let cond_width = engine.config().encoding.dim();
        let server = test_server();
        let addr = server.addr();

        let mut frame = vec![0.25; frame_width];
        frame[frame_width / 2] = f64::NAN;
        let body = serde_json::to_vec(&ScoreRequest {
            frames: vec![frame],
            conds: vec![vec![1.0; cond_width]],
        })
        .expect("serialize");
        let reply = client::post(addr, "/v1/score", &body).expect("roundtrip");
        assert_eq!(
            reply.status,
            422,
            "{}",
            String::from_utf8_lossy(&reply.body)
        );
        assert!(String::from_utf8_lossy(&reply.body).contains("quarantined"));

        // The quarantine degrades health without touching the breaker.
        let health = client::get(addr, "/healthz").expect("roundtrip");
        assert_eq!(health.status, 200);
        let parsed: HealthResponse = serde_json::from_slice(&health.body).expect("parse");
        assert_eq!(parsed.status, "degraded");
        assert_eq!(parsed.breaker, "closed");
        assert!(parsed.scorer_alive);
        assert_eq!(parsed.quarantined_frames, 1);

        // One clean batch clears the sticky flag.
        let clean = serde_json::to_vec(&ScoreRequest {
            frames: vec![vec![0.25; frame_width]],
            conds: vec![vec![1.0; cond_width]],
        })
        .expect("serialize");
        let reply = client::post(addr, "/v1/score", &clean).expect("roundtrip");
        assert_eq!(reply.status, 200);
        let health = client::get(addr, "/healthz").expect("roundtrip");
        let parsed: HealthResponse = serde_json::from_slice(&health.body).expect("parse");
        assert_eq!(parsed.status, "ok");
        server.shutdown();
    }

    #[test]
    fn health_reports_resilience_fields() {
        if !json_roundtrip_available() {
            return;
        }
        let server = test_server();
        let reply = client::get(server.addr(), "/healthz").expect("roundtrip");
        assert_eq!(reply.status, 200);
        let parsed: HealthResponse = serde_json::from_slice(&reply.body).expect("parse");
        assert_eq!(parsed.status, "ok");
        assert!(parsed.scorer_alive);
        assert_eq!(parsed.scorer_restarts, 0);
        assert_eq!(parsed.breaker, "closed");
        assert_eq!(parsed.quarantined_frames, 0);
        server.shutdown();
    }

    #[test]
    fn shutdown_endpoint_stops_the_server() {
        let server = test_server();
        let addr = server.addr();
        let ack = client::post(addr, "/admin/shutdown", b"").expect("roundtrip");
        assert_eq!(ack.status, 200);
        // join returns because the endpoint triggered the drain.
        server.join();
        assert!(client::get(addr, "/healthz").is_err());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(backoff_ms(50, 1), 50);
        assert_eq!(backoff_ms(50, 2), 100);
        assert_eq!(backoff_ms(50, 3), 200);
        assert_eq!(backoff_ms(50, 8), 5_000);
        assert_eq!(backoff_ms(0, 1), 1);
        assert_eq!(backoff_ms(u64::MAX, 40), 5_000);
    }

    /// A deterministic synthetic spindle trace long enough to complete
    /// several frames under the default 1024/512 framing.
    fn stream_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.021).sin() + 0.3 * (i as f64 * 0.17).cos())
            .collect()
    }

    fn ingest_body(samples: &[f64], cond: &[f64], sample_rate: f64) -> Vec<u8> {
        serde_json::to_vec(&StreamIngestRequest {
            samples: samples.to_vec(),
            cond: cond.to_vec(),
            sample_rate,
        })
        .expect("encode ingest request")
    }

    #[test]
    fn stream_sessions_ingest_score_and_close() {
        if !json_roundtrip_available() {
            return;
        }
        let server = test_server();
        let addr = server.addr();

        // Before any session exists the manager is never built: stats on
        // a ghost session is a cheap 404.
        let missing = client::get(addr, "/v1/stream/ghost/stats").expect("roundtrip");
        assert_eq!(missing.status, 404);

        let cond = [1.0, 0.0, 0.0];
        let signal = stream_signal(1_500);
        let reply = client::post(
            addr,
            "/v1/stream/mill-7/samples",
            &ingest_body(&signal, &cond, 16_000.0),
        )
        .expect("roundtrip");
        assert_eq!(
            reply.status,
            200,
            "{}",
            String::from_utf8_lossy(&reply.body)
        );
        let parsed: StreamIngestResponse = serde_json::from_slice(&reply.body).expect("parse");
        assert_eq!(parsed.session, "mill-7");
        assert_eq!(parsed.frames_before, 0);
        assert!(!parsed.scores.is_empty(), "1500 samples complete a frame");
        assert_eq!(parsed.scores.len(), parsed.verdicts.len());
        assert!(
            parsed.drift.calibrated,
            "smoke bundle carries an evidence seal"
        );
        assert!(parsed.drift.sealed_threshold.is_some());

        let stats = client::get(addr, "/v1/stream/mill-7/stats").expect("roundtrip");
        assert_eq!(stats.status, 200);
        let stats: StreamStatsResponse = serde_json::from_slice(&stats.body).expect("parse");
        assert_eq!(stats.samples, 1_500);
        assert_eq!(stats.frames, parsed.scores.len() as u64);
        assert_eq!(stats.condition, cond.to_vec());
        assert!(!stats.closed);

        // The stream gauges surface on /metrics while the session lives.
        let metrics = client::get(addr, "/metrics").expect("roundtrip");
        let text = String::from_utf8(metrics.body).expect("utf8");
        assert!(text.contains("gansec_stream_sessions 1"), "{text}");
        assert!(text.contains("gansec_stream_evictions_total 0"));
        assert!(text.contains("gansec_stream_drift_state{state=\"stable\"} 1"));

        let wrong_method = client::get(addr, "/v1/stream/mill-7/samples").expect("roundtrip");
        assert_eq!(wrong_method.status, 405);
        let unknown_action =
            client::post(addr, "/v1/stream/mill-7/teardown", b"").expect("roundtrip");
        assert_eq!(unknown_action.status, 404);

        let closed = client::post(addr, "/v1/stream/mill-7/close", b"").expect("roundtrip");
        assert_eq!(
            closed.status,
            200,
            "{}",
            String::from_utf8_lossy(&closed.body)
        );
        let closed: StreamCloseResponse = serde_json::from_slice(&closed.body).expect("parse");
        assert_eq!(closed.session, "mill-7");
        assert_eq!(closed.frames_before, parsed.scores.len() as u64);

        // Close removes the session; it no longer answers.
        let gone = client::get(addr, "/v1/stream/mill-7/stats").expect("roundtrip");
        assert_eq!(gone.status, 404);
        let gone = client::post(addr, "/v1/stream/mill-7/close", b"").expect("roundtrip");
        assert_eq!(gone.status, 404);

        server.shutdown();
    }

    #[test]
    fn stream_rejects_malformed_chunks_with_typed_statuses() {
        if !json_roundtrip_available() {
            return;
        }
        let server = test_server();
        let addr = server.addr();
        let cond = [1.0, 0.0, 0.0];

        let bad_json = client::post(addr, "/v1/stream/s/samples", b"{").expect("roundtrip");
        assert_eq!(bad_json.status, 400);

        let wide_cond = client::post(
            addr,
            "/v1/stream/s/samples",
            &ingest_body(&[0.0; 8], &[1.0; 5], 16_000.0),
        )
        .expect("roundtrip");
        assert_eq!(wide_cond.status, 422, "cond width must match the encoding");

        let bad_rate = client::post(
            addr,
            "/v1/stream/s/samples",
            &ingest_body(&[0.0; 8], &cond, 0.0),
        )
        .expect("roundtrip");
        assert_eq!(bad_rate.status, 422);

        let poisoned = client::post(
            addr,
            "/v1/stream/s/samples",
            &ingest_body(&[0.5, f64::NAN, 0.5], &cond, 16_000.0),
        )
        .expect("roundtrip");
        assert_eq!(
            poisoned.status, 422,
            "NaN samples are quarantined at ingest"
        );

        // Open a real session, then change its sample rate: conflict.
        let opened = client::post(
            addr,
            "/v1/stream/s/samples",
            &ingest_body(&[0.5; 16], &cond, 16_000.0),
        )
        .expect("roundtrip");
        assert_eq!(opened.status, 200);
        let relabeled = client::post(
            addr,
            "/v1/stream/s/samples",
            &ingest_body(&[0.5; 16], &cond, 8_000.0),
        )
        .expect("roundtrip");
        assert_eq!(relabeled.status, 409);

        server.shutdown();
    }

    #[test]
    fn stream_capacity_sheds_load_with_retry_after() {
        if !json_roundtrip_available() {
            return;
        }
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            stream_max_sessions: 1,
            ..ServeConfig::default()
        };
        let server =
            Server::start(config, smoke_engine(), "test-bundle.json").expect("server starts");
        let addr = server.addr();
        let cond = [1.0, 0.0, 0.0];

        let first = client::post(
            addr,
            "/v1/stream/a/samples",
            &ingest_body(&[0.5; 16], &cond, 16_000.0),
        )
        .expect("roundtrip");
        assert_eq!(first.status, 200);

        let second = client::post(
            addr,
            "/v1/stream/b/samples",
            &ingest_body(&[0.5; 16], &cond, 16_000.0),
        )
        .expect("roundtrip");
        assert_eq!(second.status, 503, "session table is full");
        assert!(second.retry_after.is_some(), "shed load advertises a retry");

        server.shutdown();
    }

    #[test]
    fn streamed_scores_match_the_offline_reference_bit_for_bit() {
        if !json_roundtrip_available() {
            return;
        }
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServeConfig::default()
        };
        let engine = smoke_engine();
        let cond = [0.0, 1.0, 0.0];
        let fs = 16_000.0;
        let signal = stream_signal(3_000);

        // Offline reference: one manager built exactly the way the
        // server builds its own (same seal baseline, same rebuilt
        // training scale), fed the whole trace in a single chunk, each
        // emitted row scored directly on the engine.
        let baseline = engine.evidence_seal().map(|seal| Baseline {
            mean: seal.kde.mean,
            std: seal.kde.std,
            threshold: seal.kde.threshold,
        });
        let scale = GanSecPipeline::new(engine.config().clone())
            .datasets(engine.seed())
            .ok()
            .map(|(train, _)| train.scale());
        assert!(scale.is_some(), "smoke config rebuilds its training scale");
        let reference = SessionManager::new(
            config.stream_config(engine.seed()),
            engine.config().bins(),
            baseline,
            scale,
        );
        let mut rows = reference
            .ingest("ref", &signal, &cond, fs, 0)
            .expect("reference ingest")
            .rows;
        rows.extend(reference.flush("ref", 0).expect("reference flush").rows);
        let expected: Vec<f64> = rows
            .iter()
            .map(|row| engine.score_frame(row, &cond))
            .collect();
        assert!(
            expected.len() >= 4,
            "3000 samples complete at least 4 frames"
        );

        // Streamed: same trace over HTTP in ragged chunks.
        let server =
            Server::start(config, smoke_engine(), "test-bundle.json").expect("server starts");
        let addr = server.addr();
        let mut streamed = Vec::new();
        for chunk in signal.chunks(997) {
            let reply = client::post(
                addr,
                "/v1/stream/parity/samples",
                &ingest_body(chunk, &cond, fs),
            )
            .expect("roundtrip");
            assert_eq!(
                reply.status,
                200,
                "{}",
                String::from_utf8_lossy(&reply.body)
            );
            let parsed: StreamIngestResponse = serde_json::from_slice(&reply.body).expect("parse");
            for (&score, &verdict) in parsed.scores.iter().zip(&parsed.verdicts) {
                assert_eq!(verdict, engine.is_attack(score));
            }
            streamed.extend(parsed.scores);
        }
        let closed = client::post(addr, "/v1/stream/parity/close", b"").expect("roundtrip");
        assert_eq!(closed.status, 200);
        let closed: StreamCloseResponse = serde_json::from_slice(&closed.body).expect("parse");
        streamed.extend(closed.scores);

        assert_eq!(
            streamed, expected,
            "streamed scores are bit-identical to offline"
        );
        server.shutdown();
    }
}
