//! A closed-loop load generator for the scoring API: N client threads
//! posting synthetic `POST /v1/score` requests as fast as the server
//! answers, reporting throughput and latency percentiles. Backs the
//! `loadgen` bench binary and the `gansec bench --serve` group.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use gansec_engine::ScoringEngine;

use crate::api::{ScoreRequest, ScoreResponse};
use crate::client;

/// Load shape knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadgenOptions {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client sends.
    pub requests_per_client: usize,
    /// Frames per request.
    pub frames_per_request: usize,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            clients: 4,
            requests_per_client: 25,
            frames_per_request: 16,
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Requests that completed with `200`.
    pub ok_requests: usize,
    /// Requests rejected with `503` backpressure.
    pub rejected_requests: usize,
    /// Requests that failed any other way (transport error, non-200).
    pub failed_requests: usize,
    /// Frames successfully scored.
    pub frames_scored: usize,
    /// Wall time of the whole run, in seconds.
    pub elapsed_secs: f64,
    /// Scored frames per second of wall time.
    pub throughput_fps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
}

impl LoadgenReport {
    /// Renders the stable JSON object `BENCH_serve.json` records.
    pub fn to_json(&self, opts: &LoadgenOptions) -> String {
        format!(
            concat!(
                "{{\"clients\":{},\"requests_per_client\":{},\"frames_per_request\":{},",
                "\"ok_requests\":{},\"rejected_requests\":{},\"failed_requests\":{},",
                "\"frames_scored\":{},\"elapsed_secs\":{:.6},\"throughput_fps\":{:.1},",
                "\"p50_ms\":{:.3},\"p99_ms\":{:.3}}}"
            ),
            opts.clients,
            opts.requests_per_client,
            opts.frames_per_request,
            self.ok_requests,
            self.rejected_requests,
            self.failed_requests,
            self.frames_scored,
            self.elapsed_secs,
            self.throughput_fps,
            self.p50_ms,
            self.p99_ms,
        )
    }
}

/// Builds one deterministic synthetic request body shaped for `engine`:
/// frame values sweep the unit interval per bin, and every frame claims
/// the first condition of the bundled encoding.
///
/// # Errors
///
/// Returns a message when serialization fails (offline JSON stubs).
pub fn synthetic_body(engine: &ScoringEngine, frames: usize, salt: u64) -> Result<Vec<u8>, String> {
    let frame_width = engine.config().n_bins;
    let cond_width = engine.config().encoding.dim();
    let frames: Vec<Vec<f64>> = (0..frames)
        .map(|r| {
            (0..frame_width)
                .map(|c| {
                    let x = (salt as usize + r * frame_width + c) % 97;
                    x as f64 / 96.0
                })
                .collect()
        })
        .collect();
    let mut cond = vec![0.0; cond_width];
    if let Some(first) = cond.first_mut() {
        *first = 1.0;
    }
    let conds = vec![cond; frames.len()];
    serde_json::to_vec(&ScoreRequest { frames, conds }).map_err(|e| e.to_string())
}

/// Runs the closed loop against a live server and aggregates the
/// per-request latencies.
///
/// # Errors
///
/// Returns a message when the request body cannot be built; transport
/// failures during the run are counted, not fatal.
pub fn run(
    addr: SocketAddr,
    engine: &ScoringEngine,
    opts: &LoadgenOptions,
) -> Result<LoadgenReport, String> {
    let bodies: Vec<Arc<Vec<u8>>> = (0..opts.clients)
        .map(|i| synthetic_body(engine, opts.frames_per_request, i as u64).map(Arc::new))
        .collect::<Result<_, _>>()?;

    let started = Instant::now();
    let threads: Vec<_> = bodies
        .into_iter()
        .map(|body| {
            let requests = opts.requests_per_client;
            let frames = opts.frames_per_request;
            std::thread::spawn(move || {
                let mut ok = 0usize;
                let mut rejected = 0usize;
                let mut failed = 0usize;
                let mut scored = 0usize;
                let mut latencies = Vec::with_capacity(requests);
                for _ in 0..requests {
                    let sent = Instant::now();
                    match client::post(addr, "/v1/score", &body) {
                        Ok(reply) if reply.status == 200 => {
                            latencies.push(sent.elapsed().as_secs_f64() * 1e3);
                            ok += 1;
                            let parsed: Result<ScoreResponse, _> =
                                serde_json::from_slice(&reply.body);
                            scored += parsed.map_or(frames, |r| r.scores.len());
                        }
                        Ok(reply) if reply.status == 503 => rejected += 1,
                        _ => failed += 1,
                    }
                }
                (ok, rejected, failed, scored, latencies)
            })
        })
        .collect();

    let mut ok_requests = 0;
    let mut rejected_requests = 0;
    let mut failed_requests = 0;
    let mut frames_scored = 0;
    let mut latencies = Vec::new();
    for t in threads {
        let (ok, rejected, failed, scored, lat) =
            t.join().map_err(|_| "load client panicked".to_string())?;
        ok_requests += ok;
        rejected_requests += rejected;
        failed_requests += failed;
        frames_scored += scored;
        latencies.extend(lat);
    }
    let elapsed_secs = started.elapsed().as_secs_f64();

    latencies.sort_by(f64::total_cmp);
    Ok(LoadgenReport {
        ok_requests,
        rejected_requests,
        failed_requests,
        frames_scored,
        elapsed_secs,
        throughput_fps: if elapsed_secs > 0.0 {
            frames_scored as f64 / elapsed_secs
        } else {
            0.0
        },
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
    })
}

/// Nearest-rank percentile over an ascending-sorted slice; 0 when empty.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn report_json_is_stable() {
        let report = LoadgenReport {
            ok_requests: 10,
            rejected_requests: 1,
            failed_requests: 0,
            frames_scored: 160,
            elapsed_secs: 0.5,
            throughput_fps: 320.0,
            p50_ms: 2.125,
            p99_ms: 9.75,
        };
        let json = report.to_json(&LoadgenOptions::default());
        assert!(json.starts_with("{\"clients\":4,"));
        assert!(json.contains("\"frames_scored\":160"));
        assert!(json.contains("\"throughput_fps\":320.0"));
        assert!(json.contains("\"p99_ms\":9.750"));
        assert!(json.ends_with('}'));
    }
}
