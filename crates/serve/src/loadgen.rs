//! A closed-loop load generator for the scoring API: N client threads
//! posting synthetic `POST /v1/score` requests as fast as the server
//! answers, reporting throughput and latency percentiles. Backs the
//! `loadgen` bench binary and the `gansec bench --serve` group.
//!
//! `503` replies are retried with capped exponential backoff. The delay
//! honors the server's `Retry-After` hint when it exceeds the local
//! schedule, and a deterministic per-client jitter decorrelates the
//! retry storms a tripped circuit breaker would otherwise synchronize.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gansec_engine::ScoringEngine;

use crate::api::{ScoreRequest, ScoreResponse};
use crate::client;

/// Ceiling on a single retry delay, hint or not.
const RETRY_CAP_MS: u64 = 1_000;
/// First-retry backoff; doubles per attempt up to the cap.
const RETRY_BASE_MS: u64 = 25;
/// Jitter is drawn uniformly from `[0, RETRY_JITTER_MS)`.
const RETRY_JITTER_MS: u64 = 25;

/// Load shape knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadgenOptions {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client sends.
    pub requests_per_client: usize,
    /// Frames per request.
    pub frames_per_request: usize,
    /// Retries per request on a `503` before counting it rejected.
    pub max_retries: u32,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            clients: 4,
            requests_per_client: 25,
            frames_per_request: 16,
            max_retries: 4,
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Requests that completed with `200`.
    pub ok_requests: usize,
    /// Requests still rejected with `503` after every retry.
    pub rejected_requests: usize,
    /// Requests that failed any other way (transport error, non-200).
    pub failed_requests: usize,
    /// Total retry attempts across the run.
    pub retries: usize,
    /// Requests that needed at least one retry (however they ended).
    pub retried_requests: usize,
    /// Frames successfully scored.
    pub frames_scored: usize,
    /// Wall time of the whole run, in seconds.
    pub elapsed_secs: f64,
    /// Scored frames per second of wall time.
    pub throughput_fps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
}

impl LoadgenReport {
    /// Renders the stable JSON object `BENCH_serve.json` records.
    pub fn to_json(&self, opts: &LoadgenOptions) -> String {
        format!(
            concat!(
                "{{\"clients\":{},\"requests_per_client\":{},\"frames_per_request\":{},",
                "\"max_retries\":{},",
                "\"ok_requests\":{},\"rejected_requests\":{},\"failed_requests\":{},",
                "\"retries\":{},\"retried_requests\":{},",
                "\"frames_scored\":{},\"elapsed_secs\":{:.6},\"throughput_fps\":{:.1},",
                "\"p50_ms\":{:.3},\"p99_ms\":{:.3}}}"
            ),
            opts.clients,
            opts.requests_per_client,
            opts.frames_per_request,
            opts.max_retries,
            self.ok_requests,
            self.rejected_requests,
            self.failed_requests,
            self.retries,
            self.retried_requests,
            self.frames_scored,
            self.elapsed_secs,
            self.throughput_fps,
            self.p50_ms,
            self.p99_ms,
        )
    }
}

/// One step of the splitmix64 sequence: the jitter source. Fully
/// deterministic per client, no external RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pre-jitter delay before retry number `attempt` (1-based): the local
/// exponential schedule `RETRY_BASE_MS · 2^(attempt-1)`, raised to the
/// server's `Retry-After` hint when the hint is longer, capped at
/// [`RETRY_CAP_MS`] either way.
fn retry_delay_ms(attempt: u32, hint_ms: Option<u64>) -> u64 {
    let expo = RETRY_BASE_MS.saturating_mul(1u64 << attempt.saturating_sub(1).min(10));
    hint_ms.unwrap_or(0).max(expo).min(RETRY_CAP_MS)
}

/// Parses a `Retry-After` header value (whole seconds) into
/// milliseconds; `None` for absent or non-numeric values.
fn retry_after_ms(header: Option<&str>) -> Option<u64> {
    header
        .and_then(|s| s.trim().parse::<u64>().ok())
        .map(|secs| secs.saturating_mul(1_000))
}

/// Builds one deterministic synthetic request body shaped for `engine`:
/// frame values sweep the unit interval per bin, and every frame claims
/// the first condition of the bundled encoding.
///
/// # Errors
///
/// Returns a message when serialization fails (offline JSON stubs).
pub fn synthetic_body(engine: &ScoringEngine, frames: usize, salt: u64) -> Result<Vec<u8>, String> {
    let frame_width = engine.config().n_bins;
    let cond_width = engine.config().encoding.dim();
    let frames: Vec<Vec<f64>> = (0..frames)
        .map(|r| {
            (0..frame_width)
                .map(|c| {
                    let x = (salt as usize + r * frame_width + c) % 97;
                    x as f64 / 96.0
                })
                .collect()
        })
        .collect();
    let mut cond = vec![0.0; cond_width];
    if let Some(first) = cond.first_mut() {
        *first = 1.0;
    }
    let conds = vec![cond; frames.len()];
    serde_json::to_vec(&ScoreRequest { frames, conds }).map_err(|e| e.to_string())
}

/// Per-thread tallies one closed-loop client accumulates.
#[derive(Default)]
struct ClientTally {
    ok: usize,
    rejected: usize,
    failed: usize,
    retries: usize,
    retried_requests: usize,
    scored: usize,
    latencies: Vec<f64>,
}

/// Sends one request, retrying `503`s per the backoff policy, and folds
/// the outcome into `tally`. The recorded latency covers the final
/// attempt only (service latency, not backoff sleep).
fn one_request(
    addr: SocketAddr,
    body: &[u8],
    frames: usize,
    max_retries: u32,
    jitter_state: &mut u64,
    tally: &mut ClientTally,
) {
    let mut attempt = 0u32;
    loop {
        let sent = Instant::now();
        match client::post(addr, "/v1/score", body) {
            Ok(reply) if reply.status == 200 => {
                tally.latencies.push(sent.elapsed().as_secs_f64() * 1e3);
                tally.ok += 1;
                let parsed: Result<ScoreResponse, _> = serde_json::from_slice(&reply.body);
                tally.scored += parsed.map_or(frames, |r| r.scores.len());
            }
            Ok(reply) if reply.status == 503 => {
                if attempt < max_retries {
                    attempt += 1;
                    tally.retries += 1;
                    let base =
                        retry_delay_ms(attempt, retry_after_ms(reply.retry_after.as_deref()));
                    let jitter = splitmix64(jitter_state) % RETRY_JITTER_MS.max(1);
                    std::thread::sleep(Duration::from_millis(base + jitter));
                    continue;
                }
                tally.rejected += 1;
            }
            _ => tally.failed += 1,
        }
        if attempt > 0 {
            tally.retried_requests += 1;
        }
        return;
    }
}

/// Runs the closed loop against a live server and aggregates the
/// per-request latencies.
///
/// # Errors
///
/// Returns a message when the request body cannot be built; transport
/// failures during the run are counted, not fatal.
pub fn run(
    addr: SocketAddr,
    engine: &ScoringEngine,
    opts: &LoadgenOptions,
) -> Result<LoadgenReport, String> {
    let bodies: Vec<Arc<Vec<u8>>> = (0..opts.clients)
        .map(|i| synthetic_body(engine, opts.frames_per_request, i as u64).map(Arc::new))
        .collect::<Result<_, _>>()?;

    let started = Instant::now();
    let threads: Vec<_> = bodies
        .into_iter()
        .enumerate()
        .map(|(client_idx, body)| {
            let requests = opts.requests_per_client;
            let frames = opts.frames_per_request;
            let max_retries = opts.max_retries;
            std::thread::spawn(move || {
                let mut tally = ClientTally {
                    latencies: Vec::with_capacity(requests),
                    ..ClientTally::default()
                };
                let mut jitter_state = 0x6761_6E73_6563_0000 ^ client_idx as u64;
                for _ in 0..requests {
                    one_request(
                        addr,
                        &body,
                        frames,
                        max_retries,
                        &mut jitter_state,
                        &mut tally,
                    );
                }
                tally
            })
        })
        .collect();

    let mut ok_requests = 0;
    let mut rejected_requests = 0;
    let mut failed_requests = 0;
    let mut retries = 0;
    let mut retried_requests = 0;
    let mut frames_scored = 0;
    let mut latencies = Vec::new();
    for t in threads {
        let tally = t.join().map_err(|_| "load client panicked".to_string())?;
        ok_requests += tally.ok;
        rejected_requests += tally.rejected;
        failed_requests += tally.failed;
        retries += tally.retries;
        retried_requests += tally.retried_requests;
        frames_scored += tally.scored;
        latencies.extend(tally.latencies);
    }
    let elapsed_secs = started.elapsed().as_secs_f64();

    latencies.sort_by(f64::total_cmp);
    Ok(LoadgenReport {
        ok_requests,
        rejected_requests,
        failed_requests,
        retries,
        retried_requests,
        frames_scored,
        elapsed_secs,
        throughput_fps: if elapsed_secs > 0.0 {
            frames_scored as f64 / elapsed_secs
        } else {
            0.0
        },
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
    })
}

/// Nearest-rank percentile over an ascending-sorted slice; 0 when empty.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn retry_schedule_doubles_and_caps() {
        // No hint: the local exponential schedule.
        assert_eq!(retry_delay_ms(1, None), 25);
        assert_eq!(retry_delay_ms(2, None), 50);
        assert_eq!(retry_delay_ms(3, None), 100);
        assert_eq!(retry_delay_ms(4, None), 200);
        // The schedule never exceeds the cap.
        assert_eq!(retry_delay_ms(30, None), RETRY_CAP_MS);
        // A longer server hint wins over the schedule...
        assert_eq!(retry_delay_ms(1, Some(500)), 500);
        // ...but a shorter hint does not shrink the backoff...
        assert_eq!(retry_delay_ms(4, Some(100)), 200);
        // ...and even the hint obeys the cap.
        assert_eq!(retry_delay_ms(1, Some(60_000)), RETRY_CAP_MS);
    }

    #[test]
    fn retry_after_header_parses_whole_seconds() {
        assert_eq!(retry_after_ms(Some("1")), Some(1_000));
        assert_eq!(retry_after_ms(Some(" 3 ")), Some(3_000));
        assert_eq!(retry_after_ms(Some("soon")), None);
        assert_eq!(retry_after_ms(None), None);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..100 {
            let x = splitmix64(&mut a) % RETRY_JITTER_MS;
            let y = splitmix64(&mut b) % RETRY_JITTER_MS;
            assert_eq!(x, y);
            assert!(x < RETRY_JITTER_MS);
        }
    }

    #[test]
    fn report_json_is_stable() {
        let report = LoadgenReport {
            ok_requests: 10,
            rejected_requests: 1,
            failed_requests: 0,
            retries: 3,
            retried_requests: 2,
            frames_scored: 160,
            elapsed_secs: 0.5,
            throughput_fps: 320.0,
            p50_ms: 2.125,
            p99_ms: 9.75,
        };
        let json = report.to_json(&LoadgenOptions::default());
        assert!(json.starts_with("{\"clients\":4,"));
        assert!(json.contains("\"max_retries\":4"));
        assert!(json.contains("\"retries\":3"));
        assert!(json.contains("\"retried_requests\":2"));
        assert!(json.contains("\"frames_scored\":160"));
        assert!(json.contains("\"throughput_fps\":320.0"));
        assert!(json.contains("\"p99_ms\":9.750"));
        assert!(json.ends_with('}'));
    }
}
