//! A minimal blocking HTTP/1.1 client for the server's own API: used by
//! the integration tests, the load generator, and `gansec bench
//! --serve`. One request per connection, mirroring the server's
//! `Connection: close` policy.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The reply body.
    pub body: Vec<u8>,
    /// The `Retry-After` header, when the server sent one.
    pub retry_after: Option<String>,
}

/// `GET path`.
///
/// # Errors
///
/// Returns a message on connection, write, read, or parse failure.
pub fn get(addr: SocketAddr, path: &str) -> Result<Response, String> {
    request(addr, "GET", path, None)
}

/// `POST path` with a body (always JSON on this API).
///
/// # Errors
///
/// Returns a message on connection, write, read, or parse failure.
pub fn post(addr: SocketAddr, path: &str, body: &[u8]) -> Result<Response, String> {
    request(addr, "POST", path, Some(body))
}

/// Sends one request and reads the whole reply (the server closes the
/// connection after each response, so read-to-end frames it).
///
/// # Errors
///
/// Returns a message on connection, write, read, or parse failure.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<Response, String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    drop(stream.set_read_timeout(Some(Duration::from_secs(30))));
    drop(stream.set_write_timeout(Some(Duration::from_secs(30))));

    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    if let Some(body) = body {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        head.push_str("Content-Type: application/json\r\n");
    }
    head.push_str("Connection: close\r\n\r\n");
    stream
        .write_all(head.as_bytes())
        .map_err(|e| format!("write {addr}: {e}"))?;
    if let Some(body) = body {
        stream
            .write_all(body)
            .map_err(|e| format!("write {addr}: {e}"))?;
    }

    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read {addr}: {e}"))?;
    parse_response(&raw)
}

/// Splits a raw HTTP/1.1 reply into status, headers of interest, and
/// body.
fn parse_response(raw: &[u8]) -> Result<Response, String> {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| "reply has no header terminator".to_string())?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|e| format!("bad reply head: {e}"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| "empty reply".to_string())?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let retry_after = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(name, _)| name.trim().eq_ignore_ascii_case("retry-after"))
        .map(|(_, value)| value.trim().to_string());
    Ok(Response {
        status,
        body: raw[split + 4..].to_vec(),
        retry_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_reply() {
        let raw =
            b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 2\r\nRetry-After: 1\r\n\r\nhi";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 503);
        assert_eq!(r.body, b"hi");
        assert_eq!(r.retry_after.as_deref(), Some("1"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 nope\r\n\r\n").is_err());
    }
}
