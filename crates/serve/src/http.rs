//! Minimal HTTP/1.1 framing over blocking streams: just enough protocol
//! for a JSON scoring API — no chunked bodies, no keep-alive, no TLS.
//!
//! Every reply carries `Connection: close`, so a connection serves
//! exactly one request; that keeps the worker loop allocation-simple
//! and makes timeouts per-request by construction. Request parsing is
//! defensive: a malformed request line, an oversized or unfinished
//! body, and a missing `Content-Length` each map to a distinct status
//! code instead of a panic or a hang.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Cap on the request line plus headers; beyond it the request is
/// malformed (431-ish, reported as 400 to keep the status set small).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ... — uppercase as received.
    pub method: String,
    /// Request target, e.g. `/v1/score` (query strings are not split).
    pub path: String,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Malformed request line or headers → `400`.
    BadRequest(String),
    /// A body-bearing method without `Content-Length` → `411`.
    LengthRequired,
    /// Declared body longer than the configured cap → `413`.
    PayloadTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The configured cap it exceeded.
        cap: usize,
    },
    /// The peer closed or timed out before a full request arrived; no
    /// reply is possible or useful.
    Disconnected,
}

/// Reads one request from `stream`, enforcing the body-size cap.
///
/// # Errors
///
/// See [`ReadError`]; the caller maps each variant to a status code
/// (or, for [`ReadError::Disconnected`], drops the connection).
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, ReadError> {
    let mut reader = BufReader::new(stream);
    let mut head_bytes = 0usize;

    let request_line = read_line(&mut reader, &mut head_bytes)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(ReadError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::BadRequest(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let method = method.to_string();
    let path = path.to_string();

    let mut content_length: Option<usize> = None;
    loop {
        let line = read_line(&mut reader, &mut head_bytes)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::BadRequest(format!("malformed header {line:?}")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            let n: usize = value
                .trim()
                .parse()
                .map_err(|_| ReadError::BadRequest(format!("bad Content-Length {value:?}")))?;
            content_length = Some(n);
        }
    }

    let body = match (method.as_str(), content_length) {
        ("GET", _) => Vec::new(),
        (_, None) => return Err(ReadError::LengthRequired),
        (_, Some(n)) if n > max_body => {
            return Err(ReadError::PayloadTooLarge {
                declared: n,
                cap: max_body,
            })
        }
        (_, Some(n)) => {
            let mut body = vec![0u8; n];
            reader
                .read_exact(&mut body)
                .map_err(|_| ReadError::Disconnected)?;
            body
        }
    };

    Ok(Request { method, path, body })
}

/// Reads one CRLF-terminated line, charging it against the head cap.
fn read_line(
    reader: &mut BufReader<&mut TcpStream>,
    head_bytes: &mut usize,
) -> Result<String, ReadError> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Err(ReadError::Disconnected),
        Ok(_) => {}
        Err(_) => return Err(ReadError::Disconnected),
    }
    *head_bytes += line.len();
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(ReadError::BadRequest("request head too large".to_string()));
    }
    if !line.ends_with('\n') {
        return Err(ReadError::Disconnected);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Writes a full response with `Connection: close`. Write failures are
/// swallowed — the peer may already be gone, and there is nobody left
/// to tell.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, String)],
) {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
    let _ = stream.flush();
}

/// Writes a JSON error body `{"error": ...}` with the given status.
pub fn write_error(stream: &mut TcpStream, status: u16, message: &str, extra: &[(&str, String)]) {
    // Hand-escaped so error reporting cannot itself fail to serialize.
    let escaped: String = message
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect();
    let body = format!("{{\"error\":\"{escaped}\"}}");
    write_response(stream, status, "application/json", body.as_bytes(), extra);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Runs `read_request` against raw bytes sent over a real socket.
    fn parse(raw: &[u8], max_body: usize) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let got = read_request(&mut stream, max_body);
        writer.join().unwrap();
        got
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            b"POST /v1/score HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
            64,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/score");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn get_needs_no_content_length() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n", 64).unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_request_line_is_bad_request() {
        assert!(matches!(
            parse(b"NONSENSE\r\n\r\n", 64),
            Err(ReadError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET noslash HTTP/1.1\r\n\r\n", 64),
            Err(ReadError::BadRequest(_))
        ));
    }

    #[test]
    fn post_without_length_is_length_required() {
        assert!(matches!(
            parse(b"POST /v1/score HTTP/1.1\r\n\r\n", 64),
            Err(ReadError::LengthRequired)
        ));
    }

    #[test]
    fn oversized_body_is_rejected_without_reading_it() {
        let got = parse(
            b"POST /v1/score HTTP/1.1\r\nContent-Length: 999\r\n\r\n",
            64,
        );
        assert!(matches!(
            got,
            Err(ReadError::PayloadTooLarge {
                declared: 999,
                cap: 64
            })
        ));
    }

    #[test]
    fn short_body_is_disconnected() {
        let got = parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 64);
        assert!(matches!(got, Err(ReadError::Disconnected)));
    }

    #[test]
    fn reasons_cover_the_emitted_codes() {
        for code in [200, 400, 404, 405, 409, 411, 413, 422, 500, 503] {
            assert!(!reason(code).is_empty(), "{code}");
        }
    }
}
