//! Minimal HTTP/1.1 framing over blocking streams: just enough protocol
//! for a JSON scoring API — no chunked bodies, no keep-alive, no TLS.
//!
//! Every reply carries `Connection: close`, so a connection serves
//! exactly one request; that keeps the worker loop allocation-simple
//! and makes timeouts per-request by construction. Request parsing is
//! defensive: a malformed request line, an oversized or unfinished
//! body, and a missing `Content-Length` each map to a distinct status
//! code instead of a panic or a hang.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Cap on the request line plus headers; beyond it the request is
/// malformed (431-ish, reported as 400 to keep the status set small).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ... — uppercase as received.
    pub method: String,
    /// Request target, e.g. `/v1/score` (query strings are not split).
    pub path: String,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Malformed request line or headers → `400`.
    BadRequest(String),
    /// A body-bearing method without `Content-Length` → `411`.
    LengthRequired,
    /// Declared body longer than the configured cap → `413`.
    PayloadTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The configured cap it exceeded.
        cap: usize,
    },
    /// The peer closed or timed out before a full request arrived; no
    /// reply is possible or useful.
    Disconnected,
}

/// Reads one request from `stream`, enforcing the body-size cap and an
/// optional whole-request deadline.
///
/// The deadline is what actually defeats slow-drip (slowloris) clients:
/// a per-syscall read timeout restarts with every byte received, so a
/// client feeding one byte per interval can hold a worker forever.
/// Before every read the remaining budget is re-armed as the socket
/// timeout, so the *sum* of waiting is bounded, not each wait.
///
/// # Errors
///
/// See [`ReadError`]; the caller maps each variant to a status code
/// (or, for [`ReadError::Disconnected`], drops the connection).
pub fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
    deadline: Option<Instant>,
) -> Result<Request, ReadError> {
    let mut reader = BufReader::new(stream);
    let mut head_bytes = 0usize;

    let request_line = read_line(&mut reader, &mut head_bytes, deadline)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(ReadError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::BadRequest(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let method = method.to_string();
    let path = path.to_string();

    let mut content_length: Option<usize> = None;
    loop {
        let line = read_line(&mut reader, &mut head_bytes, deadline)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::BadRequest(format!("malformed header {line:?}")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            let n: usize = value
                .trim()
                .parse()
                .map_err(|_| ReadError::BadRequest(format!("bad Content-Length {value:?}")))?;
            content_length = Some(n);
        }
    }

    let body = match (method.as_str(), content_length) {
        ("GET", _) => Vec::new(),
        (_, None) => return Err(ReadError::LengthRequired),
        (_, Some(n)) if n > max_body => {
            return Err(ReadError::PayloadTooLarge {
                declared: n,
                cap: max_body,
            })
        }
        (_, Some(n)) => {
            // Read in bounded chunks, re-arming the deadline between
            // them, so a byte-dripped body cannot outlive the budget.
            let mut body = vec![0u8; n];
            let mut filled = 0usize;
            while filled < n {
                arm_deadline(&mut reader, deadline)?;
                let upper = (filled + 8 * 1024).min(n);
                match reader.read(&mut body[filled..upper]) {
                    Ok(0) | Err(_) => return Err(ReadError::Disconnected),
                    Ok(k) => filled += k,
                }
            }
            body
        }
    };

    Ok(Request { method, path, body })
}

/// Re-arms the socket read timeout to the remaining deadline budget, or
/// fails with [`ReadError::Disconnected`] once the budget is spent.
fn arm_deadline(
    reader: &mut BufReader<&mut TcpStream>,
    deadline: Option<Instant>,
) -> Result<(), ReadError> {
    let Some(deadline) = deadline else {
        return Ok(());
    };
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(ReadError::Disconnected);
    }
    // `set_read_timeout(Some(0))` is an error by contract; the zero case
    // returned above, but clamp anyway against sub-millisecond truncation.
    reader
        .get_ref()
        .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
        .map_err(|_| ReadError::Disconnected)
}

/// Reads one CRLF-terminated line, charging it against the head cap.
///
/// Deliberately NOT `BufReader::read_line`: that loops syscalls
/// internally until it sees `\n`, so a peer dripping bytes *within* a
/// line would reset the socket timeout on every byte and outlive any
/// whole-request deadline. Here the remaining budget is re-armed before
/// each underlying read instead.
fn read_line(
    reader: &mut BufReader<&mut TcpStream>,
    head_bytes: &mut usize,
    deadline: Option<Instant>,
) -> Result<String, ReadError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        arm_deadline(reader, deadline)?;
        let buf = match reader.fill_buf() {
            Ok([]) | Err(_) => return Err(ReadError::Disconnected),
            Ok(buf) => buf,
        };
        let (used, complete) = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (buf.len(), false),
        };
        line.extend_from_slice(&buf[..used]);
        reader.consume(used);
        *head_bytes += used;
        if *head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::BadRequest("request head too large".to_string()));
        }
        if complete {
            break;
        }
    }
    while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| ReadError::Disconnected)
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Writes a full response with `Connection: close`. Write failures are
/// swallowed — the peer may already be gone, and there is nobody left
/// to tell.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, String)],
) {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
    let _ = stream.flush();
}

/// Writes a JSON error body `{"error": ...}` with the given status.
pub fn write_error(stream: &mut TcpStream, status: u16, message: &str, extra: &[(&str, String)]) {
    // Hand-escaped so error reporting cannot itself fail to serialize.
    let escaped: String = message
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect();
    let body = format!("{{\"error\":\"{escaped}\"}}");
    write_response(stream, status, "application/json", body.as_bytes(), extra);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Runs `read_request` against raw bytes sent over a real socket.
    fn parse(raw: &[u8], max_body: usize) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let got = read_request(&mut stream, max_body, None);
        writer.join().unwrap();
        got
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            b"POST /v1/score HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
            64,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/score");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn get_needs_no_content_length() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n", 64).unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_request_line_is_bad_request() {
        assert!(matches!(
            parse(b"NONSENSE\r\n\r\n", 64),
            Err(ReadError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET noslash HTTP/1.1\r\n\r\n", 64),
            Err(ReadError::BadRequest(_))
        ));
    }

    #[test]
    fn post_without_length_is_length_required() {
        assert!(matches!(
            parse(b"POST /v1/score HTTP/1.1\r\n\r\n", 64),
            Err(ReadError::LengthRequired)
        ));
    }

    #[test]
    fn oversized_body_is_rejected_without_reading_it() {
        let got = parse(
            b"POST /v1/score HTTP/1.1\r\nContent-Length: 999\r\n\r\n",
            64,
        );
        assert!(matches!(
            got,
            Err(ReadError::PayloadTooLarge {
                declared: 999,
                cap: 64
            })
        ));
    }

    #[test]
    fn short_body_is_disconnected() {
        let got = parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 64);
        assert!(matches!(got, Err(ReadError::Disconnected)));
    }

    #[test]
    fn deadline_bounds_a_slow_drip_client() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let dripper = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // One byte at a time, never finishing the request line. Each
            // byte would reset a naive per-syscall timeout.
            for b in b"POST /v1/score HT" {
                if s.write_all(&[*b]).is_err() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(30));
            }
        });
        let (mut stream, _) = listener.accept().unwrap();
        let started = Instant::now();
        let got = read_request(
            &mut stream,
            64,
            Some(Instant::now() + Duration::from_millis(150)),
        );
        assert!(matches!(got, Err(ReadError::Disconnected)));
        // Bounded by the deadline, not by 17 bytes x 30 ms of dripping.
        assert!(
            started.elapsed() < Duration::from_millis(400),
            "took {:?}",
            started.elapsed()
        );
        drop(stream);
        dripper.join().unwrap();
    }

    #[test]
    fn deadline_in_the_future_does_not_reject_a_fast_request() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let got = read_request(
            &mut stream,
            64,
            Some(Instant::now() + Duration::from_secs(5)),
        )
        .unwrap();
        assert_eq!(got.path, "/healthz");
        writer.join().unwrap();
    }

    #[test]
    fn reasons_cover_the_emitted_codes() {
        for code in [200, 400, 404, 405, 409, 411, 413, 422, 500, 503] {
            assert!(!reason(code).is_empty(), "{code}");
        }
    }
}
