//! Circuit breaker over the scoring path.
//!
//! The breaker watches *batch verdicts* — a batch that scores is a
//! success, a batch the engine rejects (or that dies with its scorer) is
//! a failure — and trips open after a configured run of consecutive
//! failures. While open, scoring requests are shed at admission with
//! `503` + `Retry-After` instead of queueing work a poisoned model will
//! fail anyway. After a cooldown one *probe* batch is admitted
//! (half-open); its verdict closes the breaker or re-opens it for
//! another cooldown.
//!
//! Admission and verdicts come from different threads (workers admit,
//! the scorer judges), so the state lives behind one small mutex; no
//! lock is held across I/O or scoring.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What the breaker says about one incoming scoring request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: proceed normally.
    Allowed,
    /// Breaker half-open and this request is the probe: proceed, and
    /// *must* settle the probe via a verdict or [`Breaker::abort_probe`].
    Probe,
    /// Breaker open: shed with `503`, hinting the client to retry after
    /// this many seconds.
    Rejected {
        /// Whole seconds until the next half-open probe window.
        retry_after_secs: u64,
    },
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    Closed,
    Open { since: Instant },
    HalfOpen { probe_in_flight: bool },
}

#[derive(Debug)]
struct State {
    phase: Phase,
    /// Consecutive batch failures while closed.
    consecutive_failures: u32,
    /// Total times the breaker has tripped open (monotonic, for metrics).
    trips: u64,
}

/// Consecutive-failure circuit breaker; see the module docs.
#[derive(Debug)]
pub struct Breaker {
    threshold: u32,
    cooldown: Duration,
    state: Mutex<State>,
}

/// A point-in-time snapshot for `/healthz` and `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerSnapshot {
    /// Scoring flows normally.
    Closed,
    /// Scoring is shed; the breaker re-probes after the cooldown.
    Open,
    /// One probe batch decides whether to close or re-open.
    HalfOpen,
}

impl BreakerSnapshot {
    /// Stable lowercase label used in JSON and Prometheus output.
    pub fn label(self) -> &'static str {
        match self {
            BreakerSnapshot::Closed => "closed",
            BreakerSnapshot::Open => "open",
            BreakerSnapshot::HalfOpen => "half_open",
        }
    }
}

impl Breaker {
    /// A closed breaker tripping after `threshold` consecutive failures
    /// (clamped to at least 1) and cooling down for `cooldown` when open.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        Breaker {
            threshold: threshold.max(1),
            cooldown,
            state: Mutex::new(State {
                phase: Phase::Closed,
                consecutive_failures: 0,
                trips: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A panicking holder leaves no torn state: every transition is a
        // single assignment, so recover the guard rather than poisoning
        // the whole server.
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Gate one scoring request. `Probe` admissions *must* later settle
    /// via [`Breaker::record_success`], [`Breaker::record_failure`], or
    /// [`Breaker::abort_probe`], else the breaker wedges half-open.
    pub fn admit(&self) -> Admission {
        let mut s = self.lock();
        match s.phase {
            Phase::Closed => Admission::Allowed,
            Phase::Open { since } => {
                let elapsed = since.elapsed();
                if elapsed >= self.cooldown {
                    s.phase = Phase::HalfOpen {
                        probe_in_flight: true,
                    };
                    Admission::Probe
                } else {
                    let remaining = self.cooldown - elapsed;
                    Admission::Rejected {
                        retry_after_secs: remaining.as_secs().max(1),
                    }
                }
            }
            Phase::HalfOpen { probe_in_flight } => {
                if probe_in_flight {
                    Admission::Rejected {
                        retry_after_secs: self.cooldown.as_secs().max(1),
                    }
                } else {
                    s.phase = Phase::HalfOpen {
                        probe_in_flight: true,
                    };
                    Admission::Probe
                }
            }
        }
    }

    /// A batch scored cleanly: close the breaker and clear the failure
    /// run.
    pub fn record_success(&self) {
        let mut s = self.lock();
        s.consecutive_failures = 0;
        s.phase = Phase::Closed;
    }

    /// A batch failed in the engine (or died with its scorer). Returns
    /// `true` when this verdict tripped the breaker open.
    pub fn record_failure(&self) -> bool {
        let mut s = self.lock();
        match s.phase {
            Phase::Closed => {
                s.consecutive_failures += 1;
                if s.consecutive_failures >= self.threshold {
                    s.phase = Phase::Open {
                        since: Instant::now(),
                    };
                    s.trips += 1;
                    true
                } else {
                    false
                }
            }
            // A failed probe re-opens for a fresh cooldown.
            Phase::HalfOpen { .. } => {
                s.phase = Phase::Open {
                    since: Instant::now(),
                };
                s.trips += 1;
                true
            }
            Phase::Open { .. } => false,
        }
    }

    /// A probe admission whose batch never reached a verdict (queue
    /// full, request quarantined before scoring): release the half-open
    /// slot so the next request can probe instead.
    pub fn abort_probe(&self) {
        let mut s = self.lock();
        if let Phase::HalfOpen { .. } = s.phase {
            s.phase = Phase::HalfOpen {
                probe_in_flight: false,
            };
        }
    }

    /// Current phase, for health and metrics.
    pub fn snapshot(&self) -> BreakerSnapshot {
        match self.lock().phase {
            Phase::Closed => BreakerSnapshot::Closed,
            Phase::Open { .. } => BreakerSnapshot::Open,
            Phase::HalfOpen { .. } => BreakerSnapshot::HalfOpen,
        }
    }

    /// How many times the breaker has tripped open since startup.
    /// (The server mirrors trips into its metrics via the
    /// `record_failure` return value; this accessor pins the invariant
    /// in unit tests.)
    #[cfg(test)]
    pub fn trips(&self) -> u64 {
        self.lock().trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64) -> Breaker {
        Breaker::new(threshold, Duration::from_millis(cooldown_ms))
    }

    #[test]
    fn stays_closed_below_the_threshold() {
        let b = breaker(3, 1_000);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert_eq!(b.snapshot(), BreakerSnapshot::Closed);
        assert_eq!(b.admit(), Admission::Allowed);
        // A success clears the run: two more failures still don't trip.
        b.record_success();
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert_eq!(b.snapshot(), BreakerSnapshot::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn trips_open_and_sheds_with_retry_after() {
        let b = breaker(2, 60_000);
        assert!(!b.record_failure());
        assert!(b.record_failure());
        assert_eq!(b.snapshot(), BreakerSnapshot::Open);
        assert_eq!(b.trips(), 1);
        match b.admit() {
            Admission::Rejected { retry_after_secs } => assert!(retry_after_secs >= 1),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let b = breaker(1, 0);
        assert!(b.record_failure());
        // Zero cooldown: the next admission is immediately the probe.
        assert_eq!(b.admit(), Admission::Probe);
        // Concurrent requests while the probe is in flight are shed.
        assert!(matches!(b.admit(), Admission::Rejected { .. }));
        assert_eq!(b.snapshot(), BreakerSnapshot::HalfOpen);
        b.record_success();
        assert_eq!(b.snapshot(), BreakerSnapshot::Closed);
        assert_eq!(b.admit(), Admission::Allowed);
    }

    #[test]
    fn half_open_probe_reopens_on_failure() {
        let b = breaker(1, 0);
        assert!(b.record_failure());
        assert_eq!(b.admit(), Admission::Probe);
        assert!(b.record_failure());
        assert_eq!(b.snapshot(), BreakerSnapshot::Open);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn aborted_probe_frees_the_slot() {
        let b = breaker(1, 0);
        assert!(b.record_failure());
        assert_eq!(b.admit(), Admission::Probe);
        assert!(matches!(b.admit(), Admission::Rejected { .. }));
        b.abort_probe();
        // The slot is free again: the next admission probes.
        assert_eq!(b.admit(), Admission::Probe);
    }

    #[test]
    fn zero_threshold_is_clamped_to_one() {
        let b = breaker(0, 60_000);
        assert!(b.record_failure());
        assert_eq!(b.snapshot(), BreakerSnapshot::Open);
    }

    #[test]
    fn snapshot_labels_are_stable() {
        assert_eq!(BreakerSnapshot::Closed.label(), "closed");
        assert_eq!(BreakerSnapshot::Open.label(), "open");
        assert_eq!(BreakerSnapshot::HalfOpen.label(), "half_open");
    }
}
