//! Serving metrics in Prometheus text exposition format.
//!
//! Counters and histograms are lock-free atomics on the hot path; the
//! request-count map takes a short mutex per request completion (label
//! sets are tiny and bounded by the route table). Rendering is fully
//! deterministic — `BTreeMap` ordering plus fixed bucket tables — so
//! tests can assert on exact lines.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Latency histogram bucket upper bounds, in seconds.
const LATENCY_BUCKETS: &[f64] = &[
    0.000_5, 0.001, 0.002_5, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
];

/// Batch-size histogram bucket upper bounds, in frames.
const BATCH_BUCKETS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0];

/// A fixed-bucket cumulative histogram.
#[derive(Debug)]
struct Histogram {
    bounds: &'static [f64],
    /// One count per bound, plus the +Inf bucket at the end.
    counts: Vec<AtomicU64>,
    /// Sum of observed values in micro-units (µs for seconds, frames
    /// for batch sizes — integral either way).
    sum_micro: AtomicU64,
}

impl Histogram {
    fn new(bounds: &'static [f64]) -> Self {
        Self {
            bounds,
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_micro: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: f64, micro: u64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot].fetch_add(1, Ordering::Relaxed);
        self.sum_micro.fetch_add(micro, Ordering::Relaxed);
    }

    /// Renders `_bucket`/`_sum`/`_count` lines; `sum_scale` converts the
    /// micro-unit sum back to the metric's unit.
    fn render(&self, out: &mut String, name: &str, sum_scale: f64) {
        let mut cumulative = 0u64;
        for (i, bound) in self.bounds.iter().enumerate() {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        cumulative += self.counts[self.bounds.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let sum = self.sum_micro.load(Ordering::Relaxed) as f64 * sum_scale;
        let _ = writeln!(out, "{name}_sum {sum}");
        let _ = writeln!(out, "{name}_count {cumulative}");
    }

    #[cfg(test)]
    fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// Point-in-time streaming gauges, sampled from the session manager at
/// render time (it owns the live counts; [`Metrics`] stays a pure
/// request-side sink). All zero before the first streaming request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamGauges {
    /// Open streaming sessions.
    pub sessions: usize,
    /// Idle-timeout evictions since startup.
    pub evictions: u64,
    /// Open sessions whose drift tracker is in the stable state.
    pub stable: usize,
    /// Open sessions whose drift tracker is in the drifting state.
    pub drifting: usize,
}

/// All serving metrics, shared by every server thread.
#[derive(Debug)]
pub struct Metrics {
    /// Completed requests by `(route, status)`.
    requests: Mutex<BTreeMap<(&'static str, u16), u64>>,
    /// Requests turned away, by reason.
    rejected_queue_full: AtomicU64,
    rejected_over_capacity: AtomicU64,
    /// Wall time from parsed request to written response.
    latency: Histogram,
    /// Frames per scored batch.
    batch_frames: Histogram,
    /// Batches the scorer thread dispatched.
    batches: AtomicU64,
    /// Requests whose frames were co-batched with at least one other
    /// request — proof the micro-batching engages.
    batched_requests: AtomicU64,
    /// Frames scored since startup.
    frames_scored: AtomicU64,
    /// Successful hot reloads.
    reloads: AtomicU64,
    /// Scorer incarnations the watchdog replaced after a panic or hang.
    scorer_restarts: AtomicU64,
    /// Restarts that were triggered by a stall rather than a panic.
    scorer_stalls: AtomicU64,
    /// Worker threads that panicked while handling a connection.
    worker_panics: AtomicU64,
    /// Times the circuit breaker tripped open.
    breaker_trips: AtomicU64,
    /// Requests shed because the breaker was open or half-open-busy.
    rejected_breaker_open: AtomicU64,
    /// Batches the engine rejected whole (model poison, not client input).
    batch_failures: AtomicU64,
    /// Non-finite frames quarantined before scoring, per bundle
    /// config-fingerprint.
    quarantined: Mutex<BTreeMap<u64, u64>>,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self {
            requests: Mutex::new(BTreeMap::new()),
            rejected_queue_full: AtomicU64::new(0),
            rejected_over_capacity: AtomicU64::new(0),
            latency: Histogram::new(LATENCY_BUCKETS),
            batch_frames: Histogram::new(BATCH_BUCKETS),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            frames_scored: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            scorer_restarts: AtomicU64::new(0),
            scorer_stalls: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            rejected_breaker_open: AtomicU64::new(0),
            batch_failures: AtomicU64::new(0),
            quarantined: Mutex::new(BTreeMap::new()),
        }
    }

    /// Records one completed request.
    pub fn observe_request(&self, route: &'static str, status: u16, elapsed: Duration) {
        *self
            .requests
            .lock()
            .expect("metrics lock poisoned")
            .entry((route, status))
            .or_insert(0) += 1;
        self.latency.observe(
            elapsed.as_secs_f64(),
            u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
        );
    }

    /// Records a request rejected for queue backpressure.
    pub fn observe_queue_full(&self) {
        self.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection rejected at the accept loop.
    pub fn observe_over_capacity(&self) {
        self.rejected_over_capacity.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one scored batch of `frames` frames drawn from
    /// `requests` distinct requests.
    pub fn observe_batch(&self, frames: usize, requests: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.frames_scored
            .fetch_add(frames as u64, Ordering::Relaxed);
        if requests > 1 {
            self.batched_requests
                .fetch_add(requests as u64, Ordering::Relaxed);
        }
        self.batch_frames.observe(frames as f64, frames as u64);
    }

    /// Records a successful hot reload.
    pub fn observe_reload(&self) {
        self.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one scorer restart; `stalled` marks it as hang-triggered
    /// rather than panic-triggered.
    pub fn observe_scorer_restart(&self, stalled: bool) {
        self.scorer_restarts.fetch_add(1, Ordering::Relaxed);
        if stalled {
            self.scorer_stalls.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a worker thread panicking on a connection.
    pub fn observe_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the circuit breaker tripping open.
    pub fn observe_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request shed because the breaker was open.
    pub fn observe_breaker_rejection(&self) {
        self.rejected_breaker_open.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a whole batch the engine rejected.
    pub fn observe_batch_failure(&self) {
        self.batch_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `frames` non-finite frames quarantined while bundle
    /// `fingerprint` was being served.
    pub fn observe_quarantine(&self, fingerprint: u64, frames: usize) {
        *self
            .quarantined
            .lock()
            .expect("metrics lock poisoned")
            .entry(fingerprint)
            .or_insert(0) += frames as u64;
    }

    /// Batches dispatched so far (test/driver convenience).
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Frames scored so far (test/driver convenience).
    pub fn frames_scored(&self) -> u64 {
        self.frames_scored.load(Ordering::Relaxed)
    }

    /// Scorer restarts so far (test/driver convenience).
    pub fn scorer_restarts(&self) -> u64 {
        self.scorer_restarts.load(Ordering::Relaxed)
    }

    /// Engine-rejected batches so far (test/driver convenience).
    pub fn batch_failures(&self) -> u64 {
        self.batch_failures.load(Ordering::Relaxed)
    }

    /// Total quarantined frames across all bundles.
    pub fn quarantined_frames(&self) -> u64 {
        self.quarantined
            .lock()
            .expect("metrics lock poisoned")
            .values()
            .sum()
    }

    /// Renders the Prometheus text payload. `queue_depth`,
    /// `active_connections`, `health` (`"ok"` / `"degraded"` /
    /// `"draining"`), `breaker` (`"closed"` / `"open"` / `"half_open"`),
    /// and `stream` are sampled by the caller at render time because
    /// they are gauges owned by other components.
    pub fn render(
        &self,
        queue_depth: usize,
        active_connections: usize,
        health: &str,
        breaker: &str,
        stream: StreamGauges,
    ) -> String {
        let mut out = String::with_capacity(4096);

        out.push_str(
            "# HELP gansec_serve_requests_total Completed requests by route and status.\n",
        );
        out.push_str("# TYPE gansec_serve_requests_total counter\n");
        for ((route, status), n) in self.requests.lock().expect("metrics lock poisoned").iter() {
            let _ = writeln!(
                out,
                "gansec_serve_requests_total{{route=\"{route}\",code=\"{status}\"}} {n}"
            );
        }

        out.push_str("# HELP gansec_serve_rejected_total Requests turned away, by reason.\n");
        out.push_str("# TYPE gansec_serve_rejected_total counter\n");
        let _ = writeln!(
            out,
            "gansec_serve_rejected_total{{reason=\"queue_full\"}} {}",
            self.rejected_queue_full.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "gansec_serve_rejected_total{{reason=\"over_capacity\"}} {}",
            self.rejected_over_capacity.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "gansec_serve_rejected_total{{reason=\"breaker_open\"}} {}",
            self.rejected_breaker_open.load(Ordering::Relaxed)
        );

        out.push_str(
            "# HELP gansec_serve_request_duration_seconds Request wall time, parse to reply.\n",
        );
        out.push_str("# TYPE gansec_serve_request_duration_seconds histogram\n");
        self.latency
            .render(&mut out, "gansec_serve_request_duration_seconds", 1e-6);

        out.push_str("# HELP gansec_serve_batch_frames Frames per scored batch.\n");
        out.push_str("# TYPE gansec_serve_batch_frames histogram\n");
        self.batch_frames
            .render(&mut out, "gansec_serve_batch_frames", 1.0);

        out.push_str("# HELP gansec_serve_batches_total Batches dispatched by the scorer.\n");
        out.push_str("# TYPE gansec_serve_batches_total counter\n");
        let _ = writeln!(
            out,
            "gansec_serve_batches_total {}",
            self.batches.load(Ordering::Relaxed)
        );

        out.push_str(
            "# HELP gansec_serve_batched_requests_total Requests co-batched with another request.\n",
        );
        out.push_str("# TYPE gansec_serve_batched_requests_total counter\n");
        let _ = writeln!(
            out,
            "gansec_serve_batched_requests_total {}",
            self.batched_requests.load(Ordering::Relaxed)
        );

        out.push_str("# HELP gansec_serve_frames_scored_total Frames scored since startup.\n");
        out.push_str("# TYPE gansec_serve_frames_scored_total counter\n");
        let _ = writeln!(
            out,
            "gansec_serve_frames_scored_total {}",
            self.frames_scored.load(Ordering::Relaxed)
        );

        out.push_str("# HELP gansec_serve_reloads_total Successful hot bundle reloads.\n");
        out.push_str("# TYPE gansec_serve_reloads_total counter\n");
        let _ = writeln!(
            out,
            "gansec_serve_reloads_total {}",
            self.reloads.load(Ordering::Relaxed)
        );

        out.push_str(
            "# HELP gansec_scorer_restarts_total Scorer incarnations replaced by the watchdog.\n",
        );
        out.push_str("# TYPE gansec_scorer_restarts_total counter\n");
        let _ = writeln!(
            out,
            "gansec_scorer_restarts_total {}",
            self.scorer_restarts.load(Ordering::Relaxed)
        );

        out.push_str(
            "# HELP gansec_serve_scorer_stalls_total Restarts triggered by a stalled batch.\n",
        );
        out.push_str("# TYPE gansec_serve_scorer_stalls_total counter\n");
        let _ = writeln!(
            out,
            "gansec_serve_scorer_stalls_total {}",
            self.scorer_stalls.load(Ordering::Relaxed)
        );

        out.push_str(
            "# HELP gansec_serve_worker_panics_total Worker panics contained to one connection.\n",
        );
        out.push_str("# TYPE gansec_serve_worker_panics_total counter\n");
        let _ = writeln!(
            out,
            "gansec_serve_worker_panics_total {}",
            self.worker_panics.load(Ordering::Relaxed)
        );

        out.push_str("# HELP gansec_serve_breaker_trips_total Circuit-breaker trips to open.\n");
        out.push_str("# TYPE gansec_serve_breaker_trips_total counter\n");
        let _ = writeln!(
            out,
            "gansec_serve_breaker_trips_total {}",
            self.breaker_trips.load(Ordering::Relaxed)
        );

        out.push_str(
            "# HELP gansec_serve_batch_failures_total Whole batches the engine rejected.\n",
        );
        out.push_str("# TYPE gansec_serve_batch_failures_total counter\n");
        let _ = writeln!(
            out,
            "gansec_serve_batch_failures_total {}",
            self.batch_failures.load(Ordering::Relaxed)
        );

        out.push_str(
            "# HELP gansec_serve_quarantined_frames_total Non-finite frames quarantined \
             before scoring, by bundle config fingerprint.\n",
        );
        out.push_str("# TYPE gansec_serve_quarantined_frames_total counter\n");
        for (fingerprint, n) in self
            .quarantined
            .lock()
            .expect("metrics lock poisoned")
            .iter()
        {
            let _ = writeln!(
                out,
                "gansec_serve_quarantined_frames_total{{bundle=\"{fingerprint:016x}\"}} {n}"
            );
        }

        out.push_str(
            "# HELP gansec_serve_health_state Tri-state server health (exactly one is 1).\n",
        );
        out.push_str("# TYPE gansec_serve_health_state gauge\n");
        for state in ["ok", "degraded", "draining"] {
            let _ = writeln!(
                out,
                "gansec_serve_health_state{{state=\"{state}\"}} {}",
                u8::from(state == health)
            );
        }

        out.push_str(
            "# HELP gansec_serve_breaker_state Circuit-breaker phase (exactly one is 1).\n",
        );
        out.push_str("# TYPE gansec_serve_breaker_state gauge\n");
        for state in ["closed", "open", "half_open"] {
            let _ = writeln!(
                out,
                "gansec_serve_breaker_state{{state=\"{state}\"}} {}",
                u8::from(state == breaker)
            );
        }

        out.push_str("# HELP gansec_serve_queue_depth Frames waiting in the batch queue.\n");
        out.push_str("# TYPE gansec_serve_queue_depth gauge\n");
        let _ = writeln!(out, "gansec_serve_queue_depth {queue_depth}");

        out.push_str(
            "# HELP gansec_serve_active_connections Connections accepted and unfinished.\n",
        );
        out.push_str("# TYPE gansec_serve_active_connections gauge\n");
        let _ = writeln!(out, "gansec_serve_active_connections {active_connections}");

        out.push_str("# HELP gansec_stream_sessions Open streaming sessions.\n");
        out.push_str("# TYPE gansec_stream_sessions gauge\n");
        let _ = writeln!(out, "gansec_stream_sessions {}", stream.sessions);

        out.push_str(
            "# HELP gansec_stream_evictions_total Streaming sessions evicted by idle timeout.\n",
        );
        out.push_str("# TYPE gansec_stream_evictions_total counter\n");
        let _ = writeln!(out, "gansec_stream_evictions_total {}", stream.evictions);

        out.push_str("# HELP gansec_stream_drift_state Open sessions per drift state.\n");
        out.push_str("# TYPE gansec_stream_drift_state gauge\n");
        let _ = writeln!(
            out,
            "gansec_stream_drift_state{{state=\"stable\"}} {}",
            stream.stable
        );
        let _ = writeln!(
            out,
            "gansec_stream_drift_state{{state=\"drifting\"}} {}",
            stream.drifting
        );

        out
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_deterministic_and_labeled() {
        let m = Metrics::new();
        m.observe_request("/v1/score", 200, Duration::from_millis(3));
        m.observe_request("/v1/score", 200, Duration::from_millis(7));
        m.observe_request("/healthz", 200, Duration::from_micros(80));
        m.observe_queue_full();
        m.observe_batch(24, 3);
        m.observe_reload();
        let text = m.render(5, 2, "ok", "closed", StreamGauges::default());
        assert!(text.contains("gansec_serve_requests_total{route=\"/v1/score\",code=\"200\"} 2"));
        assert!(text.contains("gansec_serve_requests_total{route=\"/healthz\",code=\"200\"} 1"));
        assert!(text.contains("gansec_serve_rejected_total{reason=\"queue_full\"} 1"));
        assert!(text.contains("gansec_serve_batches_total 1"));
        assert!(text.contains("gansec_serve_batched_requests_total 3"));
        assert!(text.contains("gansec_serve_frames_scored_total 24"));
        assert!(text.contains("gansec_serve_reloads_total 1"));
        assert!(text.contains("gansec_serve_queue_depth 5"));
        assert!(text.contains("gansec_serve_active_connections 2"));
        assert_eq!(
            text,
            m.render(5, 2, "ok", "closed", StreamGauges::default())
        );
    }

    #[test]
    fn resilience_counters_and_states_render() {
        let m = Metrics::new();
        m.observe_scorer_restart(false);
        m.observe_scorer_restart(true);
        m.observe_worker_panic();
        m.observe_breaker_trip();
        m.observe_breaker_rejection();
        m.observe_batch_failure();
        m.observe_quarantine(0xABCD, 3);
        m.observe_quarantine(0xABCD, 2);
        m.observe_quarantine(0x1, 1);
        let text = m.render(0, 0, "degraded", "open", StreamGauges::default());
        assert!(text.contains("gansec_scorer_restarts_total 2"));
        assert!(text.contains("gansec_serve_scorer_stalls_total 1"));
        assert!(text.contains("gansec_serve_worker_panics_total 1"));
        assert!(text.contains("gansec_serve_breaker_trips_total 1"));
        assert!(text.contains("gansec_serve_rejected_total{reason=\"breaker_open\"} 1"));
        assert!(text.contains("gansec_serve_batch_failures_total 1"));
        assert!(
            text.contains("gansec_serve_quarantined_frames_total{bundle=\"000000000000abcd\"} 5")
        );
        assert!(
            text.contains("gansec_serve_quarantined_frames_total{bundle=\"0000000000000001\"} 1")
        );
        assert!(text.contains("gansec_serve_health_state{state=\"ok\"} 0"));
        assert!(text.contains("gansec_serve_health_state{state=\"degraded\"} 1"));
        assert!(text.contains("gansec_serve_health_state{state=\"draining\"} 0"));
        assert!(text.contains("gansec_serve_breaker_state{state=\"closed\"} 0"));
        assert!(text.contains("gansec_serve_breaker_state{state=\"open\"} 1"));
        assert!(text.contains("gansec_serve_breaker_state{state=\"half_open\"} 0"));
        assert_eq!(m.scorer_restarts(), 2);
        assert_eq!(m.batch_failures(), 1);
        assert_eq!(m.quarantined_frames(), 6);
    }

    #[test]
    fn histograms_are_cumulative_with_inf_bucket() {
        let m = Metrics::new();
        m.observe_batch(1, 1);
        m.observe_batch(3, 1);
        m.observe_batch(100_000, 1);
        let text = m.render(0, 0, "ok", "closed", StreamGauges::default());
        assert!(text.contains("gansec_serve_batch_frames_bucket{le=\"1\"} 1"));
        assert!(text.contains("gansec_serve_batch_frames_bucket{le=\"4\"} 2"));
        assert!(text.contains("gansec_serve_batch_frames_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("gansec_serve_batch_frames_count 3"));
        assert_eq!(m.batch_frames.count(), 3);
        assert_eq!(m.frames_scored(), 100_004);
        assert_eq!(m.batches(), 3);
    }

    #[test]
    fn single_request_batches_do_not_count_as_batched() {
        let m = Metrics::new();
        m.observe_batch(8, 1);
        assert!(m
            .render(0, 0, "ok", "closed", StreamGauges::default())
            .contains("gansec_serve_batched_requests_total 0"));
        m.observe_batch(8, 2);
        assert!(m
            .render(0, 0, "ok", "closed", StreamGauges::default())
            .contains("gansec_serve_batched_requests_total 2"));
    }
}
