//! HTTP-layer conformance against a live server: every malformed or
//! misdirected request maps to the documented status code, over raw TCP
//! so nothing in the client library can paper over framing bugs.
//!
//! These paths never deserialize a bundle from disk and only exercise
//! JSON *rejection*, so they hold in offline stub-JSON builds too.

#![allow(clippy::unwrap_used)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use gansec::{GanSecPipeline, PipelineConfig};
use gansec_engine::ScoringEngine;
use gansec_serve::{ServeConfig, Server};

fn smoke_server() -> Server {
    let stage = GanSecPipeline::new(PipelineConfig::smoke_test())
        .train_stage(3)
        .expect("smoke training");
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        max_body_bytes: 4096,
        ..ServeConfig::default()
    };
    Server::start(
        config,
        ScoringEngine::from_bundle(stage.to_bundle()),
        "protocol-test.json",
    )
    .expect("server starts")
}

/// Sends raw bytes and returns `(status, reply)`; the server closes the
/// connection after one response, so read-to-end frames it.
fn raw_roundtrip(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).expect("write");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read");
    let text = String::from_utf8_lossy(&reply).to_string();
    let status = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable reply {text:?}"));
    (status, text)
}

#[test]
fn protocol_errors_map_to_the_documented_statuses() {
    let server = smoke_server();
    let addr = server.addr();

    // Malformed request line: not `METHOD /path HTTP/1.x`.
    let (status, _) = raw_roundtrip(addr, b"NONSENSE\r\n\r\n");
    assert_eq!(status, 400);
    let (status, _) = raw_roundtrip(addr, b"GET noslash HTTP/1.1\r\n\r\n");
    assert_eq!(status, 400);
    let (status, _) = raw_roundtrip(addr, b"GET /healthz SPDY/3\r\n\r\n");
    assert_eq!(status, 400);

    // Declared body past the cap: rejected before reading the payload.
    let (status, body) = raw_roundtrip(
        addr,
        b"POST /v1/score HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
    );
    assert_eq!(status, 413);
    assert!(body.contains("4096"), "{body}");

    // Unknown route.
    let (status, _) = raw_roundtrip(addr, b"GET /nope HTTP/1.1\r\n\r\n");
    assert_eq!(status, 404);

    // Known route, wrong method: 405 with an Allow header.
    let (status, reply) = raw_roundtrip(addr, b"GET /v1/score HTTP/1.1\r\n\r\n");
    assert_eq!(status, 405);
    assert!(reply.contains("Allow: POST"), "{reply}");
    let (status, reply) =
        raw_roundtrip(addr, b"POST /metrics HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    assert_eq!(status, 405);
    assert!(reply.contains("Allow: GET"), "{reply}");

    // A POST that never declares a length.
    let (status, _) = raw_roundtrip(addr, b"POST /v1/score HTTP/1.1\r\n\r\n");
    assert_eq!(status, 411);

    // Truncated JSON: the framing is fine (Content-Length matches the
    // bytes sent) but the document ends mid-array.
    let body = b"{\"frames\": [[0.1,";
    let head = format!(
        "POST /v1/score HTTP/1.1\r\nContent-Length: {}\r\nContent-Type: application/json\r\n\r\n",
        body.len()
    );
    let mut raw = head.into_bytes();
    raw.extend_from_slice(body);
    let (status, reply) = raw_roundtrip(addr, &raw);
    assert_eq!(status, 400, "{reply}");
    assert!(reply.contains("invalid JSON"), "{reply}");

    // Every reply above closed the connection (read_to_end returned),
    // and the server is still healthy afterwards.
    let (status, _) = raw_roundtrip(addr, b"GET /metrics HTTP/1.1\r\n\r\n");
    assert_eq!(status, 200);

    server.shutdown();
}

#[test]
fn reload_during_drain_is_rejected_with_409() {
    let server = smoke_server();
    let addr = server.addr();

    // Open the reload connection *before* the drain starts so the
    // acceptor still admits it; the worker then blocks reading it.
    let mut reload_conn = TcpStream::connect(addr).expect("connect before drain");
    reload_conn
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // Start the drain and read its ack: the shutdown flag is set before
    // the ack is written, so anything observed after it is mid-drain.
    let (status, reply) = raw_roundtrip(
        addr,
        b"POST /admin/shutdown HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("draining"), "{reply}");

    // The held connection now asks for a reload: the swap must be
    // refused — a bundle swap racing a drain would tear the engine out
    // from under in-flight batches.
    reload_conn
        .write_all(b"POST /admin/reload HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}")
        .expect("write reload during drain");
    let mut raw = Vec::new();
    reload_conn.read_to_end(&mut raw).expect("read");
    let text = String::from_utf8_lossy(&raw).to_string();
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable reply {text:?}"));
    assert_eq!(status, 409, "{text}");
    assert!(text.contains("draining"), "{text}");

    // The drain still completes cleanly.
    server.join();
}
